//! The query executor: a thin driver over the staged engine.
//!
//! Pipeline: [`crate::plan::plan`] (constant resolution, static greedy
//! join order, filter placement, spatial pushdown) → [`crate::join`]
//! pull-based physical operators over columnar [`crate::batch::Batch`]es
//! (parallel, bit-identical to serial) → OPTIONAL left-joins → residual
//! filters → grouping / aggregation → DISTINCT / ORDER / LIMIT → term
//! materialisation.
//!
//! The non-aggregate, non-ORDER-BY path is fully pipelined: nothing runs
//! until [`StreamCore::next_batch`] pulls, and producing a batch touches
//! O(batch) probe rows. Grouping/aggregation and ORDER BY are inherently
//! blocking (every input row feeds the result), so those paths drain the
//! pipeline eagerly up front and stream only the drained rows.
//!
//! Within the blocking family, [`crate::plan::FastPath`] routes the
//! common shapes onto cheaper physical forms — all bit-identical to the
//! generic routes they replace:
//!
//! * **Top-k** (`ORDER BY ?v LIMIT k`, ± OFFSET, no DISTINCT): a bounded
//!   max-heap of size `k + offset` fed by the pipeline — O(n log k)
//!   comparisons, O(batch + k) resident rows, no global sort.
//! * **Fast count** (`COUNT(*)` / `COUNT(?v)`, no GROUP BY): rows are
//!   counted column-wise off the pipeline, never materialised as terms.
//! * **Group count** (GROUP BY whose aggregates are all COUNTs): a
//!   single-pass id-keyed counter table replaces materialise-then-group.
//!
//! [`query`] parses + plans + executes at the ambient thread count;
//! [`query_with_threads`] pins the thread count (the E3 speedup sweep and
//! the parallel-identity tests); [`execute_plan`] runs a prepared
//! [`Plan`] directly — the serving tier's plan cache calls this.
//! [`execute_plan_baseline`] forces the pre-fast-path routes, as the
//! comparison baseline for benches and equivalence tests.

use crate::parser::{AggFunc, Query, SelectItem};
use crate::plan::{FastPath, Plan};
use crate::store::{StoreView, TripleStore};
use crate::term::{Term, Value};
use crate::{join, RdfError};
use ee_util::par;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Query solutions: a header of variable names and rows of optional terms
/// (unbound OPTIONAL variables are `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    /// Projected variable names, in order.
    pub vars: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a one-row one-column result (aggregates).
    pub fn scalar(&self) -> Option<&Term> {
        match (self.rows.len(), self.vars.len()) {
            (1, 1) => self.rows[0][0].as_ref(),
            _ => None,
        }
    }

    /// Column index of a variable. Resolve once and index rows directly;
    /// plans resolve their own columns at plan time.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

/// Parse and execute a query against a store at the ambient thread count.
pub fn query(store: &TripleStore, sparql: &str) -> Result<Solutions, RdfError> {
    query_with_threads(store, sparql, par::available_threads())
}

/// Parse and execute a query with an explicit thread count. `threads = 1`
/// is fully serial; any other count produces bit-identical results.
pub fn query_with_threads(
    store: &TripleStore,
    sparql: &str,
    threads: usize,
) -> Result<Solutions, RdfError> {
    let q = crate::parser::parse_query(sparql)?;
    let plan = crate::plan::plan(store, &q)?;
    execute_plan(store, &plan, threads)
}

/// Execute a parsed query (plans first; kept for API compatibility).
pub fn execute(store: &TripleStore, q: &Query) -> Result<Solutions, RdfError> {
    let plan = crate::plan::plan(store, q)?;
    execute_plan(store, &plan, par::available_threads())
}

/// Execute a prepared [`Plan`]. The plan may be reused across calls and
/// shared between threads (the serving tier caches them). A collect
/// wrapper over [`stream_plan`]: pulls every batch and concatenates, so
/// results are identical to the incremental path by construction.
pub fn execute_plan(
    store: &TripleStore,
    plan: &Plan,
    threads: usize,
) -> Result<Solutions, RdfError> {
    let core = stream_plan(store, plan, threads)?;
    Ok(collect_core(store, core))
}

/// Execute a prepared [`Plan`] with every fast path disabled: ORDER BY
/// always global-sorts and counts always run the generic
/// materialise-then-group aggregate. This is the pre-fast-path physical
/// behaviour, kept callable as the baseline the E-k6 harness and the
/// fast-path equivalence tests compare against. Results are bit-identical
/// to [`execute_plan`] — only the work done differs.
pub fn execute_plan_baseline(
    store: &TripleStore,
    plan: &Plan,
    threads: usize,
) -> Result<Solutions, RdfError> {
    let core = stream_plan_opts(store, Arc::new(plan.clone()), threads, false)?;
    Ok(collect_core(store, core))
}

/// Execute a prepared [`Plan`] against a [`StoreView`] and collect every
/// row — the versioned-read (`AS OF`) collect path. The plan must have
/// been built against the **same view** ([`crate::plan::plan_view`]).
/// Collecting rather than streaming lets a caller answer a versioned
/// query under one store guard, i.e. against one immutable snapshot.
pub fn execute_plan_view(
    view: StoreView<'_>,
    plan: Arc<Plan>,
    threads: usize,
) -> Result<Solutions, RdfError> {
    let mut core = stream_plan_view(view, plan, threads)?;
    let mut rows = Vec::new();
    while let Some(batch) = core.next_batch_view(view) {
        rows.extend(batch);
    }
    Ok(Solutions {
        vars: core.take_vars(),
        rows,
    })
}

fn collect_core(store: &TripleStore, mut core: StreamCore) -> Solutions {
    let mut rows = Vec::new();
    while let Some(batch) = core.next_batch(store) {
        rows.extend(batch);
    }
    Solutions {
        vars: core.take_vars(),
        rows,
    }
}

/// Rows per batch yielded by [`StreamCore::next_batch`]. Small enough
/// that a `/query` consumer sees the first bytes before the last row is
/// materialised; big enough to amortise the per-batch bookkeeping.
pub const STREAM_BATCH_ROWS: usize = 256;

/// Where a [`StreamCore`] is in its life: pulling id rows straight off
/// the live join pipeline (the fully-streamed path), draining id rows
/// that had to be sorted up front (ORDER BY), or draining term rows that
/// had to be computed eagerly (grouping needs every input row).
enum Phase {
    /// Non-aggregate, non-ORDER path: the pull-based pipeline, with a
    /// small buffer of id rows from the last pull. Nothing has run yet
    /// when a `StreamCore` is built in this phase; each
    /// [`StreamCore::next_batch`] does O(batch) join work.
    Stream {
        pipe: join::Pipeline,
        buf: std::vec::IntoIter<Vec<Option<u64>>>,
    },
    /// ORDER BY path: id rows globally sorted up front (sorting is
    /// blocking), materialised [`STREAM_BATCH_ROWS`] at a time.
    Ids(std::vec::IntoIter<Vec<Option<u64>>>),
    /// Aggregate/grouped path: fully processed term rows, drained in
    /// batches (groups are few — the expensive part was the join).
    Rows(std::vec::IntoIter<Vec<Option<Term>>>),
}

/// Incremental query results. On the non-aggregate, non-ORDER-BY path
/// the join pipeline itself is pull-based: each
/// [`next_batch`](StreamCore::next_batch) call runs only enough probe
/// work to fill one batch, so memory stays O(batch) and a slow consumer
/// pauses the joins instead of buffering them. Grouping and ORDER BY are
/// blocking and run eagerly at build time (documented on [`stream_plan`]).
///
/// Owns no borrows — the store is passed to each `next_batch` call — so
/// a serving tier can park a `StreamCore` inside a response object next
/// to an `Arc` of the store without self-referential lifetimes.
/// Concatenating every batch reproduces [`execute_plan`]'s output
/// exactly: same operation order, same comparators, same DISTINCT keys.
pub struct StreamCore {
    vars: Vec<String>,
    projection: Vec<(String, usize)>,
    phase: Phase,
    /// DISTINCT dedup keys seen so far — projected dictionary ids, not
    /// stringified terms (ids and terms are bijective through the
    /// dictionary, so the semantics are identical and no per-row string
    /// allocation happens). Persistent across batches.
    seen: Option<HashSet<Vec<Option<u64>>>>,
    /// OFFSET rows still to skip (counted after DISTINCT).
    to_skip: usize,
    /// LIMIT rows still to emit (`None` = unlimited).
    remaining: Option<usize>,
    /// Probe rows touched by an eager (aggregate/ORDER) build; the
    /// streamed phase reads its pipeline's live counter instead.
    touched_eager: u64,
    /// Peak resident rows of an eager build (the whole drained set).
    peak_eager: u64,
}

impl StreamCore {
    /// Projected variable names, in order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    fn take_vars(&mut self) -> Vec<String> {
        std::mem::take(&mut self.vars)
    }

    /// Probe rows touched so far: raw seed matches scanned plus rows
    /// consumed by every pipeline stage. On the streamed path this grows
    /// with each pulled batch — the acceptance metric for "first batch
    /// touches O(batch) rows". Eager paths report the full drain.
    pub fn rows_touched(&self) -> u64 {
        match &self.phase {
            Phase::Stream { pipe, .. } => pipe.rows_touched(),
            _ => self.touched_eager,
        }
    }

    /// High-water mark of rows resident in the executor at once: stage
    /// buffers for the streamed path, the whole materialised row set for
    /// the eager (aggregate/ORDER) paths.
    pub fn peak_resident_rows(&self) -> u64 {
        match &self.phase {
            Phase::Stream { pipe, .. } => pipe.peak_resident_rows(),
            _ => self.peak_eager,
        }
    }

    /// Produce the next batch of up to [`STREAM_BATCH_ROWS`] result rows,
    /// or `None` when the stream is exhausted (or LIMIT was reached).
    /// `store` must be the store the stream was built from.
    pub fn next_batch(&mut self, store: &TripleStore) -> Option<Vec<Vec<Option<Term>>>> {
        self.next_batch_view(StoreView::from(store))
    }

    /// [`StreamCore::next_batch`] against a [`StoreView`] — the
    /// versioned-read form. The view must be the one the stream was
    /// planned and built from (same base store, same novelty overlay).
    pub fn next_batch_view(&mut self, store: StoreView<'_>) -> Option<Vec<Vec<Option<Term>>>> {
        if self.remaining == Some(0) {
            return None;
        }
        let mut out = Vec::new();
        // Pull input rows until a non-empty output batch forms (DISTINCT
        // and OFFSET may eat whole input chunks) or input runs dry.
        while out.len() < STREAM_BATCH_ROWS {
            // Aggregate rows are already terms; the id phases project,
            // dedup and skip on dictionary ids and materialise terms last.
            let row: Vec<Option<Term>> = match &mut self.phase {
                Phase::Rows(it) => match it.next() {
                    Some(r) => {
                        if self.to_skip > 0 {
                            self.to_skip -= 1;
                            continue;
                        }
                        r
                    }
                    None => break,
                },
                phase => {
                    let ids = match phase {
                        Phase::Ids(it) => it.next(),
                        Phase::Stream { pipe, buf } => loop {
                            if let Some(ids) = buf.next() {
                                break Some(ids);
                            }
                            let b = pipe.next_rows(store, STREAM_BATCH_ROWS);
                            if b.is_empty() {
                                break None;
                            }
                            *buf = b.into_rows().into_iter();
                        },
                        Phase::Rows(_) => unreachable!("handled above"),
                    };
                    let Some(ids) = ids else { break };
                    let key: Vec<Option<u64>> =
                        self.projection.iter().map(|&(_, i)| ids[i]).collect();
                    if let Some(seen) = &mut self.seen {
                        if !seen.insert(key.clone()) {
                            continue;
                        }
                    }
                    if self.to_skip > 0 {
                        self.to_skip -= 1;
                        continue;
                    }
                    key.iter()
                        .map(|id| id.map(|id| store.dict().term(id).clone()))
                        .collect()
                }
            };
            out.push(row);
            if let Some(rem) = &mut self.remaining {
                *rem -= 1;
                if *rem == 0 {
                    break;
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// Build a [`StreamCore`] for a prepared [`Plan`] (clones the plan into
/// an `Arc`; callers that already hold one should use
/// [`stream_plan_shared`] to avoid the copy).
pub fn stream_plan(
    store: &TripleStore,
    plan: &Plan,
    threads: usize,
) -> Result<StreamCore, RdfError> {
    stream_plan_shared(store, Arc::new(plan.clone()), threads)
}

/// Build a [`StreamCore`] over a shared prepared [`Plan`].
///
/// Non-aggregate, non-ORDER-BY queries are fully pipelined: **no join
/// work happens here** — each [`StreamCore::next_batch`] pulls just
/// enough probe rows through the operator chain to fill one batch.
/// Grouping/aggregation and ORDER BY are blocking by nature (every input
/// row feeds the output), so those paths drain the pipeline eagerly here
/// and stream only the post-processed rows; this is the documented eager
/// exception.
pub fn stream_plan_shared(
    store: &TripleStore,
    plan: Arc<Plan>,
    threads: usize,
) -> Result<StreamCore, RdfError> {
    stream_plan_opts(store, plan, threads, true)
}

/// Build a [`StreamCore`] over a [`StoreView`] — the versioned-read
/// entry point. The plan must have been built against the **same view**
/// ([`crate::plan::plan_view`]): its spatial candidate sets encode the
/// overlay. Batches must then be pulled with
/// [`StreamCore::next_batch_view`] using the same view.
pub fn stream_plan_view(
    view: StoreView<'_>,
    plan: Arc<Plan>,
    threads: usize,
) -> Result<StreamCore, RdfError> {
    stream_plan_opts_view(view, plan, threads, true)
}

/// [`stream_plan_shared`] with the fast paths switchable. `fast_paths =
/// false` demotes top-k to the global sort and the count shortcuts to the
/// generic aggregate — the physical routes that predate PR 6 — without
/// changing any result bit. Routing itself comes from
/// [`Plan::fast_path`], so the executor and the serving tier's
/// per-fast-path counter can never disagree about which route ran.
pub fn stream_plan_opts(
    store: &TripleStore,
    plan: Arc<Plan>,
    threads: usize,
    fast_paths: bool,
) -> Result<StreamCore, RdfError> {
    stream_plan_opts_view(StoreView::from(store), plan, threads, fast_paths)
}

fn stream_plan_opts_view(
    store: StoreView<'_>,
    plan: Arc<Plan>,
    threads: usize,
    fast_paths: bool,
) -> Result<StreamCore, RdfError> {
    let mut route = plan.fast_path();
    if !fast_paths {
        route = match route {
            FastPath::TopK => FastPath::FullSort,
            FastPath::FastCount | FastPath::GroupCount => FastPath::Aggregate,
            other => other,
        };
    }

    if matches!(
        route,
        FastPath::FastCount | FastPath::GroupCount | FastPath::Aggregate
    ) {
        // Blocking path: run the pipeline to exhaustion (counting in
        // place on the fast routes), aggregate, then DISTINCT, then alias
        // ORDER BY — the exact op order of the historical collect path.
        // OFFSET and LIMIT stay streaming for uniformity.
        let (header, mut out_rows, touched, peak) = match route {
            FastPath::FastCount => fast_count(store, &plan, threads)?,
            FastPath::GroupCount => group_count(store, &plan, threads)?,
            _ => {
                let (raw, touched, peak) = drain_pipeline(store, &plan, threads);
                let (header, rows) = aggregate(store, &plan, raw)?;
                (header, rows, touched, peak)
            }
        };
        if plan.distinct {
            let mut seen: HashSet<Vec<Option<Term>>> = HashSet::new();
            out_rows.retain(|row| seen.insert(row.clone()));
        }
        if let Some((ov, asc)) = plan.order_by_name() {
            if let Some(ci) = header.iter().position(|h| h == ov) {
                out_rows.sort_by(|a, b| {
                    let ord = cmp_terms(&a[ci], &b[ci]);
                    if asc {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
            }
        }
        return Ok(StreamCore {
            vars: header,
            projection: Vec::new(),
            phase: Phase::Rows(out_rows.into_iter()),
            seen: None, // already applied eagerly above
            to_skip: plan.offset.unwrap_or(0),
            remaining: plan.limit,
            touched_eager: touched,
            peak_eager: peak,
        });
    }

    let vars: Vec<String> = plan.projection.iter().map(|(n, _)| n.clone()).collect();
    let projection = plan.projection.clone();
    let seen = plan.distinct.then(HashSet::new);
    let to_skip = plan.offset.unwrap_or(0);
    let remaining = plan.limit;

    match route {
        FastPath::TopK => {
            // Bounded-heap ORDER BY + LIMIT: only the k + offset best id
            // rows survive the drain; everything downstream streams.
            let (oi, asc) = plan.order_by.expect("topk implies ORDER BY");
            let n_keep = plan
                .limit
                .expect("topk implies LIMIT")
                .saturating_add(plan.offset.unwrap_or(0));
            let (rows, touched, peak) = topk_rows(store, &plan, threads, oi, asc, n_keep);
            Ok(StreamCore {
                vars,
                projection,
                phase: Phase::Ids(rows.into_iter()),
                seen,
                to_skip,
                remaining,
                touched_eager: touched,
                peak_eager: peak,
            })
        }
        FastPath::FullSort => {
            // ORDER BY is global: drain and sort the id rows now, with
            // keys computed once per row (decorate–sort–undecorate);
            // everything downstream streams.
            let (oi, asc) = plan.order_by.expect("full sort implies ORDER BY");
            let (raw, touched, peak) = drain_pipeline(store, &plan, threads);
            let rows = full_sort_rows(store, raw, threads, oi, asc);
            Ok(StreamCore {
                vars,
                projection,
                phase: Phase::Ids(rows.into_iter()),
                seen,
                to_skip,
                remaining,
                touched_eager: touched,
                peak_eager: peak,
            })
        }
        _ => {
            // The fully-streamed path: park the un-started pipeline; every
            // next_batch call does O(batch) probe work.
            Ok(StreamCore {
                vars,
                projection,
                phase: Phase::Stream {
                    pipe: join::Pipeline::new(store, plan, threads),
                    buf: Vec::new().into_iter(),
                },
                seen,
                to_skip,
                remaining,
                touched_eager: 0,
                peak_eager: 0,
            })
        }
    }
}

/// Run a plan's pipeline to exhaustion (the blocking aggregate/ORDER
/// paths). Returns the raw id rows plus the probe-rows-touched and
/// peak-resident instrumentation (here the peak is the whole row set).
fn drain_pipeline(
    store: StoreView<'_>,
    plan: &Arc<Plan>,
    threads: usize,
) -> (Vec<Vec<Option<u64>>>, u64, u64) {
    let mut pipe = join::Pipeline::new(store, Arc::clone(plan), threads);
    let mut rows = Vec::new();
    loop {
        let b = pipe.next_rows(store, STREAM_BATCH_ROWS);
        if b.is_empty() {
            break;
        }
        rows.extend(b.into_rows());
    }
    let touched = pipe.rows_touched();
    let peak = rows.len() as u64;
    (rows, touched, peak)
}

/// A [`StreamCore`] bundled with its store — the ergonomic form for
/// callers whose store outlives the stream (tests, library use). The
/// serving tier uses [`StreamCore`] directly with a shared-ownership
/// store instead.
pub struct SolutionStream<'a> {
    store: &'a TripleStore,
    core: StreamCore,
}

impl<'a> SolutionStream<'a> {
    /// Plan-driver entry point: run the joins, defer the rest.
    pub fn new(
        store: &'a TripleStore,
        plan: &Plan,
        threads: usize,
    ) -> Result<SolutionStream<'a>, RdfError> {
        Ok(SolutionStream {
            store,
            core: stream_plan(store, plan, threads)?,
        })
    }

    /// Projected variable names, in order.
    pub fn vars(&self) -> &[String] {
        self.core.vars()
    }

    /// Next batch of result rows, or `None` when exhausted.
    pub fn next_batch(&mut self) -> Option<Vec<Vec<Option<Term>>>> {
        self.core.next_batch(self.store)
    }

    /// Drain the remaining batches into a [`Solutions`].
    pub fn collect(mut self) -> Solutions {
        let mut rows = Vec::new();
        while let Some(b) = self.next_batch() {
            rows.extend(b);
        }
        Solutions {
            vars: self.core.take_vars(),
            rows,
        }
    }
}

fn numeric_of(store: StoreView<'_>, id: u64) -> Option<f64> {
    match store.dict().value(id) {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Sort key for ORDER BY and MIN/MAX: numbers before dates before strings
/// before everything else, each ordered internally.
///
/// The `Ord` impl is a **total** order (`f64::total_cmp` on the numeric
/// component). The historical `partial_cmp().unwrap_or(Equal)` comparator
/// is non-transitive once a NaN key appears (a NaN row compares "equal"
/// to everything, so `a < b`, `b ~ anything`, `c < a` cycles are
/// constructible), and both `sort_by` and `BinaryHeap` are only specified
/// under total orders. Under `total_cmp`, NaN sorts above +∞ (and -NaN
/// below -∞) — the one observable change, documented in DESIGN.md, and
/// shared by every ordering path so they stay mutually bit-identical.
#[derive(Debug, Clone, PartialEq)]
struct OrderKey {
    rank: u8,
    num: f64,
    text: String,
}

impl Eq for OrderKey {}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank
            .cmp(&other.rank)
            .then_with(|| self.num.total_cmp(&other.num))
            .then_with(|| self.text.cmp(&other.text))
    }
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn order_key(store: StoreView<'_>, id: u64) -> OrderKey {
    let (rank, num, text) = match store.dict().value(id) {
        Value::Int(i) => (0, *i as f64, String::new()),
        Value::Float(f) => (0, *f, String::new()),
        Value::Date(d) => (1, *d as f64, String::new()),
        Value::Str(s) => (2, 0.0, s.clone()),
        _ => (3, 0.0, store.dict().term(id).ntriples()),
    };
    OrderKey { rank, num, text }
}

/// The one ordering shared by the full-sort and top-k paths: the
/// (possibly reversed) key, then the original input position. Unbound
/// (`None`) sorts first ascending, as ever; `seq` is globally unique, so
/// this is a **strict** total order — ties cannot exist, the top-`n` set
/// and its sorted order are partition-independent, and per-chunk heaps
/// merged in any order reproduce the serial answer bit-for-bit.
fn cmp_keyed(
    ka: &Option<OrderKey>,
    sa: u64,
    kb: &Option<OrderKey>,
    sb: u64,
    asc: bool,
) -> std::cmp::Ordering {
    let ord = ka.cmp(kb);
    let ord = if asc { ord } else { ord.reverse() };
    ord.then_with(|| sa.cmp(&sb))
}

/// The retained global-sort path, decorated: keys are computed **once
/// per row** (in parallel, fixed-order concat via `par::map`) instead of
/// twice per comparison inside `sort_by` — the historical comparator
/// recomputed (and re-allocated) `order_key` O(n log n) times.
fn full_sort_rows(
    store: StoreView<'_>,
    rows: Vec<Vec<Option<u64>>>,
    threads: usize,
    oi: usize,
    asc: bool,
) -> Vec<Vec<Option<u64>>> {
    let keys: Vec<Option<OrderKey>> =
        par::map(&rows, threads, |_, r| r[oi].map(|id| order_key(store, id)));
    let mut decorated: Vec<(Option<OrderKey>, u64, Vec<Option<u64>>)> = keys
        .into_iter()
        .zip(rows)
        .enumerate()
        .map(|(i, (k, r))| (k, i as u64, r))
        .collect();
    // Unstable is fine: the seq component makes the order strict, which
    // is exactly what stability used to provide.
    decorated.sort_unstable_by(|a, b| cmp_keyed(&a.0, a.1, &b.0, b.1, asc));
    decorated.into_iter().map(|(_, _, r)| r).collect()
}

/// Rows pulled per pipeline batch on the top-k path: larger than
/// [`STREAM_BATCH_ROWS`] so the per-batch parallel decorate amortises
/// its fan-out, small enough that resident memory stays O(batch + k).
const TOPK_PULL_ROWS: usize = 4096;

/// A heap entry on the top-k path. `BinaryHeap` is a max-heap, so the
/// root is the **worst** retained row (greatest under [`cmp_keyed`]) and
/// a bounded heap holds exactly the `n_keep` smallest seen so far. The
/// sort direction rides in each entry because `Ord` has no side channel;
/// all entries in one heap share it.
struct TopKEntry {
    key: Option<OrderKey>,
    seq: u64,
    row: Vec<Option<u64>>,
    asc: bool,
}

impl PartialEq for TopKEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for TopKEntry {}

impl Ord for TopKEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_keyed(&self.key, self.seq, &other.key, other.seq, self.asc)
    }
}

impl PartialOrd for TopKEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Keep the `n_keep` smallest entries: below capacity push outright, at
/// capacity a candidate only enters by evicting the current worst.
/// `n_keep == 0` (LIMIT 0 with no OFFSET) keeps nothing.
fn push_bounded(heap: &mut BinaryHeap<TopKEntry>, e: TopKEntry, n_keep: usize) {
    if heap.len() < n_keep {
        heap.push(e);
    } else if let Some(worst) = heap.peek() {
        if e.cmp(worst) == std::cmp::Ordering::Less {
            heap.pop();
            heap.push(e);
        }
    }
}

/// The bounded-heap ORDER BY + LIMIT path: O(n log k) comparisons, O(k)
/// retained rows, no global sort. Each pulled batch is decorated and
/// pre-pruned in parallel per chunk — a row outside its chunk's local
/// top-`n_keep` cannot be in the global top-`n_keep` — then the chunk
/// survivors merge into one global heap in fixed chunk order. Because
/// [`cmp_keyed`] is strict over unique `seq`s, the retained set and
/// `into_sorted_vec`'s order equal the first `n_keep` rows of the full
/// sort for any thread count and any batch size.
fn topk_rows(
    store: StoreView<'_>,
    plan: &Arc<Plan>,
    threads: usize,
    oi: usize,
    asc: bool,
    n_keep: usize,
) -> (Vec<Vec<Option<u64>>>, u64, u64) {
    let mut pipe = join::Pipeline::new(store, Arc::clone(plan), threads);
    let mut heap: BinaryHeap<TopKEntry> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut peak_exec = 0u64;
    loop {
        let b = pipe.next_rows(store, TOPK_PULL_ROWS);
        if b.is_empty() {
            break;
        }
        let rows = b.into_rows();
        peak_exec = peak_exec.max((heap.len() + rows.len()) as u64);
        let locals: Vec<Vec<TopKEntry>> = par::map_chunks(&rows, threads, |start, chunk| {
            let mut local: BinaryHeap<TopKEntry> = BinaryHeap::new();
            for (i, row) in chunk.iter().enumerate() {
                let key = row[oi].map(|id| order_key(store, id));
                let s = seq + (start + i) as u64;
                // Clone the row only when it can actually enter the heap.
                if local.len() == n_keep {
                    match local.peek() {
                        Some(worst)
                            if cmp_keyed(&key, s, &worst.key, worst.seq, asc)
                                == std::cmp::Ordering::Less => {}
                        _ => continue,
                    }
                }
                let e = TopKEntry { key, seq: s, row: row.clone(), asc };
                push_bounded(&mut local, e, n_keep);
            }
            local.into_vec()
        });
        seq += rows.len() as u64;
        for local in locals {
            for e in local {
                push_bounded(&mut heap, e, n_keep);
            }
        }
    }
    let rows: Vec<Vec<Option<u64>>> = heap.into_sorted_vec().into_iter().map(|e| e.row).collect();
    let touched = pipe.rows_touched();
    let peak = pipe.peak_resident_rows().max(peak_exec).max(rows.len() as u64);
    (rows, touched, peak)
}

/// Shared return shape of the blocking aggregate routes: header, term
/// rows, probe rows touched, peak resident rows.
type AggOut = (Vec<String>, Vec<Vec<Option<Term>>>, u64, u64);

/// `COUNT(*)` / `COUNT(?v)` without GROUP BY: count rows (or bound
/// values, column-wise) batch-by-batch straight off the columnar
/// pipeline — no `into_rows`, no term materialisation, O(batch) resident.
/// Zero input rows produce an **empty** result set, exactly like the
/// generic path (grouping an empty input yields no groups).
fn fast_count(store: StoreView<'_>, plan: &Arc<Plan>, threads: usize) -> Result<AggOut, RdfError> {
    let (alias, var) = match plan.select.as_slice() {
        [SelectItem::Agg { func: AggFunc::Count, var, alias }] => (alias.clone(), var.clone()),
        _ => unreachable!("fast_path gates on a single COUNT item"),
    };
    let vi = var
        .map(|v| {
            plan.vars
                .iter()
                .position(|x| x == &v)
                .ok_or_else(|| RdfError::Eval(format!("unknown ?{v}")))
        })
        .transpose()?;
    let mut pipe = join::Pipeline::new(store, Arc::clone(plan), threads);
    let mut input_rows = 0u64;
    let mut n = 0u64;
    loop {
        let b = pipe.next_rows(store, STREAM_BATCH_ROWS);
        if b.is_empty() {
            break;
        }
        input_rows += b.len() as u64;
        n += match vi {
            None => b.len() as u64,
            Some(i) => b.count_bound(i) as u64,
        };
    }
    let rows = if input_rows == 0 {
        Vec::new()
    } else {
        vec![vec![Some(Term::integer(n as i64))]]
    };
    Ok((vec![alias], rows, pipe.rows_touched(), pipe.peak_resident_rows()))
}

/// GROUP BY where every aggregate is a COUNT: a single pass over the
/// pipeline updates an id-keyed counter table (group key → one counter
/// per COUNT item) instead of materialising every input row into
/// per-group vectors and re-walking them per aggregate. Header layout,
/// error cases and the sorted deterministic group order match
/// [`aggregate`] exactly.
fn group_count(store: StoreView<'_>, plan: &Arc<Plan>, threads: usize) -> Result<AggOut, RdfError> {
    let group_names: Vec<&str> = plan.group_by.iter().map(|&i| plan.vars[i].as_str()).collect();
    let mut header = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Var(v) => {
                if !group_names.contains(&v.as_str()) {
                    return Err(RdfError::Eval(format!(
                        "?{v} selected but not in GROUP BY"
                    )));
                }
                header.push(v.clone());
            }
            SelectItem::Agg { alias, .. } => header.push(alias.clone()),
        }
    }
    // Count column per aggregate item (`None` = COUNT(*)). Resolvability
    // is part of the fast-path gate; the error arm is defensive.
    let mut agg_cols: Vec<Option<usize>> = Vec::new();
    for item in &plan.select {
        if let SelectItem::Agg { var, .. } = item {
            agg_cols.push(
                var.as_ref()
                    .map(|v| {
                        plan.vars
                            .iter()
                            .position(|x| x == v)
                            .ok_or_else(|| RdfError::Eval(format!("unknown ?{v}")))
                    })
                    .transpose()?,
            );
        }
    }
    let mut counters: HashMap<Vec<Option<u64>>, Vec<u64>> = HashMap::new();
    let mut pipe = join::Pipeline::new(store, Arc::clone(plan), threads);
    loop {
        let b = pipe.next_rows(store, STREAM_BATCH_ROWS);
        if b.is_empty() {
            break;
        }
        for row in b.into_rows() {
            let key: Vec<Option<u64>> = plan.group_by.iter().map(|&i| row[i]).collect();
            let slots = counters
                .entry(key)
                .or_insert_with(|| vec![0u64; agg_cols.len()]);
            for (slot, vi) in slots.iter_mut().zip(&agg_cols) {
                match vi {
                    None => *slot += 1,
                    Some(i) if row[*i].is_some() => *slot += 1,
                    _ => {}
                }
            }
        }
    }
    // Deterministic group order, same as the generic path.
    let mut keys: Vec<Vec<Option<u64>>> = counters.keys().cloned().collect();
    keys.sort();
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let slots = &counters[&key];
        let mut next_agg = 0usize;
        let mut row: Vec<Option<Term>> = Vec::with_capacity(plan.select.len());
        for item in &plan.select {
            match item {
                SelectItem::Var(v) => {
                    let gi = group_names.iter().position(|x| x == v).expect("checked");
                    row.push(key[gi].map(|id| store.dict().term(id).clone()));
                }
                SelectItem::Agg { .. } => {
                    row.push(Some(Term::integer(slots[next_agg] as i64)));
                    next_agg += 1;
                }
            }
        }
        out.push(row);
    }
    let peak = pipe.peak_resident_rows().max(out.len() as u64);
    Ok((header, out, pipe.rows_touched(), peak))
}

fn cmp_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    let num = |t: &Option<Term>| -> Option<f64> {
        match t {
            Some(Term::Literal { lexical, datatype })
                if datatype == crate::term::XSD_INTEGER || datatype == crate::term::XSD_DOUBLE =>
            {
                lexical.parse::<f64>().ok()
            }
            _ => None,
        }
    };
    match (num(a), num(b)) {
        // total_cmp keeps the alias-ORDER comparator a total order too
        // (NaN-typed literals would otherwise break transitivity).
        (Some(x), Some(y)) => x.total_cmp(&y),
        _ => format!("{a:?}").cmp(&format!("{b:?}")),
    }
}

type Grouped = (Vec<String>, Vec<Vec<Option<Term>>>);

fn aggregate(
    store: StoreView<'_>,
    plan: &Plan,
    rows: Vec<Vec<Option<u64>>>,
) -> Result<Grouped, RdfError> {
    let group_names: Vec<&str> = plan.group_by.iter().map(|&i| plan.vars[i].as_str()).collect();
    let mut groups: HashMap<Vec<Option<u64>>, Vec<Vec<Option<u64>>>> = HashMap::new();
    for row in rows {
        let key: Vec<Option<u64>> = plan.group_by.iter().map(|&i| row[i]).collect();
        groups.entry(key).or_default().push(row);
    }
    // Deterministic group order.
    let mut keys: Vec<Vec<Option<u64>>> = groups.keys().cloned().collect();
    keys.sort();
    let mut header = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Var(v) => {
                if !group_names.contains(&v.as_str()) {
                    return Err(RdfError::Eval(format!(
                        "?{v} selected but not in GROUP BY"
                    )));
                }
                header.push(v.clone());
            }
            SelectItem::Agg { alias, .. } => header.push(alias.clone()),
        }
    }
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let members = &groups[&key];
        let mut row: Vec<Option<Term>> = Vec::with_capacity(plan.select.len());
        for item in &plan.select {
            match item {
                SelectItem::Var(v) => {
                    let gi = group_names.iter().position(|x| x == v).expect("checked");
                    row.push(key[gi].map(|id| store.dict().term(id).clone()));
                }
                SelectItem::Agg { func, var, .. } => {
                    let vi = var
                        .as_ref()
                        .map(|v| {
                            plan.vars
                                .iter()
                                .position(|x| x == v)
                                .ok_or_else(|| RdfError::Eval(format!("unknown ?{v}")))
                        })
                        .transpose()?;
                    row.push(Some(agg_value(store, *func, vi, members)));
                }
            }
        }
        out.push(row);
    }
    Ok((header, out))
}

fn agg_value(
    store: StoreView<'_>,
    func: AggFunc,
    vi: Option<usize>,
    members: &[Vec<Option<u64>>],
) -> Term {
    match func {
        AggFunc::Count => {
            let n = match vi {
                None => members.len(),
                Some(i) => members.iter().filter(|r| r[i].is_some()).count(),
            };
            Term::integer(n as i64)
        }
        AggFunc::Sum | AggFunc::Avg => {
            let vals: Vec<f64> = members
                .iter()
                .filter_map(|r| vi.and_then(|i| r[i]).and_then(|id| numeric_of(store, id)))
                .collect();
            let sum: f64 = vals.iter().sum();
            match func {
                AggFunc::Sum => Term::double(sum),
                _ => Term::double(if vals.is_empty() { 0.0 } else { sum / vals.len() as f64 }),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            // MIN/MAX share the executor's total OrderKey ordering.
            let mut best: Option<(u64, OrderKey)> = None;
            for r in members {
                if let Some(id) = vi.and_then(|i| r[i]) {
                    let k = order_key(store, id);
                    let better = match &best {
                        None => true,
                        Some((_, bk)) => {
                            if func == AggFunc::Min {
                                k < *bk
                            } else {
                                k > *bk
                            }
                        }
                    };
                    if better {
                        best = Some((id, k));
                    }
                }
            }
            best.map(|(id, _)| store.dict().term(id).clone())
                .unwrap_or_else(|| Term::integer(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IndexMode;

    fn e(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn sample_store(mode: IndexMode) -> TripleStore {
        let mut st = TripleStore::new(mode);
        let name = e("name");
        let age = e("age");
        let knows = e("knows");
        let geom = e("hasGeometry");
        for (who, nm, a) in [("alice", "Alice", 30), ("bob", "Bob", 25), ("carol", "Carol", 35)] {
            st.insert(&e(who), &name, &Term::string(nm));
            st.insert(&e(who), &age, &Term::integer(a));
        }
        st.insert(&e("alice"), &knows, &e("bob"));
        st.insert(&e("alice"), &knows, &e("carol"));
        st.insert(&e("bob"), &knows, &e("carol"));
        st.insert(&e("alice"), &geom, &Term::wkt("POINT (1 1)"));
        st.insert(&e("bob"), &geom, &Term::wkt("POINT (5 5)"));
        st.insert(&e("carol"), &geom, &Term::wkt("POINT (20 20)"));
        st.build_spatial_index();
        st
    }

    fn names_of(sol: &Solutions, col: usize) -> Vec<String> {
        let mut v: Vec<String> = sol
            .rows
            .iter()
            .filter_map(|r| r[col].as_ref())
            .map(|t| t.ntriples())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn basic_bgp_join() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
        )
        .unwrap();
        assert_eq!(sol.len(), 3);
        assert_eq!(names_of(&sol, 0), vec!["\"Bob\"", "\"Carol\"", "\"Carol\""]);
    }

    #[test]
    fn filters_apply() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:age ?a . ?x e:name ?n . FILTER(?a >= 30) }",
        )
        .unwrap();
        assert_eq!(names_of(&sol, 0), vec!["\"Alice\"", "\"Carol\""]);
    }

    #[test]
    fn scan_and_full_agree() {
        for q_text in [
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:age ?a . ?x e:name ?n . FILTER(?a < 31) }",
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        ] {
            let full = query(&sample_store(IndexMode::Full), q_text).unwrap();
            let scan = query(&sample_store(IndexMode::Scan), q_text).unwrap();
            let norm = |s: &Solutions| {
                let mut v: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
                v.sort();
                v
            };
            assert_eq!(norm(&full), norm(&scan), "{q_text}");
        }
    }

    #[test]
    fn spatial_selection_with_pushdown() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 2, "alice and bob inside, carol outside");
    }

    #[test]
    fn distance_filter() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . \
             FILTER(geof:distance(?g, \"POINT (0 0)\"^^geo:wktLiteral) < 3) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1, "only alice within distance 3");
    }

    #[test]
    fn optional_left_join() {
        let mut st = sample_store(IndexMode::Full);
        st.insert(&e("dave"), &e("age"), &Term::integer(40));
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x ?n WHERE { ?x e:age ?a . OPTIONAL { ?x e:name ?n } }",
        )
        .unwrap();
        assert_eq!(sol.len(), 4);
        let dave_row = sol
            .rows
            .iter()
            .find(|r| r[0] == Some(e("dave")))
            .expect("dave present");
        assert_eq!(dave_row[1], None, "dave has no name");
    }

    #[test]
    fn aggregates_with_grouping() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x e:knows ?y } GROUP BY ?x ORDER BY DESC(?n)",
        )
        .unwrap();
        assert_eq!(sol.vars, vec!["x", "n"]);
        assert_eq!(sol.rows[0][0], Some(e("alice")));
        assert_eq!(sol.rows[0][1], Some(Term::integer(2)));
        assert_eq!(sol.rows[1][1], Some(Term::integer(1)));
    }

    #[test]
    fn count_star_and_scalar() {
        let st = sample_store(IndexMode::Full);
        let sol = query(&st, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(12)));
    }

    #[test]
    fn sum_avg_min_max() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?m) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x e:age ?a }",
        )
        .unwrap();
        assert_eq!(sol.rows[0][0], Some(Term::double(90.0)));
        assert_eq!(sol.rows[0][1], Some(Term::double(30.0)));
        assert_eq!(sol.rows[0][2], Some(Term::integer(25)));
        assert_eq!(sol.rows[0][3], Some(Term::integer(35)));
    }

    #[test]
    fn distinct_order_limit_offset() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT DISTINCT ?a WHERE { ?x e:age ?a } ORDER BY ?a LIMIT 2 OFFSET 1",
        )
        .unwrap();
        assert_eq!(sol.rows.len(), 2);
        assert_eq!(sol.rows[0][0], Some(Term::integer(30)));
        assert_eq!(sol.rows[1][0], Some(Term::integer(35)));
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:name \"Nobody\" }",
        )
        .unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn select_star_projects_all_vars() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT * WHERE { ?x e:knows ?y }",
        )
        .unwrap();
        assert_eq!(sol.vars, vec!["x", "y"]);
        assert_eq!(sol.len(), 3);
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("p"), &e("a"));
        st.insert(&e("a"), &e("p"), &e("b"));
        let sol = query(&st, "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:p ?x }").unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows[0][0], Some(e("a")));
    }

    #[test]
    fn empty_where_returns_single_empty_row() {
        let st = sample_store(IndexMode::Full);
        let sol = query(&st, "SELECT (COUNT(*) AS ?n) WHERE { }").unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(1)));
    }

    #[test]
    fn variable_variable_spatial_join() {
        // No constant geometry → no pushdown; the filter still evaluates
        // correctly over both bound variables.
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("zone"), &Term::wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"));
        st.insert(&e("b"), &e("poi"), &Term::wkt("POINT (5 5)"));
        st.insert(&e("c"), &e("poi"), &Term::wkt("POINT (50 50)"));
        st.build_spatial_index();
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?p WHERE { ?z e:zone ?zg . ?p e:poi ?pg . \
             FILTER(geof:sfWithin(?pg, ?zg)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows[0][0], Some(e("b")));
    }

    #[test]
    fn order_by_dates() {
        let mut st = TripleStore::new(IndexMode::Full);
        for (who, iso) in [("a", "2017-06-01"), ("b", "2017-01-15"), ("c", "2017-12-30")] {
            st.insert(
                &e(who),
                &e("sensed"),
                &Term::Literal {
                    lexical: iso.into(),
                    datatype: crate::term::XSD_DATE.into(),
                },
            );
        }
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?s ?d WHERE { ?s e:sensed ?d } ORDER BY ?d",
        )
        .unwrap();
        let order: Vec<_> = sol.rows.iter().map(|r| r[0].clone().unwrap()).collect();
        assert_eq!(order, vec![e("b"), e("a"), e("c")]);
    }

    #[test]
    fn offset_beyond_results_is_empty() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:age ?a } OFFSET 100",
        )
        .unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn filter_on_optional_variable() {
        let mut st = sample_store(IndexMode::Full);
        st.insert(&e("dave"), &e("age"), &Term::integer(40));
        // Dave has no name; the filter over ?n drops his row.
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:age ?a . OPTIONAL { ?x e:name ?n } FILTER(?n != \"Bob\") }",
        )
        .unwrap();
        assert_eq!(sol.len(), 2, "alice and carol; bob filtered; dave errors out");
    }

    /// A store big enough that every parallel code path (hash probes,
    /// candidate enumeration, filter masks, optional joins) actually
    /// splits into multiple chunks.
    fn parallel_corpus_store() -> TripleStore {
        let mut st = TripleStore::new(IndexMode::Full);
        let geom = e("hasGeometry");
        let class = e("class");
        let name = e("name");
        let near = e("near");
        let mut rng: u64 = 42;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for i in 0..600 {
            let s = e(&format!("f{i}"));
            let x = next() * 100.0;
            let y = next() * 100.0;
            st.insert(&s, &geom, &Term::wkt(format!("POINT ({x:.4} {y:.4})")));
            st.insert(&s, &class, &e(if i % 3 == 0 { "crop" } else { "urban" }));
            if i % 2 == 0 {
                st.insert(&s, &name, &Term::string(format!("feature {i}")));
            }
            st.insert(&s, &near, &e(&format!("f{}", (i + 7) % 600)));
        }
        st.build_spatial_index();
        st
    }

    /// The tentpole guarantee: t ∈ {1, 2, 4, 8} produce byte-identical
    /// Solutions over the E2/E3-shaped query corpus.
    #[test]
    fn parallel_executor_is_bit_identical_to_serial() {
        let st = parallel_corpus_store();
        let corpus = [
            // E2/E3 shape: spatial selection with pushdown + COUNT.
            "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((10 10, 40 10, 40 40, 10 40, 10 10))\"^^geo:wktLiteral)) }",
            // Spatial selection projecting the feature ids.
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 25 0, 25 25, 0 25, 0 0))\"^^geo:wktLiteral)) }",
            // Multi-pattern join wide enough to trigger hash probes.
            "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t . ?s e:class e:crop . ?t e:class e:urban }",
            // Join + numeric-ish filter + DISTINCT + ORDER.
            "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?s e:class e:crop . ?s e:name ?n } ORDER BY ?n LIMIT 50",
            // OPTIONAL left join at scale.
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:class e:crop . OPTIONAL { ?s e:name ?n } }",
            // Aggregation with grouping over a join.
            "PREFIX e: <http://e/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s e:class ?c . ?s e:near ?t } GROUP BY ?c ORDER BY ?c",
            // Spatial join with pushdown + second pattern.
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:hasGeometry ?g . ?s e:name ?n . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((30 30, 70 30, 70 70, 30 70, 30 30))\"^^geo:wktLiteral)) }",
        ];
        for q_text in corpus {
            let serial = query_with_threads(&st, q_text, 1).unwrap();
            assert!(!serial.vars.is_empty());
            for t in [2, 4, 8] {
                let parallel = query_with_threads(&st, q_text, t).unwrap();
                assert_eq!(serial, parallel, "threads={t} diverged on {q_text}");
            }
        }
    }

    /// Acceptance criterion: batch-at-a-time streaming is identical to
    /// the collect path at t ∈ {1, 4}, across the whole op-order matrix
    /// (DISTINCT, ORDER BY, OFFSET/LIMIT, aggregation, OPTIONAL).
    #[test]
    fn solution_stream_is_identical_to_collect() {
        let st = parallel_corpus_store();
        let corpus = [
            "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((10 10, 40 10, 40 40, 10 40, 10 10))\"^^geo:wktLiteral)) }",
            "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t . ?s e:class e:crop . ?t e:class e:urban }",
            "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?s e:class e:crop . ?s e:name ?n } ORDER BY ?n LIMIT 50",
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:class e:crop . OPTIONAL { ?s e:name ?n } }",
            "PREFIX e: <http://e/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s e:class ?c . ?s e:near ?t } GROUP BY ?c ORDER BY ?c",
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:near ?t } OFFSET 13 LIMIT 40",
            "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c } OFFSET 1",
            // Op-order matrix over the fully pipelined (no ORDER / no agg) path.
            "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c } LIMIT 1",
            "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t } OFFSET 550 LIMIT 100",
            "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?s e:name ?n } OFFSET 5 LIMIT 20",
            // Dup-heavy DISTINCT over a join: 600 bindings collapse to 2.
            "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c . ?s e:near ?t }",
            // ORDER + OFFSET + LIMIT without DISTINCT (eager sort path).
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?s e:name ?n } ORDER BY DESC(?n) OFFSET 3 LIMIT 7",
        ] ;
        for q_text in corpus {
            for t in [1usize, 4] {
                let collected = query_with_threads(&st, q_text, t).unwrap();
                let q = crate::parser::parse_query(q_text).unwrap();
                let plan = crate::plan::plan(&st, &q).unwrap();
                let mut stream = SolutionStream::new(&st, &plan, t).unwrap();
                assert_eq!(stream.vars(), collected.vars.as_slice(), "{q_text}");
                let mut rows = Vec::new();
                let mut batches = 0usize;
                while let Some(b) = stream.next_batch() {
                    assert!(!b.is_empty(), "empty batches are never yielded");
                    assert!(b.len() <= STREAM_BATCH_ROWS);
                    rows.extend(b);
                    batches += 1;
                }
                assert_eq!(rows, collected.rows, "t={t} stream diverged on {q_text}");
                if collected.rows.len() > STREAM_BATCH_ROWS {
                    assert!(batches > 1, "large result must span batches");
                }
                // The one-shot collector agrees too.
                let again = SolutionStream::new(&st, &plan, t).unwrap().collect();
                assert_eq!(again, collected, "{q_text}");
            }
        }
    }

    /// The tentpole's memory bound: on the non-aggregate, non-ORDER path
    /// the first streamed batch is produced after touching only O(batch)
    /// probe rows — not the full result set — and the resident-row
    /// high-water mark stays O(batch) even after a full drain.
    #[test]
    fn first_batch_touches_o_batch_probe_rows() {
        let mut st = TripleStore::new(IndexMode::Full);
        let near = e("near");
        let poi = e("poi");
        let name = e("name");
        for i in 0..10_000u32 {
            let s = e(&format!("s{i}"));
            st.insert(&s, &near, &e(&format!("s{}", (i + 1) % 10_000)));
            if i < 500 {
                st.insert(&s, &poi, &e("marker"));
            }
            if i < 600 {
                st.insert(&s, &name, &Term::string(format!("site {i}")));
            }
        }
        let cases: [(&str, usize); 2] = [
            // Single-pattern scan over 10k matches.
            ("PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t }", 10_000),
            // Dense two-pattern join (hash-probe eligible: build side < cap).
            (
                "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:poi ?x . ?s e:name ?n }",
                500,
            ),
        ];
        let bound = (8 * STREAM_BATCH_ROWS) as u64;
        for (q_text, total) in cases {
            let q = crate::parser::parse_query(q_text).unwrap();
            let plan = crate::plan::plan(&st, &q).unwrap();
            for t in [1usize, 4] {
                let mut core = stream_plan(&st, &plan, t).unwrap();
                assert_eq!(core.rows_touched(), 0, "no join work before the first pull");
                let first = core.next_batch(&st).unwrap();
                assert_eq!(first.len(), STREAM_BATCH_ROWS);
                let touched = core.rows_touched();
                assert!(
                    touched <= bound,
                    "t={t} {q_text}: first batch touched {touched} probe rows (> {bound})"
                );
                assert!(
                    core.peak_resident_rows() <= bound,
                    "t={t} {q_text}: peak resident {} rows after first batch",
                    core.peak_resident_rows()
                );
                let mut rows = first.len();
                while let Some(b) = core.next_batch(&st) {
                    rows += b.len();
                }
                assert_eq!(rows, total, "t={t} {q_text}");
                assert!(
                    core.peak_resident_rows() <= bound,
                    "t={t} {q_text}: full drain kept {} rows resident (> {bound})",
                    core.peak_resident_rows()
                );
            }
        }
    }

    /// Satellite: streamed DISTINCT dedups on projected dictionary ids,
    /// so a dup-heavy unordered projection stays identical to collect
    /// and never materialises the non-distinct rows.
    #[test]
    fn distinct_streams_dedup_on_ids() {
        let st = parallel_corpus_store();
        let q_text = "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c }";
        for t in [1usize, 4] {
            let collected = query_with_threads(&st, q_text, t).unwrap();
            assert_eq!(collected.len(), 2, "600 class bindings collapse to 2 classes");
            let q = crate::parser::parse_query(q_text).unwrap();
            let plan = crate::plan::plan(&st, &q).unwrap();
            let streamed = SolutionStream::new(&st, &plan, t).unwrap().collect();
            assert_eq!(streamed, collected, "t={t}");
        }
    }

    /// A store whose ORDER BY column mixes every OrderKey rank with
    /// heavy duplication: integers mod 7, floats (including a NaN-typed
    /// double, reachable because `decode_non_geometry` parses "NaN"),
    /// dates, strings from a tiny alphabet, and IRIs. Some subjects have
    /// no value at all (unbound keys via OPTIONAL).
    fn topk_corpus_store() -> TripleStore {
        let mut st = TripleStore::new(IndexMode::Full);
        let val = e("val");
        let tag = e("tag");
        let mut rng: u64 = 7;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as u32
        };
        for i in 0..400u32 {
            let s = e(&format!("s{i}"));
            st.insert(&s, &tag, &e("thing"));
            let t = match next() % 6 {
                0 => Term::integer((next() % 7) as i64),
                1 => Term::double((next() % 5) as f64 / 2.0),
                2 => Term::Literal {
                    lexical: "NaN".into(),
                    datatype: crate::term::XSD_DOUBLE.into(),
                },
                3 => Term::Literal {
                    lexical: format!("2017-0{}-01", 1 + next() % 9),
                    datatype: crate::term::XSD_DATE.into(),
                },
                4 => Term::string(format!("s{}", next() % 4)),
                _ => e(&format!("iri{}", next() % 3)),
            };
            if next() % 8 != 0 {
                st.insert(&s, &val, &t);
            }
        }
        st
    }

    /// Tentpole identity: for every (k, offset, direction, thread count)
    /// the bounded-heap top-k path, the forced full-sort baseline and the
    /// batch-at-a-time streamed drain produce the same rows — across
    /// dup-heavy keys, NaN doubles, mixed literal types, unbound keys,
    /// OFFSET > 0 and k ≥ n.
    #[test]
    fn topk_equals_full_sort_equals_streamed() {
        let st = topk_corpus_store();
        let queries = [
            "PREFIX e: <http://e/> SELECT ?s ?v WHERE { ?s e:val ?v } ORDER BY ?v LIMIT {K} OFFSET {O}",
            "PREFIX e: <http://e/> SELECT ?s ?v WHERE { ?s e:val ?v } ORDER BY DESC(?v) LIMIT {K} OFFSET {O}",
            // Unbound keys: OPTIONAL rows sort first ascending.
            "PREFIX e: <http://e/> SELECT ?s ?v WHERE { ?s e:tag e:thing . OPTIONAL { ?s e:val ?v } } ORDER BY ?v LIMIT {K} OFFSET {O}",
        ];
        for template in queries {
            for (k, o) in [(0usize, 0usize), (1, 0), (3, 5), (10, 0), (50, 17), (400, 0), (1000, 3)] {
                let q_text = template
                    .replace("{K}", &k.to_string())
                    .replace("{O}", &o.to_string());
                let q = crate::parser::parse_query(&q_text).unwrap();
                let plan = crate::plan::plan(&st, &q).unwrap();
                assert_eq!(plan.fast_path(), crate::plan::FastPath::TopK, "{q_text}");
                for t in [1usize, 4] {
                    let fast = execute_plan(&st, &plan, t).unwrap();
                    let slow = execute_plan_baseline(&st, &plan, t).unwrap();
                    assert_eq!(fast, slow, "t={t} k={k} o={o}: heap != full sort: {q_text}");
                    let mut stream = SolutionStream::new(&st, &plan, t).unwrap();
                    let mut rows = Vec::new();
                    while let Some(b) = stream.next_batch() {
                        rows.extend(b);
                    }
                    assert_eq!(rows, fast.rows, "t={t} k={k} o={o}: streamed != heap: {q_text}");
                    assert!(fast.rows.len() <= k, "LIMIT respected");
                }
            }
        }
    }

    /// The count fast paths (COUNT without GROUP BY, all-COUNT GROUP BY)
    /// are bit-identical to the generic materialise-then-group aggregate,
    /// including the zero-input-rows edge (empty result, not a 0 row).
    #[test]
    fn count_fast_paths_match_generic_aggregate() {
        let st = parallel_corpus_store();
        let cases = [
            ("PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s e:near ?t }", crate::plan::FastPath::FastCount),
            ("PREFIX e: <http://e/> SELECT (COUNT(?n) AS ?c) WHERE { ?s e:class e:crop . OPTIONAL { ?s e:name ?n } }", crate::plan::FastPath::FastCount),
            // Zero join rows: both paths yield an empty result set.
            ("PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s e:nosuch ?g }", crate::plan::FastPath::FastCount),
            ("PREFIX e: <http://e/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s e:class ?c . ?s e:near ?t } GROUP BY ?c ORDER BY ?c", crate::plan::FastPath::GroupCount),
            ("PREFIX e: <http://e/> SELECT ?c (COUNT(*) AS ?all) (COUNT(?n) AS ?named) WHERE { ?s e:class ?c . OPTIONAL { ?s e:name ?n } } GROUP BY ?c", crate::plan::FastPath::GroupCount),
            ("PREFIX e: <http://e/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s e:nosuch ?c } GROUP BY ?c", crate::plan::FastPath::GroupCount),
            // Non-count aggregates stay generic and still agree.
            ("PREFIX e: <http://e/> SELECT (SUM(?s) AS ?n) WHERE { ?s e:near ?t }", crate::plan::FastPath::Aggregate),
        ];
        for (q_text, want_route) in cases {
            let q = crate::parser::parse_query(q_text).unwrap();
            let plan = crate::plan::plan(&st, &q).unwrap();
            assert_eq!(plan.fast_path(), want_route, "{q_text}");
            for t in [1usize, 4] {
                let fast = execute_plan(&st, &plan, t).unwrap();
                let slow = execute_plan_baseline(&st, &plan, t).unwrap();
                assert_eq!(fast, slow, "t={t}: {q_text}");
            }
        }
    }

    /// COUNT(*) on the fast path never materialises terms and keeps the
    /// pipeline's O(batch) resident bound instead of draining the whole
    /// row set like the generic aggregate.
    #[test]
    fn fast_count_keeps_pipeline_memory_bound() {
        let mut st = TripleStore::new(IndexMode::Full);
        let near = e("near");
        for i in 0..10_000u32 {
            st.insert(&e(&format!("s{i}")), &near, &e(&format!("s{}", (i + 1) % 10_000)));
        }
        let q = crate::parser::parse_query(
            "PREFIX e: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s e:near ?t }",
        )
        .unwrap();
        let plan = crate::plan::plan(&st, &q).unwrap();
        let bound = (8 * STREAM_BATCH_ROWS) as u64;
        for t in [1usize, 4] {
            let mut fast = stream_plan(&st, &plan, t).unwrap();
            let rows = fast.next_batch(&st).unwrap();
            assert_eq!(rows[0][0], Some(Term::integer(10_000)));
            assert!(
                fast.peak_resident_rows() <= bound,
                "t={t}: fast count kept {} rows resident",
                fast.peak_resident_rows()
            );
            let mut slow = stream_plan_opts(&st, Arc::new(plan.clone()), t, false).unwrap();
            let srows = slow.next_batch(&st).unwrap();
            assert_eq!(srows, rows);
            assert_eq!(slow.peak_resident_rows(), 10_000, "generic path drains all");
        }
    }

    /// The bounded heap's memory win, observable at test scale: draining
    /// 10k rows through ORDER BY + LIMIT 5 keeps O(batch + k) resident
    /// where the full sort holds all 10k.
    #[test]
    fn topk_keeps_bounded_resident_rows() {
        let mut st = TripleStore::new(IndexMode::Full);
        let score = e("score");
        let mut rng: u64 = 99;
        for i in 0..10_000u32 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            st.insert(
                &e(&format!("s{i}")),
                &score,
                &Term::integer((rng >> 33) as i64 % 1000),
            );
        }
        let q = crate::parser::parse_query(
            "PREFIX e: <http://e/> SELECT ?s ?v WHERE { ?s e:score ?v } ORDER BY DESC(?v) LIMIT 5",
        )
        .unwrap();
        let plan = crate::plan::plan(&st, &q).unwrap();
        for t in [1usize, 4] {
            let fast = stream_plan(&st, &plan, t).unwrap();
            let slow = stream_plan_opts(&st, Arc::new(plan.clone()), t, false).unwrap();
            assert!(
                fast.peak_resident_rows() <= (2 * TOPK_PULL_ROWS) as u64,
                "t={t}: top-k kept {} rows resident",
                fast.peak_resident_rows()
            );
            assert_eq!(slow.peak_resident_rows(), 10_000, "full sort drains all");
            assert_eq!(
                collect_core(&st, fast).rows,
                collect_core(&st, slow).rows,
                "t={t}"
            );
        }
    }

    #[test]
    fn prepared_plan_reuse_matches_one_shot() {
        let st = parallel_corpus_store();
        let q_text = "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t . ?s e:class e:crop }";
        let q = crate::parser::parse_query(q_text).unwrap();
        let plan = crate::plan::plan(&st, &q).unwrap();
        let once = query_with_threads(&st, q_text, 4).unwrap();
        for _ in 0..3 {
            assert_eq!(execute_plan(&st, &plan, 4).unwrap(), once);
        }
    }
}
