//! Filter expressions and their evaluation.
//!
//! SPARQL's error semantics apply: a type error in a filter makes the
//! filter unsatisfied (the row is dropped), it does not fail the query.

use crate::dict::Dictionary;
use crate::term::{decode_non_geometry, Term, Value};
use ee_geo::{algorithms, wkt, Envelope, Geometry};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// GeoSPARQL simple-feature predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialOp {
    /// `geof:sfIntersects`
    Intersects,
    /// `geof:sfContains`
    Contains,
    /// `geof:sfWithin`
    Within,
}

/// A filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// A constant term.
    Const(Term),
    /// Binary comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Spatial predicate between two geometry expressions.
    Spatial(SpatialOp, Box<Expr>, Box<Expr>),
    /// `geof:distance(a, b)` in coordinate units.
    Distance(Box<Expr>, Box<Expr>),
    /// Arithmetic `+ - * /` over numbers.
    Arith(Box<Expr>, char, Box<Expr>),
}

/// A resolved scalar during evaluation.
#[derive(Debug, Clone)]
pub enum Scalar<'a> {
    /// Numeric (integers widened to f64).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(&'a str),
    /// Date as epoch days.
    Date(i64),
    /// Geometry reference.
    Geom(&'a Geometry),
    /// An IRI or other id-only term (identity comparisons only).
    Id(u64),
}

/// Evaluation context: variable bindings into the dictionary, plus an
/// overlay for constant terms that may not be interned in the store
/// (query-supplied geometries, dates, numbers).
pub struct EvalCtx<'a> {
    /// The store dictionary.
    pub dict: &'a Dictionary,
    /// Variable bindings (name → id).
    pub lookup: &'a dyn Fn(&str) -> Option<u64>,
    /// Geometries parsed out of constant terms at query-prepare time.
    pub const_geoms: &'a [(Term, Geometry)],
}

impl<'a> EvalCtx<'a> {
    fn scalar_of_id(&self, id: u64) -> Option<Scalar<'a>> {
        match self.dict.value(id) {
            Value::Iri => Some(Scalar::Id(id)),
            Value::Str(s) => Some(Scalar::Str(s)),
            Value::Int(i) => Some(Scalar::Num(*i as f64)),
            Value::Float(f) => Some(Scalar::Num(*f)),
            Value::Bool(b) => Some(Scalar::Bool(*b)),
            Value::Date(d) => Some(Scalar::Date(*d)),
            Value::Geometry(gi) => Some(Scalar::Geom(self.dict.geometry(*gi))),
            Value::Malformed => None,
        }
    }

    fn scalar_of_const(&self, term: &'a Term) -> Option<Scalar<'a>> {
        // Geometry constants come from the pre-parsed overlay.
        if let Some((_, g)) = self.const_geoms.iter().find(|(t, _)| t == term) {
            return Some(Scalar::Geom(g));
        }
        match decode_non_geometry(term)? {
            Value::Iri => {
                // IRIs compare by store identity; unknown IRIs can still
                // be compared as strings-of-identity via the lexical form.
                match self.dict.id_of(term) {
                    Some(id) => Some(Scalar::Id(id)),
                    None => match term {
                        Term::Iri(s) => Some(Scalar::Str(s)),
                        _ => None,
                    },
                }
            }
            Value::Str(_) => match term {
                Term::Literal { lexical, .. } => Some(Scalar::Str(lexical)),
                _ => None,
            },
            Value::Int(i) => Some(Scalar::Num(i as f64)),
            Value::Float(f) => Some(Scalar::Num(f)),
            Value::Bool(b) => Some(Scalar::Bool(b)),
            Value::Date(d) => Some(Scalar::Date(d)),
            Value::Geometry(_) | Value::Malformed => None,
        }
    }
}

/// Evaluate an expression to a scalar; `None` is SPARQL's type error.
pub fn eval<'a>(expr: &'a Expr, ctx: &EvalCtx<'a>) -> Option<Scalar<'a>> {
    match expr {
        Expr::Var(name) => {
            let id = (ctx.lookup)(name)?;
            ctx.scalar_of_id(id)
        }
        Expr::Const(term) => ctx.scalar_of_const(term),
        Expr::Cmp(lhs, op, rhs) => {
            let l = eval(lhs, ctx)?;
            let r = eval(rhs, ctx)?;
            compare(&l, &r, *op).map(Scalar::Bool)
        }
        Expr::And(a, b) => {
            let av = truth(eval(a, ctx))?;
            if !av {
                return Some(Scalar::Bool(false));
            }
            Some(Scalar::Bool(truth(eval(b, ctx))?))
        }
        Expr::Or(a, b) => {
            let av = truth(eval(a, ctx))?;
            if av {
                return Some(Scalar::Bool(true));
            }
            Some(Scalar::Bool(truth(eval(b, ctx))?))
        }
        Expr::Not(a) => Some(Scalar::Bool(!truth(eval(a, ctx))?)),
        Expr::Spatial(op, a, b) => {
            let (Scalar::Geom(ga), Scalar::Geom(gb)) = (eval(a, ctx)?, eval(b, ctx)?) else {
                return None;
            };
            let v = match op {
                SpatialOp::Intersects => algorithms::intersects(ga, gb),
                SpatialOp::Contains => algorithms::contains(ga, gb),
                SpatialOp::Within => algorithms::within(ga, gb),
            };
            Some(Scalar::Bool(v))
        }
        Expr::Distance(a, b) => {
            let (Scalar::Geom(ga), Scalar::Geom(gb)) = (eval(a, ctx)?, eval(b, ctx)?) else {
                return None;
            };
            Some(Scalar::Num(algorithms::distance(ga, gb)))
        }
        Expr::Arith(a, op, b) => {
            let (Scalar::Num(x), Scalar::Num(y)) = (eval(a, ctx)?, eval(b, ctx)?) else {
                return None;
            };
            let v = match op {
                '+' => x + y,
                '-' => x - y,
                '*' => x * y,
                '/' => {
                    if y == 0.0 {
                        return None;
                    }
                    x / y
                }
                _ => return None,
            };
            Some(Scalar::Num(v))
        }
    }
}

/// Effective boolean value.
pub fn truth(s: Option<Scalar>) -> Option<bool> {
    match s? {
        Scalar::Bool(b) => Some(b),
        Scalar::Num(n) => Some(n != 0.0),
        Scalar::Str(s) => Some(!s.is_empty()),
        _ => None,
    }
}

fn compare(l: &Scalar, r: &Scalar, op: CmpOp) -> Option<bool> {
    use std::cmp::Ordering;
    let ord = match (l, r) {
        (Scalar::Num(a), Scalar::Num(b)) => a.partial_cmp(b)?,
        (Scalar::Str(a), Scalar::Str(b)) => a.cmp(b),
        (Scalar::Date(a), Scalar::Date(b)) => a.cmp(b),
        (Scalar::Bool(a), Scalar::Bool(b)) => a.cmp(b),
        (Scalar::Id(a), Scalar::Id(b)) => {
            // Identity only: equality/inequality meaningful.
            match op {
                CmpOp::Eq => return Some(a == b),
                CmpOp::Ne => return Some(a != b),
                _ => return None,
            }
        }
        _ => return None,
    };
    Some(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

/// Parse the geometry constants out of an expression tree (done once at
/// query preparation). Returns `(term, geometry)` pairs.
pub fn collect_const_geometries(expr: &Expr, out: &mut Vec<(Term, Geometry)>) {
    match expr {
        Expr::Const(t @ Term::Literal { lexical, datatype })
            if datatype == crate::term::GEO_WKT
            && !out.iter().any(|(seen, _)| seen == t) => {
                if let Ok(g) = wkt::parse_wkt(lexical) {
                    out.push((t.clone(), g));
                }
            }
        Expr::Cmp(a, _, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Spatial(_, a, b)
        | Expr::Distance(a, b)
        | Expr::Arith(a, _, b) => {
            collect_const_geometries(a, out);
            collect_const_geometries(b, out);
        }
        Expr::Not(a) => collect_const_geometries(a, out),
        _ => {}
    }
}

/// If this filter is a spatial predicate between a variable and a constant
/// geometry (in either argument order), return `(variable, envelope)` for
/// R-tree pushdown. The envelope test is a *necessary* condition for all
/// three predicates, so pushdown is always sound filter–refine.
pub fn spatial_pushdown(expr: &Expr, const_geoms: &[(Term, Geometry)]) -> Option<(String, Envelope)> {
    let Expr::Spatial(_, a, b) = expr else {
        return None;
    };
    let env_of = |e: &Expr| -> Option<Envelope> {
        if let Expr::Const(t) = e {
            const_geoms
                .iter()
                .find(|(seen, _)| seen == t)
                .map(|(_, g)| g.envelope())
        } else {
            None
        }
    };
    match (a.as_ref(), b.as_ref()) {
        (Expr::Var(v), c) => env_of(c).map(|env| (v.clone(), env)),
        (c, Expr::Var(v)) => env_of(c).map(|env| (v.clone(), env)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ctx_eval(expr: &Expr, bindings: &[(&str, Term)]) -> Option<bool> {
        let mut dict = Dictionary::new();
        let map: HashMap<String, u64> = bindings
            .iter()
            .map(|(n, t)| (n.to_string(), dict.intern(t)))
            .collect();
        let mut geoms = Vec::new();
        collect_const_geometries(expr, &mut geoms);
        let lookup = move |name: &str| map.get(name).copied();
        let ctx = EvalCtx {
            dict: &dict,
            lookup: &lookup,
            const_geoms: &geoms,
        };
        truth(eval(expr, &ctx))
    }

    fn var(n: &str) -> Expr {
        Expr::Var(n.into())
    }

    fn c(t: Term) -> Expr {
        Expr::Const(t)
    }

    #[test]
    fn numeric_comparisons() {
        let e = Expr::Cmp(Box::new(var("x")), CmpOp::Gt, Box::new(c(Term::integer(5))));
        assert_eq!(ctx_eval(&e, &[("x", Term::integer(7))]), Some(true));
        assert_eq!(ctx_eval(&e, &[("x", Term::integer(3))]), Some(false));
        // Mixed int/double compare numerically.
        assert_eq!(ctx_eval(&e, &[("x", Term::double(5.5))]), Some(true));
    }

    #[test]
    fn string_and_date_comparisons() {
        let e = Expr::Cmp(
            Box::new(var("s")),
            CmpOp::Lt,
            Box::new(c(Term::string("mango"))),
        );
        assert_eq!(ctx_eval(&e, &[("s", Term::string("apple"))]), Some(true));
        let d = Expr::Cmp(
            Box::new(var("d")),
            CmpOp::Ge,
            Box::new(c(Term::Literal {
                lexical: "2017-06-01".into(),
                datatype: crate::term::XSD_DATE.into(),
            })),
        );
        let date = Term::Literal {
            lexical: "2017-07-15".into(),
            datatype: crate::term::XSD_DATE.into(),
        };
        assert_eq!(ctx_eval(&d, &[("d", date)]), Some(true));
    }

    #[test]
    fn boolean_algebra_short_circuits() {
        let t = c(Term::boolean(true));
        let f = c(Term::boolean(false));
        assert_eq!(
            ctx_eval(&Expr::And(Box::new(t.clone()), Box::new(f.clone())), &[]),
            Some(false)
        );
        assert_eq!(
            ctx_eval(&Expr::Or(Box::new(t.clone()), Box::new(f.clone())), &[]),
            Some(true)
        );
        assert_eq!(ctx_eval(&Expr::Not(Box::new(f)), &[]), Some(true));
        // False && error short-circuits to false (SPARQL semantics).
        let err = var("unbound");
        let sc = Expr::And(Box::new(c(Term::boolean(false))), Box::new(err));
        assert_eq!(ctx_eval(&sc, &[]), Some(false));
    }

    #[test]
    fn type_errors_yield_none() {
        // Comparing a number to a string is a type error, not false.
        let e = Expr::Cmp(
            Box::new(c(Term::integer(1))),
            CmpOp::Lt,
            Box::new(c(Term::string("x"))),
        );
        assert_eq!(ctx_eval(&e, &[]), None);
        // Unbound variable is an error.
        assert_eq!(ctx_eval(&var("nope"), &[]), None);
        // Division by zero.
        let div = Expr::Arith(
            Box::new(c(Term::integer(1))),
            '/',
            Box::new(c(Term::integer(0))),
        );
        assert_eq!(ctx_eval(&div, &[]), None);
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Cmp(
            Box::new(Expr::Arith(
                Box::new(c(Term::integer(3))),
                '*',
                Box::new(c(Term::integer(4))),
            )),
            CmpOp::Eq,
            Box::new(c(Term::integer(12))),
        );
        assert_eq!(ctx_eval(&e, &[]), Some(true));
    }

    #[test]
    fn spatial_predicates() {
        let poly = Term::wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let inside = Term::wkt("POINT (5 5)");
        let outside = Term::wkt("POINT (50 50)");
        let e = Expr::Spatial(
            SpatialOp::Intersects,
            Box::new(var("g")),
            Box::new(c(poly.clone())),
        );
        assert_eq!(ctx_eval(&e, &[("g", inside.clone())]), Some(true));
        assert_eq!(ctx_eval(&e, &[("g", outside)]), Some(false));
        let w = Expr::Spatial(SpatialOp::Within, Box::new(var("g")), Box::new(c(poly)));
        assert_eq!(ctx_eval(&w, &[("g", inside)]), Some(true));
    }

    #[test]
    fn distance_function() {
        let e = Expr::Cmp(
            Box::new(Expr::Distance(
                Box::new(var("g")),
                Box::new(c(Term::wkt("POINT (0 0)"))),
            )),
            CmpOp::Lt,
            Box::new(c(Term::double(5.1))),
        );
        assert_eq!(ctx_eval(&e, &[("g", Term::wkt("POINT (3 4)"))]), Some(true));
        assert_eq!(ctx_eval(&e, &[("g", Term::wkt("POINT (30 40)"))]), Some(false));
    }

    #[test]
    fn pushdown_detection() {
        let poly = Term::wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        let e = Expr::Spatial(
            SpatialOp::Intersects,
            Box::new(var("g")),
            Box::new(c(poly.clone())),
        );
        let mut geoms = Vec::new();
        collect_const_geometries(&e, &mut geoms);
        let (v, env) = spatial_pushdown(&e, &geoms).unwrap();
        assert_eq!(v, "g");
        assert_eq!(env, Envelope::new(0.0, 0.0, 4.0, 4.0));
        // Reversed argument order also detected.
        let rev = Expr::Spatial(SpatialOp::Contains, Box::new(c(poly)), Box::new(var("g")));
        assert!(spatial_pushdown(&rev, &geoms).is_some());
        // Var-var spatial joins cannot push down.
        let vv = Expr::Spatial(SpatialOp::Intersects, Box::new(var("a")), Box::new(var("b")));
        assert!(spatial_pushdown(&vv, &geoms).is_none());
    }
}
