//! Physical operators: pull-based pattern extension (resumable index
//! scans, hash probes, R-tree candidate enumeration), filter masks, and
//! OPTIONAL left-joins over columnar [`Batch`]es.
//!
//! ## Pull-based pipeline
//!
//! A [`Pipeline`] chains the plan's join steps into a volcano-style
//! operator stack: each stage pulls bounded chunks of probe rows from the
//! stage above it ([`PIPELINE_CHUNK_ROWS`] at a time), extends/filters
//! them, and buffers only the overflow. The first pattern is a
//! [`SeedScan`] — a resumable index cursor or an incremental slice of the
//! R-tree candidate set — so producing the first n result rows touches
//! O(n) probe rows, not the whole result set. Build sides (hash tables)
//! may still materialise; probe sides never do. OPTIONAL groups and
//! residual filters are row-local, so they run chunk-wise inside the same
//! pipeline without changing results.
//!
//! ## Parallelism contract
//!
//! Every operator here is bit-identical to its serial execution for any
//! thread count. Two rules enforce that:
//!
//! 1. **Access-path selection never looks at the thread count.** Whether
//!    a step runs as a hash probe, an index nested-loop, or a candidate
//!    enumeration is a function of the plan, the chunk size (a constant),
//!    and the store's cardinality estimate only — so serial and parallel
//!    runs take the same path and see the same per-row match order.
//! 2. **Fixed-order reduction.** Work is split into contiguous chunks of
//!    the input (rows or candidate ids) via
//!    [`ee_util::par::map_chunks_guided`]; each chunk produces a private
//!    mini-batch and the chunks are concatenated in chunk order, which is
//!    input order. Chunk *boundaries* may vary with the thread count;
//!    the concatenated output cannot.
//!
//! Guided (work-stealing) scheduling matters here because join probes and
//! spatial refinement are skewed: one polygon row can cost 100× its
//! neighbour, so maximal-even chunks would leave threads idle.

use crate::batch::{Batch, UNBOUND};
use crate::expr::{eval, truth, EvalCtx};
use crate::plan::{FilterPlan, Plan, Slot};
use crate::store::{IdTriple, IndexMode, StoreView, ViewCursor, ESTIMATE_CAP};
use ee_util::par;
use std::collections::HashMap;
use std::sync::Arc;

/// Chunks per thread for guided scheduling: enough slack that a skewed
/// chunk can be stolen around, not so many that coordination dominates.
const OVERSUBSCRIBE: usize = 8;

/// Minimum probe-side rows before building a hash table pays for itself.
const HASH_MIN_ROWS: usize = 32;

/// Probe rows pulled per inter-stage transfer. A constant (never derived
/// from the thread count or the result size) so chunk sequences — and
/// therefore access-path decisions — are identical across thread counts
/// and between streamed and collected execution. Matches
/// [`crate::exec::STREAM_BATCH_ROWS`] so one result batch costs one pull
/// per stage.
pub const PIPELINE_CHUNK_ROWS: usize = 256;

/// The spatial candidate set for a pattern's object position, when the
/// object is a still-unbound variable with an R-tree pushdown set and the
/// store supports indexed enumeration.
fn object_candidates<'p>(
    store: StoreView<'_>,
    plan: &'p Plan,
    slots: &[Slot; 3],
    row: &[u64],
) -> Option<&'p [u64]> {
    match &slots[2] {
        Slot::Var(v) if row[*v] == UNBOUND && store.mode() == IndexMode::Full => {
            plan.candidates.get(v).map(|c| c.as_slice())
        }
        _ => None,
    }
}

fn fixed_ids(slots: &[Slot; 3], row: &[u64]) -> [Option<u64>; 3] {
    let f = |s: &Slot| match s {
        Slot::Const(id) => Some(*id),
        Slot::Var(v) => {
            let id = row[*v];
            if id == UNBOUND {
                None
            } else {
                Some(id)
            }
        }
        Slot::Impossible => Some(u64::MAX),
    };
    [f(&slots[0]), f(&slots[1]), f(&slots[2])]
}

/// Whether enumerating `cands` beats scanning the pattern directly: the
/// pattern's own estimate is at the cap (unbounded scan) or larger than
/// the candidate set. Depends only on the store and bindings — never the
/// thread count — so serial and parallel runs pick the same path. When
/// this says no, the direct scan still honours the candidate set: `unify`
/// rejects non-candidates by binary search.
fn candidates_pay(store: StoreView<'_>, cands: &[u64], fixed: &[Option<u64>; 3]) -> bool {
    let est = store.estimate(fixed[0], fixed[1], None);
    est >= ESTIMATE_CAP || cands.len() < est
}

/// All index matches of `slots` under the bindings in `row`, taking the
/// candidate-enumeration access path when spatial pushdown applies and
/// is estimated cheaper than the direct scan.
fn collect_matches(
    store: StoreView<'_>,
    plan: &Plan,
    slots: &[Slot; 3],
    row: &[u64],
) -> Vec<IdTriple> {
    let fixed = fixed_ids(slots, row);
    let mut matches = Vec::new();
    match object_candidates(store, plan, slots, row) {
        Some(cands) if candidates_pay(store, cands, &fixed) => {
            for &id in cands {
                store.match_pattern(fixed[0], fixed[1], Some(id), &mut |t| {
                    matches.push(t);
                    true
                });
            }
        }
        _ => {
            store.match_pattern(fixed[0], fixed[1], fixed[2], &mut |t| {
                matches.push(t);
                true
            });
        }
    }
    matches
}

/// Unify `triple` against `slots` into `work` (a copy of the input row).
/// Returns false on a repeated-variable mismatch or a candidate-set miss;
/// `work` is garbage after a false return and must be re-copied.
fn unify(plan: &Plan, slots: &[Slot; 3], triple: IdTriple, work: &mut [u64]) -> bool {
    let ids = [triple.0, triple.1, triple.2];
    for (slot, &id) in slots.iter().zip(&ids) {
        if let Slot::Var(v) = slot {
            let existing = work[*v];
            if existing == UNBOUND {
                if let Some(cands) = plan.candidates.get(v) {
                    if cands.binary_search(&id).is_err() {
                        return false;
                    }
                }
                work[*v] = id;
            } else if existing != id {
                return false;
            }
        }
    }
    true
}

/// Incremental enumerator for the pipeline's first join step, probed by
/// the single all-unbound seed row. Each `next_rows` call touches at most
/// `want` candidate ids (R-tree path) or pauses the index cursor after
/// `want` unified rows (scan path), so the first batch of a selection
/// query no longer enumerates the whole pattern.
struct SeedScan {
    kind: SeedKind,
}

enum SeedKind {
    /// Nothing (left) to produce.
    Done,
    /// No required patterns: the single all-unbound seed row, once.
    Unit,
    /// R-tree candidate enumeration over the pushdown set of object
    /// variable `v`, `next` ids consumed so far.
    Candidates { pi: usize, v: usize, next: usize },
    /// Resumable direct scan of the pattern's best index.
    Scan { pi: usize, cursor: ViewCursor },
}

impl SeedScan {
    fn new(store: StoreView<'_>, plan: &Plan) -> SeedScan {
        if plan.impossible {
            return SeedScan { kind: SeedKind::Done };
        }
        let Some(&pi) = plan.order.first() else {
            return SeedScan { kind: SeedKind::Unit };
        };
        let slots = &plan.slots[pi];
        if slots.iter().any(|s| matches!(s, Slot::Impossible)) {
            return SeedScan { kind: SeedKind::Done };
        }
        let seed = vec![UNBOUND; plan.vars.len()];
        let kind = match object_candidates(store, plan, slots, &seed)
            .filter(|c| candidates_pay(store, c, &fixed_ids(slots, &seed)))
        {
            Some(_) => match &slots[2] {
                Slot::Var(v) => SeedKind::Candidates { pi, v: *v, next: 0 },
                _ => unreachable!("object_candidates implies an object variable"),
            },
            None => SeedKind::Scan {
                pi,
                cursor: ViewCursor::default(),
            },
        };
        SeedScan { kind }
    }

    /// Produce up to `want` rows (empty ⇔ exhausted, so callers can treat
    /// an empty batch as end-of-input). `touched` counts probe work: raw
    /// index matches scanned or candidate ids enumerated.
    fn next_rows(
        &mut self,
        store: StoreView<'_>,
        plan: &Plan,
        threads: usize,
        want: usize,
        touched: &mut u64,
    ) -> Batch {
        let width = plan.vars.len();
        match &mut self.kind {
            SeedKind::Done => Batch::new(width),
            SeedKind::Unit => {
                self.kind = SeedKind::Done;
                Batch::unit(width)
            }
            SeedKind::Candidates { pi, v, next } => {
                let slots = &plan.slots[*pi];
                let cands = plan.candidates.get(v).map(Vec::as_slice).unwrap_or(&[]);
                let seed = vec![UNBOUND; width];
                let fixed = fixed_ids(slots, &seed);
                let mut out = Batch::new(width);
                // Loop over candidate slices until some rows unify or the
                // set is exhausted: an empty return must mean "done".
                while out.is_empty() && *next < cands.len() {
                    let hi = (*next + want.max(1)).min(cands.len());
                    let slice = &cands[*next..hi];
                    *touched += slice.len() as u64;
                    *next = hi;
                    let parts =
                        par::map_chunks_guided(slice, threads, OVERSUBSCRIBE, |_, chunk| {
                            let mut rows: Vec<u64> = Vec::new();
                            let mut work = vec![0u64; width];
                            for &id in chunk {
                                store.match_pattern(fixed[0], fixed[1], Some(id), &mut |t| {
                                    work.copy_from_slice(&seed);
                                    if unify(plan, slots, t, &mut work) {
                                        rows.extend_from_slice(&work);
                                    }
                                    true
                                });
                            }
                            rows
                        });
                    for rows in &parts {
                        for r in rows.chunks(width) {
                            out.push_row(r);
                        }
                    }
                }
                if *next >= cands.len() && out.is_empty() {
                    self.kind = SeedKind::Done;
                }
                out
            }
            SeedKind::Scan { pi, cursor } => {
                let slots = &plan.slots[*pi];
                let seed = vec![UNBOUND; width];
                let fixed = fixed_ids(slots, &seed);
                let mut out = Batch::new(width);
                let mut work = vec![0u64; width];
                let mut scanned = 0u64;
                let want = want.max(1);
                store.match_pattern_from(fixed[0], fixed[1], fixed[2], cursor, &mut |t| {
                    scanned += 1;
                    work.copy_from_slice(&seed);
                    if unify(plan, slots, t, &mut work) {
                        out.push_row(&work);
                    }
                    out.len() < want
                });
                *touched += scanned;
                if cursor.is_done() && out.is_empty() {
                    self.kind = SeedKind::Done;
                }
                out
            }
        }
    }
}

/// Reusable state for one pipelined join step: the probe side arrives in
/// chunks; the build side (a hash table over the pattern's constant-only
/// matches) materialises at most once and is probed by every chunk.
struct StepProbe {
    /// `(triple position, variable)` pairs bound by earlier steps — the
    /// join key. Static per step: a variable introduced by step j < k is
    /// bound in *every* row reaching step k.
    key_cols: Vec<(usize, usize)>,
    /// The pattern's constant-only bindings (the build-side scan).
    consts: [Option<u64>; 3],
    /// Key columns exist and the build side is provably small.
    eligible: bool,
    /// The build side, materialised on the first qualifying chunk.
    table: Option<HashMap<[u64; 3], Vec<IdTriple>>>,
}

impl StepProbe {
    fn new(store: StoreView<'_>, plan: &Plan, pi: usize, bound: &[bool]) -> StepProbe {
        let slots = &plan.slots[pi];
        let key_cols: Vec<(usize, usize)> = slots
            .iter()
            .enumerate()
            .filter_map(|(pos, s)| match s {
                Slot::Var(v) if bound[*v] => Some((pos, *v)),
                _ => None,
            })
            .collect();
        let consts = fixed_ids(slots, &vec![UNBOUND; plan.vars.len()]);
        let build_est = store.estimate(consts[0], consts[1], consts[2]);
        let eligible = !key_cols.is_empty() && build_est < ESTIMATE_CAP;
        StepProbe {
            key_cols,
            consts,
            eligible,
            table: None,
        }
    }

    /// Extend every row of `chunk` by the pattern's matches, in row order
    /// (and match order within a row): hash probe when the chunk is large
    /// enough and the build side small enough, index nested-loop (with
    /// candidate enumeration where it pays) otherwise.
    fn probe(
        &mut self,
        store: StoreView<'_>,
        plan: &Plan,
        pi: usize,
        chunk: &Batch,
        threads: usize,
    ) -> Batch {
        let width = plan.vars.len();
        let slots = &plan.slots[pi];
        let mut out = Batch::new(width);
        if chunk.is_empty() || slots.iter().any(|s| matches!(s, Slot::Impossible)) {
            return out;
        }
        let use_hash = self.eligible && chunk.len() >= HASH_MIN_ROWS;
        if use_hash && self.table.is_none() {
            // Build side: materialised once, reused by every later chunk.
            let mut table: HashMap<[u64; 3], Vec<IdTriple>> = HashMap::new();
            let key_cols = &self.key_cols;
            store.match_pattern(self.consts[0], self.consts[1], self.consts[2], &mut |t| {
                let ids = [t.0, t.1, t.2];
                let mut key = [UNBOUND; 3];
                for &(pos, _) in key_cols {
                    key[pos] = ids[pos];
                }
                table.entry(key).or_default().push(t);
                true
            });
            self.table = Some(table);
        }
        let rows_idx: Vec<usize> = (0..chunk.len()).collect();
        let parts: Vec<Vec<u64>> = if use_hash {
            let key_cols = &self.key_cols;
            let table = self.table.as_ref().expect("built above");
            par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, idxs| {
                let mut rows: Vec<u64> = Vec::new();
                let mut row = Vec::new();
                let mut work = vec![0u64; width];
                for &r in idxs {
                    chunk.read_row(r, &mut row);
                    let mut key = [UNBOUND; 3];
                    for &(pos, v) in key_cols {
                        key[pos] = row[v];
                    }
                    if let Some(matches) = table.get(&key) {
                        for &t in matches {
                            work.copy_from_slice(&row);
                            if unify(plan, slots, t, &mut work) {
                                rows.extend_from_slice(&work);
                            }
                        }
                    }
                }
                rows
            })
        } else {
            par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, idxs| {
                let mut rows: Vec<u64> = Vec::new();
                let mut row = Vec::new();
                let mut work = vec![0u64; width];
                for &r in idxs {
                    chunk.read_row(r, &mut row);
                    for t in collect_matches(store, plan, slots, &row) {
                        work.copy_from_slice(&row);
                        if unify(plan, slots, t, &mut work) {
                            rows.extend_from_slice(&work);
                        }
                    }
                }
                rows
            })
        };
        for rows in &parts {
            for r in rows.chunks(width) {
                out.push_row(r);
            }
        }
        out
    }
}

/// One pipeline stage: a join step, an OPTIONAL left-join group, or the
/// residual-filter tail. Holds the overflow rows its downstream consumer
/// has not pulled yet — the only inter-stage buffering, bounded by one
/// chunk's expansion.
struct Stage {
    kind: StageKind,
    out: Batch,
    upstream_done: bool,
}

enum StageKind {
    /// Join step at position `step` in `plan.order` (selects the filters
    /// pinned after it), extending by pattern `pi`.
    Join {
        step: usize,
        pi: usize,
        probe: StepProbe,
    },
    /// OPTIONAL left-join of group `gi`.
    Optional { gi: usize },
    /// Filters not pinned to any join step (they need OPTIONAL bindings).
    Residual,
}

impl Stage {
    fn process(
        &mut self,
        store: StoreView<'_>,
        plan: &Plan,
        threads: usize,
        chunk: &Batch,
    ) -> Batch {
        match &mut self.kind {
            StageKind::Join { step, pi, probe } => {
                let mut b = probe.probe(store, plan, *pi, chunk, threads);
                for f in &plan.filters {
                    if f.apply_after == Some(*step) {
                        let mask = filter_mask(store, plan, f, &b, threads);
                        b.retain(&mask);
                    }
                }
                b
            }
            StageKind::Optional { gi } => {
                apply_optional_group(store, plan, &plan.optionals[*gi], chunk, threads)
            }
            StageKind::Residual => {
                let mut b = chunk.clone();
                for f in &plan.filters {
                    if f.apply_after.is_none() {
                        let mask = filter_mask(store, plan, f, &b, threads);
                        b.retain(&mask);
                    }
                }
                b
            }
        }
    }
}

/// The pull-based join pipeline: seed scan → join steps (each with its
/// pinned filters) → OPTIONAL groups → residual filters, every edge a
/// bounded chunk transfer. Owns no borrows beyond an `Arc` of the plan —
/// the store is passed to each [`next_rows`](Pipeline::next_rows) call —
/// so a serving tier can park one inside a response object.
pub struct Pipeline {
    plan: Arc<Plan>,
    threads: usize,
    source: SeedScan,
    stages: Vec<Stage>,
    /// Probe rows touched: raw seed matches/candidates scanned plus rows
    /// consumed by every downstream stage. The "O(batch) work to first
    /// batch" acceptance metric.
    touched: u64,
    /// High-water mark of rows buffered across all stages at once — the
    /// pipeline's resident-set bound (build-side hash tables excluded).
    peak_resident: u64,
}

impl Pipeline {
    /// Build the operator chain for a prepared plan. Cheap: the only
    /// store work is one cardinality estimate per join step.
    pub fn new(store: StoreView<'_>, plan: Arc<Plan>, threads: usize) -> Pipeline {
        let source = SeedScan::new(store, &plan);
        let mut stages = Vec::new();
        let mut bound = vec![false; plan.vars.len()];
        if let Some(&p0) = plan.order.first() {
            for s in &plan.slots[p0] {
                if let Slot::Var(v) = s {
                    bound[*v] = true;
                }
            }
        }
        for (step, &pi) in plan.order.iter().enumerate().skip(1) {
            let probe = StepProbe::new(store, &plan, pi, &bound);
            for s in &plan.slots[pi] {
                if let Slot::Var(v) = s {
                    bound[*v] = true;
                }
            }
            stages.push(Stage {
                kind: StageKind::Join { step, pi, probe },
                out: Batch::new(plan.vars.len()),
                upstream_done: false,
            });
        }
        for gi in 0..plan.optionals.len() {
            stages.push(Stage {
                kind: StageKind::Optional { gi },
                out: Batch::new(plan.vars.len()),
                upstream_done: false,
            });
        }
        if plan.filters.iter().any(|f| f.apply_after.is_none()) {
            stages.push(Stage {
                kind: StageKind::Residual,
                out: Batch::new(plan.vars.len()),
                upstream_done: false,
            });
        }
        Pipeline {
            plan,
            threads,
            source,
            stages,
            touched: 0,
            peak_resident: 0,
        }
    }

    /// Pull up to `want` fully-joined, fully-filtered rows. An empty batch
    /// means the pipeline is exhausted.
    pub fn next_rows(&mut self, store: StoreView<'_>, want: usize) -> Batch {
        let out = pull_chain(
            store,
            &self.plan,
            self.threads,
            &mut self.source,
            &mut self.stages,
            &mut self.touched,
            want.max(1),
        );
        let resident =
            self.stages.iter().map(|s| s.out.len() as u64).sum::<u64>() + out.len() as u64;
        self.peak_resident = self.peak_resident.max(resident);
        out
    }

    /// Probe rows touched so far (see the field doc).
    pub fn rows_touched(&self) -> u64 {
        self.touched
    }

    /// High-water mark of rows buffered inside the pipeline.
    pub fn peak_resident_rows(&self) -> u64 {
        self.peak_resident
    }
}

/// Recursive pull: `stages.last()` serves the caller, refilling from the
/// prefix (ultimately the seed scan) one [`PIPELINE_CHUNK_ROWS`] chunk at
/// a time until it can hand back `want` rows or its upstream is dry.
fn pull_chain(
    store: StoreView<'_>,
    plan: &Plan,
    threads: usize,
    source: &mut SeedScan,
    stages: &mut [Stage],
    touched: &mut u64,
    want: usize,
) -> Batch {
    let Some((stage, upstream)) = stages.split_last_mut() else {
        // The seed scan, with any filters pinned after step 0. Filters can
        // empty a chunk without the scan being done, so loop: an empty
        // return must keep meaning "exhausted".
        loop {
            let mut b = source.next_rows(store, plan, threads, want, touched);
            if b.is_empty() {
                return b;
            }
            for f in &plan.filters {
                if f.apply_after == Some(0) {
                    let mask = filter_mask(store, plan, f, &b, threads);
                    b.retain(&mask);
                }
            }
            if !b.is_empty() {
                return b;
            }
        }
    };
    while stage.out.len() < want && !stage.upstream_done {
        let chunk = pull_chain(
            store,
            plan,
            threads,
            source,
            upstream,
            touched,
            PIPELINE_CHUNK_ROWS,
        );
        if chunk.is_empty() {
            stage.upstream_done = true;
            break;
        }
        *touched += chunk.len() as u64;
        let produced = stage.process(store, plan, threads, &chunk);
        stage.out.append(&produced);
    }
    stage.out.drain_front(want)
}

/// Evaluate one filter over every row in parallel; returns the keep mask
/// in row order. Rows where the expression errors (e.g. an unbound
/// variable) are dropped, matching SPARQL's error-is-false semantics.
pub fn filter_mask(
    store: StoreView<'_>,
    plan: &Plan,
    f: &FilterPlan,
    batch: &Batch,
    threads: usize,
) -> Vec<bool> {
    let rows_idx: Vec<usize> = (0..batch.len()).collect();
    let parts = par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, chunk| {
        chunk
            .iter()
            .map(|&r| {
                let lookup = |name: &str| {
                    f.lookup
                        .iter()
                        .find(|(n, _)| n == name)
                        .and_then(|&(_, col)| {
                            let id = batch.get(r, col);
                            if id == UNBOUND {
                                None
                            } else {
                                Some(id)
                            }
                        })
                };
                let ctx = EvalCtx {
                    dict: store.dict(),
                    lookup: &lookup,
                    const_geoms: &plan.const_geoms,
                };
                truth(eval(&f.expr, &ctx)) == Some(true)
            })
            .collect::<Vec<bool>>()
    });
    parts.concat()
}

/// Depth-first join of an optional group's patterns under one row's
/// bindings; emits extended rows row-major into `out`.
fn join_group(
    store: StoreView<'_>,
    plan: &Plan,
    group: &[[Slot; 3]],
    gi: usize,
    work: &mut Vec<u64>,
    out: &mut Vec<u64>,
    found: &mut usize,
) {
    if gi == group.len() {
        out.extend_from_slice(work);
        *found += 1;
        return;
    }
    let matches = collect_matches(store, plan, &group[gi], work);
    let snapshot = work.clone();
    for t in matches {
        work.copy_from_slice(&snapshot);
        if unify(plan, &group[gi], t, work) {
            join_group(store, plan, group, gi + 1, work, out, found);
        }
    }
    work.copy_from_slice(&snapshot);
}

/// Left-join one OPTIONAL group onto every row of `batch`: rows with
/// matches are replaced by their extensions, rows without pass through
/// unchanged. Row-local, so applying it chunk-wise inside the pipeline is
/// identical to applying it to the concatenated batch.
fn apply_optional_group(
    store: StoreView<'_>,
    plan: &Plan,
    group: &[[Slot; 3]],
    batch: &Batch,
    threads: usize,
) -> Batch {
    let width = plan.vars.len();
    // A group with an unknown constant never matches: every row passes
    // through unextended.
    if group
        .iter()
        .any(|p| p.iter().any(|s| matches!(s, Slot::Impossible)))
    {
        return batch.clone();
    }
    let rows_idx: Vec<usize> = (0..batch.len()).collect();
    let parts = par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, chunk| {
        let mut rows: Vec<u64> = Vec::new();
        let mut row = Vec::new();
        for &r in chunk {
            batch.read_row(r, &mut row);
            let mut work = row.clone();
            let mut found = 0;
            join_group(store, plan, group, 0, &mut work, &mut rows, &mut found);
            if found == 0 {
                rows.extend_from_slice(&row);
            }
        }
        rows
    });
    let mut next = Batch::new(width);
    for rows in &parts {
        for r in rows.chunks(width) {
            next.push_row(r);
        }
    }
    next
}
