//! Physical operators: parallel pattern extension (index nested-loop and
//! hash probes), filter masks, and OPTIONAL left-joins over columnar
//! [`Batch`]es.
//!
//! ## Parallelism contract
//!
//! Every operator here is bit-identical to its serial execution for any
//! thread count. Two rules enforce that:
//!
//! 1. **Access-path selection never looks at the thread count.** Whether
//!    a step runs as a hash probe, an index nested-loop, or a candidate
//!    enumeration is a function of the plan, the batch size, and the
//!    store's cardinality estimate only — so serial and parallel runs
//!    take the same path and see the same per-row match order.
//! 2. **Fixed-order reduction.** Work is split into contiguous chunks of
//!    the input (rows or candidate ids) via
//!    [`ee_util::par::map_chunks_guided`]; each chunk produces a private
//!    mini-batch and the chunks are concatenated in chunk order, which is
//!    input order. Chunk *boundaries* may vary with the thread count;
//!    the concatenated output cannot.
//!
//! Guided (work-stealing) scheduling matters here because join probes and
//! spatial refinement are skewed: one polygon row can cost 100× its
//! neighbour, so maximal-even chunks would leave threads idle.

use crate::batch::{Batch, UNBOUND};
use crate::expr::{eval, truth, EvalCtx};
use crate::plan::{FilterPlan, Plan, Slot};
use crate::store::{IdTriple, IndexMode, TripleStore, ESTIMATE_CAP};
use ee_util::par;
use std::collections::HashMap;

/// Chunks per thread for guided scheduling: enough slack that a skewed
/// chunk can be stolen around, not so many that coordination dominates.
const OVERSUBSCRIBE: usize = 8;

/// Minimum probe-side rows before building a hash table pays for itself.
const HASH_MIN_ROWS: usize = 32;

/// The spatial candidate set for a pattern's object position, when the
/// object is a still-unbound variable with an R-tree pushdown set and the
/// store supports indexed enumeration.
fn object_candidates<'p>(
    store: &TripleStore,
    plan: &'p Plan,
    slots: &[Slot; 3],
    row: &[u64],
) -> Option<&'p [u64]> {
    match &slots[2] {
        Slot::Var(v) if row[*v] == UNBOUND && store.mode() == IndexMode::Full => {
            plan.candidates.get(v).map(|c| c.as_slice())
        }
        _ => None,
    }
}

fn fixed_ids(slots: &[Slot; 3], row: &[u64]) -> [Option<u64>; 3] {
    let f = |s: &Slot| match s {
        Slot::Const(id) => Some(*id),
        Slot::Var(v) => {
            let id = row[*v];
            if id == UNBOUND {
                None
            } else {
                Some(id)
            }
        }
        Slot::Impossible => Some(u64::MAX),
    };
    [f(&slots[0]), f(&slots[1]), f(&slots[2])]
}

/// Whether enumerating `cands` beats scanning the pattern directly: the
/// pattern's own estimate is at the cap (unbounded scan) or larger than
/// the candidate set. Depends only on the store and bindings — never the
/// thread count — so serial and parallel runs pick the same path. When
/// this says no, the direct scan still honours the candidate set: `unify`
/// rejects non-candidates by binary search.
fn candidates_pay(store: &TripleStore, cands: &[u64], fixed: &[Option<u64>; 3]) -> bool {
    let est = store.estimate(fixed[0], fixed[1], None);
    est >= ESTIMATE_CAP || cands.len() < est
}

/// All index matches of `slots` under the bindings in `row`, taking the
/// candidate-enumeration access path when spatial pushdown applies and
/// is estimated cheaper than the direct scan.
fn collect_matches(
    store: &TripleStore,
    plan: &Plan,
    slots: &[Slot; 3],
    row: &[u64],
) -> Vec<IdTriple> {
    let fixed = fixed_ids(slots, row);
    let mut matches = Vec::new();
    match object_candidates(store, plan, slots, row) {
        Some(cands) if candidates_pay(store, cands, &fixed) => {
            for &id in cands {
                store.match_pattern(fixed[0], fixed[1], Some(id), &mut |t| {
                    matches.push(t);
                    true
                });
            }
        }
        _ => {
            store.match_pattern(fixed[0], fixed[1], fixed[2], &mut |t| {
                matches.push(t);
                true
            });
        }
    }
    matches
}

/// Unify `triple` against `slots` into `work` (a copy of the input row).
/// Returns false on a repeated-variable mismatch or a candidate-set miss;
/// `work` is garbage after a false return and must be re-copied.
fn unify(plan: &Plan, slots: &[Slot; 3], triple: IdTriple, work: &mut [u64]) -> bool {
    let ids = [triple.0, triple.1, triple.2];
    for (slot, &id) in slots.iter().zip(&ids) {
        if let Slot::Var(v) = slot {
            let existing = work[*v];
            if existing == UNBOUND {
                if let Some(cands) = plan.candidates.get(v) {
                    if cands.binary_search(&id).is_err() {
                        return false;
                    }
                }
                work[*v] = id;
            } else if existing != id {
                return false;
            }
        }
    }
    true
}

/// Extend every row of `batch` by the matches of one pattern, in row
/// order (and match order within a row). This is one join step.
pub fn extend(
    store: &TripleStore,
    plan: &Plan,
    batch: &Batch,
    slots: &[Slot; 3],
    threads: usize,
) -> Batch {
    let width = plan.vars.len();
    let mut out = Batch::new(width);
    if batch.is_empty() || slots.iter().any(|s| matches!(s, Slot::Impossible)) {
        return out;
    }

    // Single-row batch with a spatial candidate set (the canonical first
    // step of a selection query): parallelise the per-triple-pattern scan
    // across the candidate ids themselves.
    if batch.len() == 1 {
        let mut row = Vec::new();
        batch.read_row(0, &mut row);
        if let Some(cands) = object_candidates(store, plan, slots, &row)
            .filter(|c| candidates_pay(store, c, &fixed_ids(slots, &row)))
        {
            let fixed = fixed_ids(slots, &row);
            let parts = par::map_chunks_guided(cands, threads, OVERSUBSCRIBE, |_, chunk| {
                let mut rows: Vec<u64> = Vec::new();
                let mut work = vec![0u64; width];
                for &id in chunk {
                    store.match_pattern(fixed[0], fixed[1], Some(id), &mut |t| {
                        work.copy_from_slice(&row);
                        if unify(plan, slots, t, &mut work) {
                            rows.extend_from_slice(&work);
                        }
                        true
                    });
                }
                rows
            });
            for rows in &parts {
                for r in rows.chunks(width) {
                    out.push_row(r);
                }
            }
            return out;
        }
    }

    // Batch-bound variable positions are join keys; when the build side
    // is provably small, hash it once and probe rows against it instead
    // of one index lookup per row. The choice depends only on the batch
    // and the estimate — never on the thread count.
    let mut first_row = Vec::new();
    batch.read_row(0, &mut first_row);
    let key_cols: Vec<(usize, usize)> = slots
        .iter()
        .enumerate()
        .filter_map(|(pos, s)| match s {
            Slot::Var(v) if first_row[*v] != UNBOUND => Some((pos, *v)),
            _ => None,
        })
        .collect();
    let consts = fixed_ids(slots, &vec![UNBOUND; width]);
    let build_est = store.estimate(consts[0], consts[1], consts[2]);
    let use_hash =
        !key_cols.is_empty() && batch.len() >= HASH_MIN_ROWS && build_est < ESTIMATE_CAP;

    let rows_idx: Vec<usize> = (0..batch.len()).collect();
    let parts: Vec<Vec<u64>> = if use_hash {
        let mut table: HashMap<[u64; 3], Vec<IdTriple>> = HashMap::new();
        store.match_pattern(consts[0], consts[1], consts[2], &mut |t| {
            let ids = [t.0, t.1, t.2];
            let mut key = [UNBOUND; 3];
            for &(pos, _) in &key_cols {
                key[pos] = ids[pos];
            }
            table.entry(key).or_default().push(t);
            true
        });
        par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, chunk| {
            let mut rows: Vec<u64> = Vec::new();
            let mut row = Vec::new();
            let mut work = vec![0u64; width];
            for &r in chunk {
                batch.read_row(r, &mut row);
                let mut key = [UNBOUND; 3];
                for &(pos, v) in &key_cols {
                    key[pos] = row[v];
                }
                if let Some(matches) = table.get(&key) {
                    for &t in matches {
                        work.copy_from_slice(&row);
                        if unify(plan, slots, t, &mut work) {
                            rows.extend_from_slice(&work);
                        }
                    }
                }
            }
            rows
        })
    } else {
        par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, chunk| {
            let mut rows: Vec<u64> = Vec::new();
            let mut row = Vec::new();
            let mut work = vec![0u64; width];
            for &r in chunk {
                batch.read_row(r, &mut row);
                for t in collect_matches(store, plan, slots, &row) {
                    work.copy_from_slice(&row);
                    if unify(plan, slots, t, &mut work) {
                        rows.extend_from_slice(&work);
                    }
                }
            }
            rows
        })
    };
    for rows in &parts {
        for r in rows.chunks(width) {
            out.push_row(r);
        }
    }
    out
}

/// Evaluate one filter over every row in parallel; returns the keep mask
/// in row order. Rows where the expression errors (e.g. an unbound
/// variable) are dropped, matching SPARQL's error-is-false semantics.
pub fn filter_mask(
    store: &TripleStore,
    plan: &Plan,
    f: &FilterPlan,
    batch: &Batch,
    threads: usize,
) -> Vec<bool> {
    let rows_idx: Vec<usize> = (0..batch.len()).collect();
    let parts = par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, chunk| {
        chunk
            .iter()
            .map(|&r| {
                let lookup = |name: &str| {
                    f.lookup
                        .iter()
                        .find(|(n, _)| n == name)
                        .and_then(|&(_, col)| {
                            let id = batch.get(r, col);
                            if id == UNBOUND {
                                None
                            } else {
                                Some(id)
                            }
                        })
                };
                let ctx = EvalCtx {
                    dict: &store.dict,
                    lookup: &lookup,
                    const_geoms: &plan.const_geoms,
                };
                truth(eval(&f.expr, &ctx)) == Some(true)
            })
            .collect::<Vec<bool>>()
    });
    parts.concat()
}

/// Depth-first join of an optional group's patterns under one row's
/// bindings; emits extended rows row-major into `out`.
fn join_group(
    store: &TripleStore,
    plan: &Plan,
    group: &[[Slot; 3]],
    gi: usize,
    work: &mut Vec<u64>,
    out: &mut Vec<u64>,
    found: &mut usize,
) {
    if gi == group.len() {
        out.extend_from_slice(work);
        *found += 1;
        return;
    }
    let matches = collect_matches(store, plan, &group[gi], work);
    let snapshot = work.clone();
    for t in matches {
        work.copy_from_slice(&snapshot);
        if unify(plan, &group[gi], t, work) {
            join_group(store, plan, group, gi + 1, work, out, found);
        }
    }
    work.copy_from_slice(&snapshot);
}

/// Left-join each OPTIONAL group onto every row: rows with matches are
/// replaced by their extensions, rows without pass through unchanged.
pub fn apply_optionals(
    store: &TripleStore,
    plan: &Plan,
    mut batch: Batch,
    threads: usize,
) -> Batch {
    let width = plan.vars.len();
    for group in &plan.optionals {
        // A group with an unknown constant never matches: every row
        // passes through unextended.
        if group
            .iter()
            .any(|p| p.iter().any(|s| matches!(s, Slot::Impossible)))
        {
            continue;
        }
        let rows_idx: Vec<usize> = (0..batch.len()).collect();
        let parts = par::map_chunks_guided(&rows_idx, threads, OVERSUBSCRIBE, |_, chunk| {
            let mut rows: Vec<u64> = Vec::new();
            let mut row = Vec::new();
            for &r in chunk {
                batch.read_row(r, &mut row);
                let mut work = row.clone();
                let mut found = 0;
                join_group(store, plan, group, 0, &mut work, &mut rows, &mut found);
                if found == 0 {
                    rows.extend_from_slice(&row);
                }
            }
            rows
        });
        let mut next = Batch::new(width);
        for rows in &parts {
            for r in rows.chunks(width) {
                next.push_row(r);
            }
        }
        batch = next;
    }
    batch
}
