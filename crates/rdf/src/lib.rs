#![warn(missing_docs)]
//! A geospatial RDF store with a SPARQL/GeoSPARQL subset — the
//! "re-engineered Strabon" of Challenge C3.
//!
//! The paper's motivating numbers: Strabon (the state-of-the-art
//! geospatial RDF store of ref \[15\]) "can only handle up to 100 GBs of
//! point data and still be able to answer simple geospatial queries
//! (selections over a rectangular area) efficiently (in a few seconds)",
//! and degrades further on multi-polygons. This crate reproduces both the
//! engine and that experiment:
//!
//! * [`term`] — RDF terms with typed literals (strings, integers,
//!   doubles, booleans, dates and `geo:wktLiteral` geometries);
//! * [`dict`] — dictionary encoding: every term interned to a `u64`, with
//!   decoded typed values (including parsed geometries) kept alongside;
//! * [`store`] — triples in three covering B-tree indexes (SPO/POS/OSP)
//!   plus an R-tree over geometry literals; an [`store::IndexMode::Scan`]
//!   mode disables all of it to serve as the pre-Strabon naive baseline
//!   in experiments E2/E3;
//! * [`expr`] — filter expressions: comparisons, boolean algebra, and the
//!   GeoSPARQL functions `geof:sfIntersects` / `sfContains` / `sfWithin`
//!   / `geof:distance`;
//! * [`parser`] — a hand-written SPARQL-subset parser (`PREFIX`,
//!   `SELECT [DISTINCT]`, basic graph patterns, `OPTIONAL`, `FILTER`,
//!   `GROUP BY` with `COUNT/SUM/AVG/MIN/MAX`, `ORDER BY`, `LIMIT`);
//! * [`plan`] — logical/physical query planning: constants resolved to
//!   ids, a static greedy join order, filters pinned to their earliest
//!   evaluation step, projection/group/order columns resolved, and
//!   *spatial pushdown* — a filter `geof:sfIntersects(?g, <const>)`
//!   restricts `?g`'s candidates via the R-tree before the join runs
//!   (filter–refine). The resulting [`plan::Plan`] is inspectable,
//!   cacheable, and shared by the federation engine and the serving tier;
//! * [`batch`] — columnar binding batches over term ids;
//! * [`join`] — the physical operators: index nested-loop and hash-probe
//!   pattern extension, filter masks, and OPTIONAL left-joins, all
//!   parallelised with fixed-order reduction so any thread count is
//!   bit-identical to serial;
//! * [`exec`] — the executor pipeline tying plan → batches → operators →
//!   aggregation / ordering / materialisation together;
//! * [`update`] — SPARQL UPDATE evaluation (`INSERT DATA` / `DELETE
//!   DATA` / `DELETE WHERE`), split into a read-only evaluate step and
//!   an apply step so the durable store can WAL the delta in between;
//! * [`storage`] — durability: a compact checksummed binary snapshot
//!   format (dictionary blocks + sorted triple segments), a write-ahead
//!   log with torn-tail recovery, and the [`storage::Store`] wrapper
//!   that ties them to a monotonic generation counter. A
//!   [`storage::ShardSpec`] filters bulk loads to one subject-hash
//!   shard of a partitioned dataset;
//! * [`merge`] — merge-aware combination of per-shard query results for
//!   the scatter-gather router tier: strategy selection by query shape
//!   (sum counts, canonical-order row concatenation) and rejection of
//!   shapes that cannot be answered shard-locally.

pub mod batch;
pub mod dict;
pub mod exec;
pub mod expr;
pub mod join;
pub mod merge;
pub mod parser;
pub mod plan;
pub mod storage;
pub mod store;
pub mod term;
pub mod update;

pub use store::{IndexMode, Novelty, StoreView, TripleStore, ViewCursor};
pub use term::Term;

/// Errors from the RDF layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RdfError {
    /// Query text failed to parse.
    Parse(String),
    /// A well-formed query that the engine cannot evaluate.
    Eval(String),
    /// Bad term construction (e.g. malformed WKT literal).
    Term(String),
}

impl std::fmt::Display for RdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdfError::Parse(m) => write!(f, "SPARQL parse error: {m}"),
            RdfError::Eval(m) => write!(f, "evaluation error: {m}"),
            RdfError::Term(m) => write!(f, "term error: {m}"),
        }
    }
}

impl std::error::Error for RdfError {}
