//! Merge-aware combination of per-shard query results.
//!
//! The sharded serving tier partitions one logical dataset by subject
//! hash across N stores, runs the same query on every shard, and needs
//! the partial answers folded back into one — with the fold chosen by
//! the *shape* of the query, not guessed from the payloads:
//!
//! * a bare `COUNT` aggregate sums the per-shard counts
//!   ([`MergeStrategy::SumCount`]) — the merged body is bit-identical to
//!   what one store holding everything would have produced;
//! * everything else concatenates rows in a canonical order
//!   ([`MergeStrategy::ConcatRows`]), sorted by each row's serialised
//!   form so the answer is independent of shard count and arrival
//!   order (`DISTINCT` additionally dedups across shards at the merge).
//!
//! [`strategy_for`] also guards correctness: a query whose patterns
//! join **across** subjects cannot be answered by per-shard evaluation
//! at all (a join partner may live on another shard), so it is rejected
//! rather than silently under-answered. Shardable shapes are: a single
//! pattern, or a basic graph pattern whose triples all share one
//! subject variable (the star-join shape every `/query` template uses)
//! or each pin a constant subject.
//!
//! A query-level `LIMIT n` is applied **at the merge**, never per
//! shard: [`strategy_for`] captures the parsed limit, [`scatter_text`]
//! strips the trailing `LIMIT` clause from the text each shard runs
//! (a per-shard `LIMIT` would keep enumeration-order prefixes, not the
//! canonical top rows), and [`merge`] truncates the sorted concat to
//! `min(row_cap, n)` — so a routed `LIMIT n` query returns exactly
//! `min(n, total)` rows, identical to the canonically sorted prefix of
//! the unsharded answer. The serving tier's transport `row_cap`
//! remains the one shard-order-dependent edge: bit-identity covers
//! queries whose per-shard row sets fit the cap.

use crate::parser::{parse_query, AggFunc, PatternTerm, SelectItem};
use crate::RdfError;
use ee_util::json::Json;

/// How per-shard results of a query fold into one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Single bare `COUNT` aggregate: sum the per-shard counts.
    SumCount,
    /// Concatenate rows in canonical (serialised, sorted) order;
    /// `distinct` dedups identical rows across shards.
    ConcatRows {
        /// The query asked for `DISTINCT`.
        distinct: bool,
        /// The query's own `LIMIT n`, applied after the canonical sort
        /// (the scattered text has the clause stripped — see
        /// [`scatter_text`] — so shards never pre-prune).
        limit: Option<usize>,
    },
}

/// The SPARQL text the router scatters to each shard: `sparql` with a
/// trailing `LIMIT` clause removed. A shard that applied the query's
/// own `LIMIT n` would keep its *enumeration-order* first `n` rows —
/// generally not its canonical-order top rows — so the merged prefix
/// would diverge from the unsharded answer. Stripping the clause makes
/// the merge the single place the cap is applied.
///
/// Only call with text [`strategy_for`] accepted: the grammar puts
/// `LIMIT` last, so the clause is the trailing keyword + digits (when
/// absent the text is returned unchanged).
pub fn scatter_text(sparql: &str) -> String {
    let trimmed = sparql.trim_end();
    if let Some(pos) = trimmed.to_ascii_lowercase().rfind("limit") {
        let before_ok = trimmed[..pos]
            .chars()
            .next_back()
            .is_some_and(char::is_whitespace);
        let tail = &trimmed[pos + "limit".len()..];
        let tail_ok = !tail.trim().is_empty()
            && tail.chars().all(|c| c.is_ascii_whitespace() || c.is_ascii_digit());
        if before_ok && tail_ok {
            return trimmed[..pos].trim_end().to_string();
        }
    }
    sparql.to_string()
}

/// Pick the merge strategy for `sparql`, or reject it as unshardable.
///
/// Errors are [`RdfError::Parse`] for text the engine cannot parse and
/// [`RdfError::Eval`] for well-formed queries whose evaluation cannot
/// be distributed over subject-hash shards (cross-subject joins,
/// `OPTIONAL`, `GROUP BY`, non-`COUNT` aggregates, `ORDER BY`).
pub fn strategy_for(sparql: &str) -> Result<MergeStrategy, RdfError> {
    let q = parse_query(sparql)?;
    if q.as_of.is_some() {
        return Err(RdfError::Eval(
            "AS OF is not routable: commit ids are per-shard; query a shard directly".into(),
        ));
    }
    if q.offset.is_some() {
        return Err(RdfError::Eval(
            "OFFSET is not shardable: a per-shard skip drops different rows on every shard"
                .into(),
        ));
    }
    if !q.optionals.is_empty() {
        return Err(RdfError::Eval(
            "OPTIONAL is not shardable: the optional side may live on another shard".into(),
        ));
    }
    if !q.group_by.is_empty() {
        return Err(RdfError::Eval(
            "GROUP BY is not shardable yet; run it against a single store".into(),
        ));
    }
    if q.order_by.is_some() {
        return Err(RdfError::Eval(
            "ORDER BY is not shardable: the merge defines its own canonical order".into(),
        ));
    }
    // Shardable pattern shapes: one pattern, or all patterns sharing a
    // single subject variable (star join — every join partner lives on
    // the subject's own shard), or every subject a constant.
    if q.patterns.len() > 1 {
        let mut subject_var: Option<&str> = None;
        let mut all_const = true;
        let mut all_same_var = true;
        for p in &q.patterns {
            match &p.s {
                PatternTerm::Var(v) => {
                    all_const = false;
                    match subject_var {
                        None => subject_var = Some(v),
                        Some(sv) if sv == v => {}
                        Some(_) => all_same_var = false,
                    }
                }
                PatternTerm::Const(_) => all_same_var = false,
            }
        }
        if !(all_const || (all_same_var && subject_var.is_some())) {
            return Err(RdfError::Eval(
                "cross-subject joins are not shardable: join partners may live on \
                 different shards"
                    .into(),
            ));
        }
    }
    let aggs: Vec<&SelectItem> = q
        .select
        .iter()
        .filter(|s| matches!(s, SelectItem::Agg { .. }))
        .collect();
    if aggs.is_empty() {
        return Ok(MergeStrategy::ConcatRows {
            distinct: q.distinct,
            limit: q.limit,
        });
    }
    if let [SelectItem::Agg { func: AggFunc::Count, .. }] = q.select.as_slice() {
        return Ok(MergeStrategy::SumCount);
    }
    Err(RdfError::Eval(
        "only a single bare COUNT aggregate is shardable (SUM/AVG/MIN/MAX need \
         a coordinator-side fold)"
            .into(),
    ))
}

/// One parsed `/query` result body: the `{"vars":…,"rows":…,"count":…}`
/// shape the serving tier emits.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Projected variable names, in emission order.
    pub vars: Vec<String>,
    /// Result rows, each a JSON array of term values.
    pub rows: Vec<Json>,
    /// Total result rows (may exceed `rows.len()` under a row cap).
    pub count: u64,
}

impl QueryResult {
    /// Parse a serialised result body.
    pub fn parse(body: &str) -> Result<QueryResult, RdfError> {
        let v = ee_util::json::parse(body)
            .map_err(|e| RdfError::Eval(format!("bad shard result body: {e}")))?;
        let vars = v
            .get("vars")
            .and_then(Json::as_arr)
            .ok_or_else(|| RdfError::Eval("shard result missing vars".into()))?
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| RdfError::Eval("non-string var name".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| RdfError::Eval("shard result missing rows".into()))?
            .to_vec();
        let count = v
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| RdfError::Eval("shard result missing count".into()))?;
        Ok(QueryResult { vars, rows, count })
    }

    /// Serialise back to the canonical body shape — byte-identical to
    /// what the serving tier's streamed writer emits for the same
    /// `vars`/`rows`/`count`.
    pub fn emit(&self) -> String {
        let vars = Json::Arr(self.vars.iter().cloned().map(Json::Str).collect());
        let rows: Vec<String> = self.rows.iter().map(Json::emit).collect();
        format!(
            "{{\"vars\":{},\"rows\":[{}],\"count\":{}}}",
            vars.emit(),
            rows.join(","),
            Json::Num(self.count as f64).emit()
        )
    }
}

/// Fold per-shard results into one under `strategy`.
///
/// `parts` must be non-empty and agree on `vars` (they ran the same
/// query); `row_cap` is the serving tier's materialised-row cap, applied
/// after the canonical sort so the kept prefix is deterministic.
pub fn merge(
    parts: &[QueryResult],
    strategy: &MergeStrategy,
    row_cap: usize,
) -> Result<QueryResult, RdfError> {
    let first = parts
        .first()
        .ok_or_else(|| RdfError::Eval("no shard results to merge".into()))?;
    let vars = first.vars.clone();
    if parts.iter().any(|p| p.vars != vars) {
        return Err(RdfError::Eval(
            "shard results disagree on projected vars".into(),
        ));
    }
    match strategy {
        MergeStrategy::SumCount => {
            let mut total: u64 = 0;
            for p in parts {
                let lexical = p
                    .rows
                    .first()
                    .and_then(|r| r.as_arr())
                    .and_then(|r| r.first())
                    .and_then(Json::as_str)
                    .ok_or_else(|| RdfError::Eval("COUNT shard result has no value".into()))?;
                total += lexical
                    .parse::<u64>()
                    .map_err(|_| RdfError::Eval(format!("bad COUNT lexical {lexical:?}")))?;
            }
            Ok(QueryResult {
                vars,
                rows: vec![Json::Arr(vec![Json::Str(total.to_string())])],
                count: 1,
            })
        }
        MergeStrategy::ConcatRows { distinct, limit } => {
            let mut keyed: Vec<(String, Json)> = parts
                .iter()
                .flat_map(|p| p.rows.iter())
                .map(|r| (r.emit(), r.clone()))
                .collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            if *distinct {
                keyed.dedup_by(|a, b| a.0 == b.0);
            }
            let total = if *distinct {
                keyed.len() as u64
            } else {
                parts.iter().map(|p| p.count).sum()
            };
            // The query's own LIMIT is part of its semantics: it caps
            // both the kept rows and the reported count. The transport
            // row_cap caps rows only (count still reports the total).
            let count = match limit {
                Some(n) => total.min(*n as u64),
                None => total,
            };
            keyed.truncate(row_cap.min(limit.unwrap_or(usize::MAX)));
            Ok(QueryResult {
                vars,
                rows: keyed.into_iter().map(|(_, r)| r).collect(),
                count,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_queries_sum() {
        let q = "SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }";
        assert_eq!(strategy_for(q).unwrap(), MergeStrategy::SumCount);
        let part = |n: u64| QueryResult {
            vars: vec!["n".into()],
            rows: vec![Json::Arr(vec![Json::Str(n.to_string())])],
            count: 1,
        };
        let merged = merge(&[part(3), part(0), part(9)], &MergeStrategy::SumCount, 1000).unwrap();
        assert_eq!(merged.emit(), "{\"vars\":[\"n\"],\"rows\":[[\"12\"]],\"count\":1}");
    }

    #[test]
    fn row_queries_concat_in_canonical_order() {
        let q = "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }";
        assert_eq!(
            strategy_for(q).unwrap(),
            MergeStrategy::ConcatRows {
                distinct: false,
                limit: None
            }
        );
        let row = |s: &str| Json::Arr(vec![Json::Str(s.into()), Json::Str("x".into())]);
        let part = |names: &[&str]| QueryResult {
            vars: vec!["s".into(), "o".into()],
            rows: names.iter().map(|n| row(n)).collect(),
            count: names.len() as u64,
        };
        let a = merge(
            &[part(&["b", "a"]), part(&["c"])],
            &MergeStrategy::ConcatRows {
                distinct: false,
                limit: None,
            },
            1000,
        )
        .unwrap();
        let b = merge(
            &[part(&["c", "a"]), part(&["b"])],
            &MergeStrategy::ConcatRows {
                distinct: false,
                limit: None,
            },
            1000,
        )
        .unwrap();
        assert_eq!(a, b, "merge is independent of shard arrangement");
        assert_eq!(a.count, 3);
        assert_eq!(a.rows.len(), 3);
    }

    #[test]
    fn distinct_dedups_across_shards_and_cap_applies_after_sort() {
        let row = |s: &str| Json::Arr(vec![Json::Str(s.into())]);
        let part = |names: &[&str]| QueryResult {
            vars: vec!["c".into()],
            rows: names.iter().map(|n| row(n)).collect(),
            count: names.len() as u64,
        };
        let merged = merge(
            &[part(&["wheat", "maize"]), part(&["wheat"])],
            &MergeStrategy::ConcatRows {
                distinct: true,
                limit: None,
            },
            1000,
        )
        .unwrap();
        assert_eq!(merged.rows.len(), 2);
        assert_eq!(merged.count, 2);
        let capped = merge(
            &[part(&["b"]), part(&["a", "c"])],
            &MergeStrategy::ConcatRows {
                distinct: false,
                limit: None,
            },
            2,
        )
        .unwrap();
        assert_eq!(capped.rows.len(), 2);
        assert_eq!(capped.count, 3, "count still reports the full total");
        assert_eq!(capped.rows[0].emit(), "[\"a\"]");
    }

    #[test]
    fn query_limit_is_applied_at_the_merge() {
        let q = "SELECT ?s WHERE { ?s <http://e/p> ?o } LIMIT 2";
        let strategy = strategy_for(q).unwrap();
        assert_eq!(
            strategy,
            MergeStrategy::ConcatRows {
                distinct: false,
                limit: Some(2)
            }
        );
        // The scattered text drops the clause so shards never pre-prune.
        assert_eq!(scatter_text(q), "SELECT ?s WHERE { ?s <http://e/p> ?o }");
        assert_eq!(
            scatter_text("SELECT ?s WHERE { ?s ?p ?o }"),
            "SELECT ?s WHERE { ?s ?p ?o }",
            "no LIMIT: text unchanged"
        );
        // A literal merely *containing* "limit" is left alone.
        let tricky = "SELECT ?s WHERE { ?s <http://e/p> \"limit 3\" }";
        assert_eq!(scatter_text(tricky), tricky);
        let row = |s: &str| Json::Arr(vec![Json::Str(s.into())]);
        let part = |names: &[&str]| QueryResult {
            vars: vec!["s".into()],
            rows: names.iter().map(|n| row(n)).collect(),
            count: names.len() as u64,
        };
        // LIMIT 2 over 4 merged rows: exactly 2 rows — the canonical
        // prefix — and the count reports the capped length, however the
        // rows were spread across shards.
        let merged = merge(&[part(&["d", "b"]), part(&["a", "c"])], &strategy, 1000).unwrap();
        assert_eq!(merged.rows.len(), 2, "LIMIT re-applied post-merge");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.rows[0].emit(), "[\"a\"]");
        assert_eq!(merged.rows[1].emit(), "[\"b\"]");
        // LIMIT above the total: everything survives, count = total.
        let all = merge(&[part(&["b"]), part(&["a"])], &strategy, 1000).unwrap();
        assert_eq!(all.rows.len(), 2);
        assert_eq!(all.count, 2);
        // DISTINCT + LIMIT: dedup first, then cap.
        let dd = merge(
            &[part(&["b", "a"]), part(&["a", "c"])],
            &MergeStrategy::ConcatRows {
                distinct: true,
                limit: Some(2),
            },
            1000,
        )
        .unwrap();
        assert_eq!(dd.rows.len(), 2);
        assert_eq!(dd.count, 2);
        assert_eq!(dd.rows[0].emit(), "[\"a\"]");
        // The transport row_cap still binds when tighter than LIMIT.
        let tight = merge(
            &[part(&["a", "b", "c"])],
            &MergeStrategy::ConcatRows {
                distinct: false,
                limit: Some(3),
            },
            1,
        )
        .unwrap();
        assert_eq!(tight.rows.len(), 1);
        assert_eq!(tight.count, 3, "row_cap elides rows without changing the count");
    }

    #[test]
    fn unshardable_shapes_are_rejected() {
        for q in [
            // Cross-subject join.
            "SELECT ?a ?b WHERE { ?a <http://e/p> ?x . ?b <http://e/q> ?x }",
            // OPTIONAL.
            "SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s <http://e/q> ?r } }",
            // Non-count aggregate.
            "SELECT (SUM(?v) AS ?t) WHERE { ?s <http://e/v> ?v }",
            // GROUP BY.
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s",
            // ORDER BY.
            "SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s",
            // OFFSET: a per-shard skip drops different rows per shard.
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 OFFSET 2",
            // AS OF: commit ids are per-shard, never fleet-wide.
            "SELECT ?s WHERE { ?s ?p ?o } AS OF <cbf29ce484222325>",
        ] {
            assert!(matches!(strategy_for(q), Err(RdfError::Eval(_))), "{q}");
        }
        // Parse errors stay parse errors.
        assert!(matches!(strategy_for("nonsense"), Err(RdfError::Parse(_))));
    }

    #[test]
    fn star_joins_and_const_subjects_are_shardable() {
        for q in [
            "SELECT ?s ?t ?g WHERE { ?s <http://e/type> ?t . ?s <http://e/geom> ?g }",
            "SELECT ?o WHERE { <http://e/f1> <http://e/p> ?o . <http://e/f2> <http://e/p> ?o }",
            "SELECT DISTINCT ?o WHERE { ?s <http://e/p> ?o }",
        ] {
            assert!(strategy_for(q).is_ok(), "{q}");
        }
    }

    #[test]
    fn result_bodies_round_trip() {
        let body = "{\"vars\":[\"s\",\"o\"],\"rows\":[[\"http://e/a\",\"1\"],[\"http://e/b\",null]],\"count\":2}";
        let parsed = QueryResult::parse(body).unwrap();
        assert_eq!(parsed.emit(), body);
        assert!(QueryResult::parse("{\"rows\":[]}").is_err());
        assert!(QueryResult::parse("not json").is_err());
    }
}
