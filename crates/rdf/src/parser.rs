//! A hand-written parser for the SPARQL subset the workspace speaks.
//!
//! Supported:
//!
//! ```sparql
//! PREFIX ex: <http://example.org/>
//! SELECT DISTINCT ?s (COUNT(?o) AS ?n)
//! WHERE {
//!   ?s ex:p ?o ; ex:q "lit" .
//!   OPTIONAL { ?o ex:r ?x }
//!   FILTER(?n > 3 && geof:sfIntersects(?g, "POINT (1 2)"^^geo:wktLiteral))
//! }
//! GROUP BY ?s
//! ORDER BY DESC(?n)
//! LIMIT 10 OFFSET 5
//! ```
//!
//! GeoSPARQL functions are recognised by local name (`sfIntersects`,
//! `sfContains`, `sfWithin`, `distance`) under any prefix.

use crate::expr::{CmpOp, Expr, SpatialOp};
use crate::term::{Term, GEO_WKT, XSD_BOOLEAN, XSD_DATE, XSD_DOUBLE, XSD_INTEGER};
use crate::RdfError;
use std::collections::HashMap;

/// A subject/predicate/object position: variable or constant.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternTerm {
    /// `?name`
    Var(String),
    /// A concrete term.
    Const(Term),
}

/// One triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject.
    pub s: PatternTerm,
    /// Predicate.
    pub p: PatternTerm,
    /// Object.
    pub o: PatternTerm,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

/// One item of the SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain variable.
    Var(String),
    /// `(AGG(?v) AS ?alias)`; `var == None` means `COUNT(*)`.
    Agg {
        /// The function.
        func: AggFunc,
        /// Aggregated variable (None for `COUNT(*)`).
        var: Option<String>,
        /// Output name.
        alias: String,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT items; empty with `star == true` means `SELECT *`.
    pub select: Vec<SelectItem>,
    /// `SELECT *`.
    pub star: bool,
    /// `DISTINCT`.
    pub distinct: bool,
    /// Required basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// OPTIONAL groups.
    pub optionals: Vec<Vec<TriplePattern>>,
    /// FILTER expressions (conjoined).
    pub filters: Vec<Expr>,
    /// GROUP BY variables.
    pub group_by: Vec<String>,
    /// ORDER BY (variable, ascending).
    pub order_by: Option<(String, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
    /// `AS OF <hexid>` — pin evaluation to the store as of that commit
    /// id (16 lowercase hex digits, as reported by the serving tier's
    /// `X-Commit` header). `None` reads the head.
    pub as_of: Option<u64>,
}

/// One operation of a SPARQL UPDATE request.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `INSERT DATA { ... }` — ground triples to add.
    InsertData(Vec<(Term, Term, Term)>),
    /// `DELETE DATA { ... }` — ground triples to remove.
    DeleteData(Vec<(Term, Term, Term)>),
    /// `DELETE WHERE { ... }` — remove every instantiation of the
    /// pattern group (the group is both template and WHERE clause).
    DeleteWhere(Vec<TriplePattern>),
    /// `INSERT { template } WHERE { patterns }` — instantiate the
    /// template with every solution of the WHERE group and add the
    /// resulting ground triples. Every template variable must be bound
    /// by the WHERE group (checked at parse time).
    InsertWhere {
        /// Triple templates instantiated once per solution.
        template: Vec<TriplePattern>,
        /// The WHERE group, evaluated as `SELECT *` through the
        /// ordinary plan machinery.
        patterns: Vec<TriplePattern>,
    },
}

/// A parsed SPARQL UPDATE request: one or more operations separated by
/// `;`, sharing one PREFIX header. The supported subset is `INSERT
/// DATA`, `INSERT … WHERE`, `DELETE DATA` and `DELETE WHERE`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Operations in request order.
    pub ops: Vec<UpdateOp>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Iri(String),
    Pname(String, String),
    Var(String),
    Str(String),
    Num(String),
    Word(String),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> RdfError {
        RdfError::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Tok, RdfError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(Tok::Eof);
        }
        let b = self.src[self.pos];
        match b {
            b'<' => {
                let start = self.pos + 1;
                let mut end = start;
                while end < self.src.len() && self.src[end] != b'>' {
                    end += 1;
                }
                if end == self.src.len() {
                    // No closing '>' anywhere: a comparison operator.
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        return Ok(Tok::Punct("<="));
                    }
                    return Ok(Tok::Punct("<"));
                }
                let content = &self.src[start..end];
                if content.iter().any(|c| c.is_ascii_whitespace()) {
                    // It's a less-than, not an IRI.
                    self.pos += 1;
                    if self.pos < self.src.len() && self.src[self.pos] == b'=' {
                        self.pos += 1;
                        return Ok(Tok::Punct("<="));
                    }
                    return Ok(Tok::Punct("<"));
                }
                self.pos = end + 1;
                Ok(Tok::Iri(String::from_utf8_lossy(content).into_owned()))
            }
            b'?' | b'$' => {
                let start = self.pos + 1;
                let mut end = start;
                while end < self.src.len()
                    && (self.src[end].is_ascii_alphanumeric() || self.src[end] == b'_')
                {
                    end += 1;
                }
                if end == start {
                    return Err(self.error("empty variable name"));
                }
                self.pos = end;
                Ok(Tok::Var(String::from_utf8_lossy(&self.src[start..end]).into_owned()))
            }
            b'"' => {
                let mut out = String::new();
                let mut i = self.pos + 1;
                while i < self.src.len() && self.src[i] != b'"' {
                    if self.src[i] == b'\\' && i + 1 < self.src.len() {
                        i += 1;
                        out.push(match self.src[i] {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                    } else {
                        out.push(self.src[i] as char);
                    }
                    i += 1;
                }
                if i >= self.src.len() {
                    return Err(self.error("unterminated string"));
                }
                self.pos = i + 1;
                Ok(Tok::Str(out))
            }
            b'0'..=b'9' => self.lex_number(),
            b'-' => {
                // Negative number or minus operator: number if a digit follows.
                if self.pos + 1 < self.src.len() && self.src[self.pos + 1].is_ascii_digit() {
                    self.lex_number()
                } else {
                    self.pos += 1;
                    Ok(Tok::Punct("-"))
                }
            }
            b'{' | b'}' | b'(' | b')' | b'.' | b';' | b',' | b'*' | b'+' | b'/' => {
                self.pos += 1;
                Ok(Tok::Punct(match b {
                    b'{' => "{",
                    b'}' => "}",
                    b'(' => "(",
                    b')' => ")",
                    b'.' => ".",
                    b';' => ";",
                    b',' => ",",
                    b'*' => "*",
                    b'+' => "+",
                    _ => "/",
                }))
            }
            b'^' => {
                if self.src.get(self.pos + 1) == Some(&b'^') {
                    self.pos += 2;
                    Ok(Tok::Punct("^^"))
                } else {
                    Err(self.error("lone '^'"))
                }
            }
            b'&' => {
                if self.src.get(self.pos + 1) == Some(&b'&') {
                    self.pos += 2;
                    Ok(Tok::Punct("&&"))
                } else {
                    Err(self.error("lone '&'"))
                }
            }
            b'|' => {
                if self.src.get(self.pos + 1) == Some(&b'|') {
                    self.pos += 2;
                    Ok(Tok::Punct("||"))
                } else {
                    Err(self.error("lone '|'"))
                }
            }
            b'=' => {
                self.pos += 1;
                Ok(Tok::Punct("="))
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Tok::Punct("!="))
                } else {
                    self.pos += 1;
                    Ok(Tok::Punct("!"))
                }
            }
            b'>' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Tok::Punct(">="))
                } else {
                    self.pos += 1;
                    Ok(Tok::Punct(">"))
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                let mut end = start;
                while end < self.src.len()
                    && (self.src[end].is_ascii_alphanumeric()
                        || self.src[end] == b'_'
                        || self.src[end] == b'-')
                {
                    end += 1;
                }
                // Prefixed name?
                if end < self.src.len() && self.src[end] == b':' {
                    let prefix = String::from_utf8_lossy(&self.src[start..end]).into_owned();
                    let lstart = end + 1;
                    let mut lend = lstart;
                    while lend < self.src.len()
                        && (self.src[lend].is_ascii_alphanumeric()
                            || self.src[lend] == b'_'
                            || self.src[lend] == b'-')
                    {
                        lend += 1;
                    }
                    self.pos = lend;
                    return Ok(Tok::Pname(
                        prefix,
                        String::from_utf8_lossy(&self.src[lstart..lend]).into_owned(),
                    ));
                }
                self.pos = end;
                Ok(Tok::Word(
                    String::from_utf8_lossy(&self.src[start..end]).into_owned(),
                ))
            }
            b':' => {
                // Default-prefix pname `:local`.
                let lstart = self.pos + 1;
                let mut lend = lstart;
                while lend < self.src.len()
                    && (self.src[lend].is_ascii_alphanumeric()
                        || self.src[lend] == b'_'
                        || self.src[lend] == b'-')
                {
                    lend += 1;
                }
                self.pos = lend;
                Ok(Tok::Pname(
                    String::new(),
                    String::from_utf8_lossy(&self.src[lstart..lend]).into_owned(),
                ))
            }
            other => Err(self.error(&format!("unexpected character {:?}", other as char))),
        }
    }

    fn lex_number(&mut self) -> Result<Tok, RdfError> {
        let start = self.pos;
        let mut end = self.pos;
        if self.src[end] == b'-' {
            end += 1;
        }
        let mut has_dot = false;
        while end < self.src.len() {
            match self.src[end] {
                b'0'..=b'9' => end += 1,
                b'.' if !has_dot
                    && end + 1 < self.src.len()
                    && self.src[end + 1].is_ascii_digit() =>
                {
                    has_dot = true;
                    end += 1;
                }
                b'e' | b'E'
                    if end + 1 < self.src.len()
                        && (self.src[end + 1].is_ascii_digit()
                            || self.src[end + 1] == b'-'
                            || self.src[end + 1] == b'+') =>
                {
                    has_dot = true; // exponent implies double
                    end += 2;
                }
                _ => break,
            }
        }
        self.pos = end;
        Ok(Tok::Num(
            String::from_utf8_lossy(&self.src[start..end]).into_owned(),
        ))
    }
}

/// The parser.
pub struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

/// Parse a query string.
pub fn parse_query(src: &str) -> Result<Query, RdfError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lexer.next()?;
        let end = t == Tok::Eof;
        toks.push(t);
        if end {
            break;
        }
    }
    let mut p = Parser {
        toks,
        pos: 0,
        prefixes: default_prefixes(),
    };
    p.query()
}

/// Parse a SPARQL UPDATE string (`INSERT DATA` / `DELETE DATA` /
/// `DELETE WHERE`, `;`-separated, with an optional shared PREFIX
/// header).
pub fn parse_update(src: &str) -> Result<Update, RdfError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lexer.next()?;
        let end = t == Tok::Eof;
        toks.push(t);
        if end {
            break;
        }
    }
    let mut p = Parser {
        toks,
        pos: 0,
        prefixes: default_prefixes(),
    };
    p.update()
}

fn default_prefixes() -> HashMap<String, String> {
    let mut m = HashMap::new();
    m.insert("xsd".into(), "http://www.w3.org/2001/XMLSchema#".into());
    m.insert("geo".into(), "http://www.opengis.net/ont/geosparql#".into());
    m.insert(
        "geof".into(),
        "http://www.opengis.net/def/function/geosparql/".into(),
    );
    m.insert(
        "rdf".into(),
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#".into(),
    );
    m
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> RdfError {
        RdfError::Parse(format!("{msg}, found {:?}", self.peek()))
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), RdfError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.advance();
                Ok(())
            }
            _ => Err(self.error(&format!("expected '{p}'"))),
        }
    }

    fn is_word(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_word(&mut self, kw: &str) -> Result<(), RdfError> {
        if self.is_word(kw) {
            self.advance();
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn expand(&self, prefix: &str, local: &str) -> Result<String, RdfError> {
        self.prefixes
            .get(prefix)
            .map(|base| format!("{base}{local}"))
            .ok_or_else(|| RdfError::Parse(format!("unknown prefix {prefix:?}")))
    }

    fn prefix_decls(&mut self) -> Result<(), RdfError> {
        while self.is_word("PREFIX") {
            self.advance();
            let (prefix, _) = match self.advance() {
                Tok::Pname(p, l) if l.is_empty() => (p, l),
                other => {
                    return Err(RdfError::Parse(format!(
                        "expected 'prefix:' after PREFIX, found {other:?}"
                    )))
                }
            };
            let iri = match self.advance() {
                Tok::Iri(i) => i,
                other => {
                    return Err(RdfError::Parse(format!(
                        "expected <iri> after PREFIX, found {other:?}"
                    )))
                }
            };
            self.prefixes.insert(prefix, iri);
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Query, RdfError> {
        self.prefix_decls()?;
        self.eat_word("SELECT")?;
        let distinct = if self.is_word("DISTINCT") {
            self.advance();
            true
        } else {
            false
        };
        let mut select = Vec::new();
        let mut star = false;
        loop {
            match self.peek().clone() {
                Tok::Punct("*") => {
                    self.advance();
                    star = true;
                }
                Tok::Var(v) => {
                    self.advance();
                    select.push(SelectItem::Var(v));
                }
                Tok::Punct("(") => {
                    self.advance();
                    select.push(self.aggregate()?);
                }
                _ => break,
            }
        }
        if select.is_empty() && !star {
            return Err(self.error("SELECT needs variables, aggregates or *"));
        }
        self.eat_word("WHERE")?;
        self.eat_punct("{")?;
        let mut patterns = Vec::new();
        let mut optionals = Vec::new();
        let mut filters = Vec::new();
        self.group_body(&mut patterns, &mut optionals, &mut filters)?;
        self.eat_punct("}")?;

        let mut group_by = Vec::new();
        if self.is_word("GROUP") {
            self.advance();
            self.eat_word("BY")?;
            while let Tok::Var(v) = self.peek().clone() {
                self.advance();
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(self.error("GROUP BY needs variables"));
            }
        }
        let mut order_by = None;
        if self.is_word("ORDER") {
            self.advance();
            self.eat_word("BY")?;
            let asc = if self.is_word("DESC") {
                self.advance();
                false
            } else {
                if self.is_word("ASC") {
                    self.advance();
                }
                true
            };
            let parened = matches!(self.peek(), Tok::Punct("("));
            if parened {
                self.advance();
            }
            let v = match self.advance() {
                Tok::Var(v) => v,
                other => return Err(RdfError::Parse(format!("ORDER BY expects ?var, found {other:?}"))),
            };
            if parened {
                self.eat_punct(")")?;
            }
            order_by = Some((v, asc));
        }
        let mut limit = None;
        let mut offset = None;
        let mut as_of = None;
        loop {
            if self.is_word("LIMIT") {
                self.advance();
                limit = Some(self.number_usize()?);
            } else if self.is_word("OFFSET") {
                self.advance();
                offset = Some(self.number_usize()?);
            } else if self.is_word("AS") {
                self.advance();
                self.eat_word("OF")?;
                let id = match self.advance() {
                    Tok::Iri(text) => u64::from_str_radix(&text, 16).map_err(|_| {
                        RdfError::Parse(format!("AS OF expects a hex commit id, found <{text}>"))
                    })?,
                    other => {
                        return Err(RdfError::Parse(format!(
                            "AS OF expects <hexid>, found {other:?}"
                        )))
                    }
                };
                as_of = Some(id);
            } else {
                break;
            }
        }
        if self.peek() != &Tok::Eof {
            return Err(self.error("trailing tokens after query"));
        }
        Ok(Query {
            select,
            star,
            distinct,
            patterns,
            optionals,
            filters,
            group_by,
            order_by,
            limit,
            offset,
            as_of,
        })
    }

    fn update(&mut self) -> Result<Update, RdfError> {
        self.prefix_decls()?;
        let mut ops = Vec::new();
        loop {
            if self.is_word("INSERT") {
                self.advance();
                if self.is_word("DATA") {
                    self.advance();
                    ops.push(UpdateOp::InsertData(self.ground_block()?));
                } else if matches!(self.peek(), Tok::Punct("{")) {
                    let template = self.pattern_block()?;
                    if template.is_empty() {
                        return Err(RdfError::Parse(
                            "INSERT WHERE needs at least one template triple".into(),
                        ));
                    }
                    self.eat_word("WHERE")?;
                    let patterns = self.pattern_block()?;
                    if patterns.is_empty() {
                        return Err(RdfError::Parse(
                            "INSERT WHERE needs at least one triple pattern".into(),
                        ));
                    }
                    // Every template variable must be bound by the WHERE
                    // group, or instantiation could never ground it.
                    let bound: std::collections::HashSet<&str> = patterns
                        .iter()
                        .flat_map(|p| [&p.s, &p.p, &p.o])
                        .filter_map(|t| match t {
                            PatternTerm::Var(v) => Some(v.as_str()),
                            PatternTerm::Const(_) => None,
                        })
                        .collect();
                    for t in template.iter().flat_map(|p| [&p.s, &p.p, &p.o]) {
                        if let PatternTerm::Var(v) = t {
                            if !bound.contains(v.as_str()) {
                                return Err(RdfError::Parse(format!(
                                    "template variable ?{v} is not bound by the WHERE group"
                                )));
                            }
                        }
                    }
                    ops.push(UpdateOp::InsertWhere { template, patterns });
                } else {
                    return Err(self.error("expected DATA or { template } WHERE after INSERT"));
                }
            } else if self.is_word("DELETE") {
                self.advance();
                if self.is_word("DATA") {
                    self.advance();
                    ops.push(UpdateOp::DeleteData(self.ground_block()?));
                } else if self.is_word("WHERE") {
                    self.advance();
                    let patterns = self.pattern_block()?;
                    if patterns.is_empty() {
                        return Err(RdfError::Parse(
                            "DELETE WHERE needs at least one triple pattern".into(),
                        ));
                    }
                    ops.push(UpdateOp::DeleteWhere(patterns));
                } else {
                    return Err(self.error("expected DATA or WHERE after DELETE"));
                }
            } else {
                return Err(self.error(
                    "expected INSERT DATA, INSERT { } WHERE, DELETE DATA or DELETE WHERE",
                ));
            }
            if matches!(self.peek(), Tok::Punct(";")) {
                self.advance();
            }
            if self.peek() == &Tok::Eof {
                break;
            }
        }
        Ok(Update { ops })
    }

    /// `{ triples }` where every position must be a concrete term.
    fn ground_block(&mut self) -> Result<Vec<(Term, Term, Term)>, RdfError> {
        let patterns = self.pattern_block()?;
        let mut out = Vec::with_capacity(patterns.len());
        for tp in patterns {
            let (PatternTerm::Const(s), PatternTerm::Const(p), PatternTerm::Const(o)) =
                (tp.s, tp.p, tp.o)
            else {
                return Err(RdfError::Parse(
                    "variables are not allowed in INSERT DATA / DELETE DATA".into(),
                ));
            };
            out.push((s, p, o));
        }
        Ok(out)
    }

    /// `{ triple_block* }` with no FILTER/OPTIONAL.
    fn pattern_block(&mut self) -> Result<Vec<TriplePattern>, RdfError> {
        self.eat_punct("{")?;
        let mut patterns = Vec::new();
        while !matches!(self.peek(), Tok::Punct("}")) {
            if self.peek() == &Tok::Eof {
                return Err(self.error("unterminated block"));
            }
            self.triple_block(&mut patterns)?;
        }
        self.eat_punct("}")?;
        Ok(patterns)
    }

    fn number_usize(&mut self) -> Result<usize, RdfError> {
        match self.advance() {
            Tok::Num(n) => n
                .parse::<usize>()
                .map_err(|_| RdfError::Parse(format!("bad count {n:?}"))),
            other => Err(RdfError::Parse(format!("expected a number, found {other:?}"))),
        }
    }

    fn aggregate(&mut self) -> Result<SelectItem, RdfError> {
        let func = match self.advance() {
            Tok::Word(w) => match w.to_ascii_uppercase().as_str() {
                "COUNT" => AggFunc::Count,
                "SUM" => AggFunc::Sum,
                "AVG" => AggFunc::Avg,
                "MIN" => AggFunc::Min,
                "MAX" => AggFunc::Max,
                other => return Err(RdfError::Parse(format!("unknown aggregate {other}"))),
            },
            other => return Err(RdfError::Parse(format!("expected aggregate, found {other:?}"))),
        };
        self.eat_punct("(")?;
        let var = match self.peek().clone() {
            Tok::Punct("*") => {
                self.advance();
                None
            }
            Tok::Var(v) => {
                self.advance();
                Some(v)
            }
            _ => return Err(self.error("aggregate expects ?var or *")),
        };
        self.eat_punct(")")?;
        self.eat_word("AS")?;
        let alias = match self.advance() {
            Tok::Var(v) => v,
            other => return Err(RdfError::Parse(format!("AS expects ?var, found {other:?}"))),
        };
        self.eat_punct(")")?;
        Ok(SelectItem::Agg { func, var, alias })
    }

    fn group_body(
        &mut self,
        patterns: &mut Vec<TriplePattern>,
        optionals: &mut Vec<Vec<TriplePattern>>,
        filters: &mut Vec<Expr>,
    ) -> Result<(), RdfError> {
        loop {
            match self.peek().clone() {
                Tok::Punct("}") => return Ok(()),
                Tok::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.advance();
                    self.eat_punct("(")?;
                    let e = self.expr()?;
                    self.eat_punct(")")?;
                    filters.push(e);
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.advance();
                    self.eat_punct("{")?;
                    let mut inner = Vec::new();
                    let mut inner_opt = Vec::new();
                    let mut inner_filters = Vec::new();
                    self.group_body(&mut inner, &mut inner_opt, &mut inner_filters)?;
                    if !inner_opt.is_empty() || !inner_filters.is_empty() {
                        return Err(RdfError::Parse(
                            "nested OPTIONAL/FILTER inside OPTIONAL is not supported".into(),
                        ));
                    }
                    self.eat_punct("}")?;
                    optionals.push(inner);
                }
                Tok::Eof => return Err(self.error("unterminated group")),
                _ => {
                    self.triple_block(patterns)?;
                }
            }
        }
    }

    /// `subject pred obj (; pred obj)* .?`
    fn triple_block(&mut self, patterns: &mut Vec<TriplePattern>) -> Result<(), RdfError> {
        let s = self.pattern_term()?;
        loop {
            let p = self.pattern_term()?;
            let o = self.pattern_term()?;
            patterns.push(TriplePattern {
                s: s.clone(),
                p,
                o,
            });
            match self.peek() {
                Tok::Punct(";") => {
                    self.advance();
                    // Allow trailing ';' before '.' or '}'.
                    if matches!(self.peek(), Tok::Punct(".") | Tok::Punct("}")) {
                        break;
                    }
                }
                _ => break,
            }
        }
        if matches!(self.peek(), Tok::Punct(".")) {
            self.advance();
        }
        Ok(())
    }

    fn pattern_term(&mut self) -> Result<PatternTerm, RdfError> {
        match self.advance() {
            Tok::Var(v) => Ok(PatternTerm::Var(v)),
            Tok::Iri(i) => Ok(PatternTerm::Const(Term::iri(i))),
            Tok::Pname(p, l) => {
                if p.is_empty() && l == "a" {
                    // never reached: 'a' lexes as Word
                }
                Ok(PatternTerm::Const(Term::iri(self.expand(&p, &l)?)))
            }
            Tok::Word(w) if w == "a" => Ok(PatternTerm::Const(Term::iri(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            ))),
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => {
                Ok(PatternTerm::Const(Term::boolean(true)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(PatternTerm::Const(Term::boolean(false)))
            }
            Tok::Num(n) => Ok(PatternTerm::Const(number_term(&n))),
            Tok::Str(s) => {
                // Optional datatype.
                if matches!(self.peek(), Tok::Punct("^^")) {
                    self.advance();
                    let dt = match self.advance() {
                        Tok::Iri(i) => i,
                        Tok::Pname(p, l) => self.expand(&p, &l)?,
                        other => {
                            return Err(RdfError::Parse(format!(
                                "expected datatype after ^^, found {other:?}"
                            )))
                        }
                    };
                    Ok(PatternTerm::Const(Term::Literal {
                        lexical: s,
                        datatype: dt,
                    }))
                } else {
                    Ok(PatternTerm::Const(Term::string(s)))
                }
            }
            other => Err(RdfError::Parse(format!(
                "expected a term or variable, found {other:?}"
            ))),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, RdfError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, RdfError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::Punct("||")) {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, RdfError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            self.advance();
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, RdfError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("=") => CmpOp::Eq,
            Tok::Punct("!=") => CmpOp::Ne,
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, RdfError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => '+',
                Tok::Punct("-") => '-',
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, RdfError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => '*',
                Tok::Punct("/") => '/',
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, RdfError> {
        match self.peek().clone() {
            Tok::Punct("!") => {
                self.advance();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            Tok::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Tok::Var(v) => {
                self.advance();
                Ok(Expr::Var(v))
            }
            Tok::Pname(_, local) => {
                // A function call like geof:sfIntersects(...).
                let tok = self.advance();
                if matches!(self.peek(), Tok::Punct("(")) {
                    self.function_call(&local)
                } else if let Tok::Pname(p, l) = tok {
                    Ok(Expr::Const(Term::iri(self.expand(&p, &l)?)))
                } else {
                    unreachable!()
                }
            }
            Tok::Iri(i) => {
                self.advance();
                Ok(Expr::Const(Term::iri(i)))
            }
            Tok::Num(n) => {
                self.advance();
                Ok(Expr::Const(number_term(&n)))
            }
            Tok::Str(_) => {
                let PatternTerm::Const(t) = self.pattern_term()? else {
                    unreachable!()
                };
                Ok(Expr::Const(t))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => {
                self.advance();
                Ok(Expr::Const(Term::boolean(true)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => {
                self.advance();
                Ok(Expr::Const(Term::boolean(false)))
            }
            _ => Err(self.error("expected an expression")),
        }
    }

    fn function_call(&mut self, local: &str) -> Result<Expr, RdfError> {
        self.eat_punct("(")?;
        let a = self.expr()?;
        self.eat_punct(",")?;
        let b = self.expr()?;
        self.eat_punct(")")?;
        let e = match local {
            "sfIntersects" => Expr::Spatial(SpatialOp::Intersects, Box::new(a), Box::new(b)),
            "sfContains" => Expr::Spatial(SpatialOp::Contains, Box::new(a), Box::new(b)),
            "sfWithin" => Expr::Spatial(SpatialOp::Within, Box::new(a), Box::new(b)),
            "distance" => Expr::Distance(Box::new(a), Box::new(b)),
            other => {
                return Err(RdfError::Parse(format!("unsupported function {other:?}")))
            }
        };
        Ok(e)
    }
}

fn number_term(n: &str) -> Term {
    if n.contains('.') || n.contains('e') || n.contains('E') {
        Term::Literal {
            lexical: n.to_string(),
            datatype: XSD_DOUBLE.to_string(),
        }
    } else {
        Term::Literal {
            lexical: n.to_string(),
            datatype: XSD_INTEGER.to_string(),
        }
    }
}

/// Convenience used by loaders/tests: a date literal.
pub fn date_literal(iso: &str) -> Term {
    Term::Literal {
        lexical: iso.to_string(),
        datatype: XSD_DATE.to_string(),
    }
}

/// Convenience: a WKT literal.
pub fn wkt_literal(wkt: &str) -> Term {
    Term::Literal {
        lexical: wkt.to_string(),
        datatype: GEO_WKT.to_string(),
    }
}

/// Convenience: a boolean literal.
pub fn bool_literal(b: bool) -> Term {
    Term::Literal {
        lexical: b.to_string(),
        datatype: XSD_BOOLEAN.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse_query("SELECT ?s WHERE { ?s <http://e/p> ?o . }").unwrap();
        assert_eq!(q.select, vec![SelectItem::Var("s".into())]);
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].p, PatternTerm::Const(Term::iri("http://e/p")));
        assert!(!q.distinct);
    }

    #[test]
    fn prefixes_expand() {
        let q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:name \"Alice\" }",
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].p,
            PatternTerm::Const(Term::iri("http://example.org/name"))
        );
        assert_eq!(
            q.patterns[0].o,
            PatternTerm::Const(Term::string("Alice"))
        );
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        assert!(matches!(
            parse_query("SELECT ?s WHERE { ?s nope:p ?o }"),
            Err(RdfError::Parse(_))
        ));
    }

    #[test]
    fn rdf_type_shorthand() {
        let q = parse_query("SELECT ?s WHERE { ?s a <http://e/C> }").unwrap();
        assert_eq!(
            q.patterns[0].p,
            PatternTerm::Const(Term::iri(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
            ))
        );
    }

    #[test]
    fn predicate_lists_with_semicolon() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:p ?o ; e:q ?r . ?o e:z 5 }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.patterns[0].s, q.patterns[1].s);
        assert_eq!(
            q.patterns[2].o,
            PatternTerm::Const(Term::integer(5))
        );
    }

    #[test]
    fn typed_literals_and_numbers() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s <http://e/d> \"2017-03-01\"^^xsd:date . ?s <http://e/v> 2.5 }",
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].o,
            PatternTerm::Const(date_literal("2017-03-01"))
        );
        assert_eq!(q.patterns[1].o, PatternTerm::Const(Term::double(2.5)));
    }

    #[test]
    fn filters_parse_with_precedence() {
        let q = parse_query(
            "SELECT ?x WHERE { ?s <http://e/v> ?x . FILTER(?x > 3 && ?x < 10 || ?x = 0) }",
        )
        .unwrap();
        // || binds loosest: Or(And(>,<), =).
        match &q.filters[0] {
            Expr::Or(a, _) => match a.as_ref() {
                Expr::And(_, _) => {}
                other => panic!("expected And under Or, got {other:?}"),
            },
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn spatial_function_calls() {
        let q = parse_query(
            "SELECT ?g WHERE { ?s <http://e/geo> ?g . \
             FILTER(geof:sfIntersects(?g, \"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))\"^^geo:wktLiteral)) }",
        )
        .unwrap();
        match &q.filters[0] {
            Expr::Spatial(SpatialOp::Intersects, a, b) => {
                assert_eq!(**a, Expr::Var("g".into()));
                assert!(matches!(**b, Expr::Const(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distance_and_arithmetic() {
        let q = parse_query(
            "SELECT ?g WHERE { ?s <http://e/geo> ?g . \
             FILTER(geof:distance(?g, \"POINT (0 0)\"^^geo:wktLiteral) < 2 * 5) }",
        )
        .unwrap();
        assert!(matches!(&q.filters[0], Expr::Cmp(_, CmpOp::Lt, _)));
    }

    #[test]
    fn optional_groups() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:p ?o . OPTIONAL { ?s e:name ?n } }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.optionals.len(), 1);
        assert_eq!(q.optionals[0].len(), 1);
    }

    #[test]
    fn aggregates_group_order_limit() {
        let q = parse_query(
            "PREFIX e: <http://e/> \
             SELECT ?s (COUNT(?o) AS ?n) (AVG(?v) AS ?m) WHERE { ?s e:p ?o . ?o e:v ?v } \
             GROUP BY ?s ORDER BY DESC(?n) LIMIT 5 OFFSET 2",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert!(matches!(
            q.select[1],
            SelectItem::Agg {
                func: AggFunc::Count,
                ..
            }
        ));
        assert_eq!(q.group_by, vec!["s"]);
        assert_eq!(q.order_by, Some(("n".into(), false)));
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
        assert_eq!(q.as_of, None);
    }

    #[test]
    fn as_of_pins_a_commit_id() {
        let q = parse_query("SELECT ?s WHERE { ?s ?p ?o } AS OF <cbf29ce484222325>").unwrap();
        assert_eq!(q.as_of, Some(0xcbf2_9ce4_8422_2325));
        // Order-insensitive among the trailing clauses.
        let q = parse_query("SELECT ?s WHERE { ?s ?p ?o } AS OF <1f> LIMIT 3").unwrap();
        assert_eq!(q.as_of, Some(0x1f));
        assert_eq!(q.limit, Some(3));
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o } AS OF <nothex>").is_err());
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o } AS OF 12").is_err());
    }

    #[test]
    fn count_star() {
        let q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap();
        assert!(matches!(
            &q.select[0],
            SelectItem::Agg {
                func: AggFunc::Count,
                var: None,
                alias
            } if alias == "n"
        ));
    }

    #[test]
    fn select_star_and_distinct() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(q.star);
        assert!(q.distinct);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "SELECT WHERE { ?s ?p ?o }",
            "SELECT ?s { ?s ?p ?o }",          // missing WHERE
            "SELECT ?s WHERE { ?s ?p }",       // incomplete triple
            "SELECT ?s WHERE { ?s ?p ?o ",     // unterminated
            "SELECT ?s WHERE { ?s ?p ?o } garbage",
            "SELECT ?s WHERE { FILTER(badfunc:nope(?a, ?b)) }",
        ] {
            assert!(parse_query(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn le_ge_operators_without_trailing_iri() {
        // Regression: '<=' must lex as an operator even when no '>'
        // appears later in the input (it used to be read as an IRI open).
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:d ?d . \
             FILTER(?d >= \"2017-01-01\"^^xsd:date && ?d <= \"2017-12-31\"^^xsd:date) }",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        match &q.filters[0] {
            Expr::And(a, b) => {
                assert!(matches!(**a, Expr::Cmp(_, CmpOp::Ge, _)));
                assert!(matches!(**b, Expr::Cmp(_, CmpOp::Le, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lt_followed_by_iri_still_lexes() {
        // '<' as comparison while a real IRI appears later in the query.
        let q = parse_query(
            "SELECT ?s WHERE { ?s <http://e/v> ?v . FILTER(?v < 5) }",
        )
        .unwrap();
        assert!(matches!(&q.filters[0], Expr::Cmp(_, CmpOp::Lt, _)));
    }

    #[test]
    fn insert_data_parses_ground_triples() {
        let u = parse_update(
            "PREFIX e: <http://e/> INSERT DATA { e:s e:p e:o . e:s e:q 5 ; e:r \"x\" }",
        )
        .unwrap();
        assert_eq!(u.ops.len(), 1);
        let UpdateOp::InsertData(ts) = &u.ops[0] else {
            panic!("{:?}", u.ops[0]);
        };
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].0, Term::iri("http://e/s"));
        assert_eq!(ts[1].2, Term::integer(5));
        assert_eq!(ts[2].2, Term::string("x"));
    }

    #[test]
    fn update_ops_chain_with_semicolons() {
        let u = parse_update(
            "PREFIX e: <http://e/> \
             DELETE DATA { e:a e:p e:b } ; \
             INSERT DATA { e:a e:p e:c } ; \
             DELETE WHERE { ?s e:stale ?o }",
        )
        .unwrap();
        assert_eq!(u.ops.len(), 3);
        assert!(matches!(u.ops[0], UpdateOp::DeleteData(_)));
        assert!(matches!(u.ops[1], UpdateOp::InsertData(_)));
        let UpdateOp::DeleteWhere(ps) = &u.ops[2] else {
            panic!()
        };
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].s, PatternTerm::Var("s".into()));
    }

    #[test]
    fn insert_where_parses_template_and_group() {
        let u = parse_update(
            "PREFIX e: <http://e/> \
             INSERT { ?s e:met ?o . ?s e:type e:Person } WHERE { ?s e:knows ?o }",
        )
        .unwrap();
        assert_eq!(u.ops.len(), 1);
        let UpdateOp::InsertWhere { template, patterns } = &u.ops[0] else {
            panic!("{:?}", u.ops[0]);
        };
        assert_eq!(template.len(), 2);
        assert_eq!(patterns.len(), 1);
        assert_eq!(template[0].s, PatternTerm::Var("s".into()));
        assert_eq!(template[1].o, PatternTerm::Const(Term::iri("http://e/Person")));
        assert_eq!(patterns[0].p, PatternTerm::Const(Term::iri("http://e/knows")));
    }

    #[test]
    fn update_parse_errors() {
        for bad in [
            "",
            "INSERT { <http://e/s> <http://e/p> <http://e/o> }", // missing WHERE
            "INSERT DATA { ?s <http://e/p> <http://e/o> }",      // variable in DATA
            "DELETE DATA { <http://e/s> <http://e/p> ?o }",
            "DELETE WHERE { }",                                  // empty group
            "INSERT { } WHERE { ?s ?p ?o }",                     // empty template
            "INSERT { ?s ?p ?o } WHERE { }",                     // empty WHERE group
            "INSERT { ?s <http://e/p> ?x } WHERE { ?s ?p ?o }",  // ?x unbound
            "DELETE <http://e/s>",                               // neither DATA nor WHERE
            "INSERT DATA { <http://e/s> <http://e/p> <http://e/o> ", // unterminated
            "SELECT ?s WHERE { ?s ?p ?o }",                      // a query, not an update
        ] {
            assert!(parse_update(bad).is_err(), "{bad:?} parsed as update");
        }
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query(
            "# a comment\nSELECT ?s # trailing\nWHERE { ?s ?p ?o }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
    }
}
