//! Query planning: the inspectable middle layer between the parser and
//! the physical operators.
//!
//! [`plan`] turns a parsed [`Query`] into a [`Plan`] against a concrete
//! [`TripleStore`]: constants are resolved to dictionary ids, the join
//! order is chosen once (greedy bound-position / estimated-cardinality,
//! the same heuristic the old monolithic evaluator applied per recursion
//! step), spatial `FILTER`s are pushed down into per-variable R-tree
//! candidate sets, every filter is pinned to the earliest join step at
//! which all of its variables are bound, and the projection / GROUP BY /
//! ORDER BY columns are resolved to table indices **at plan time** so no
//! per-row name lookup survives into execution.
//!
//! [`logical`] builds the same `Plan` shape without a store — no
//! dictionary ids, no candidate sets — which is what the federation
//! engine plans against: its source selection is a rewrite over the
//! logical plan (see `ee-federation`), not a string-level query split.
//!
//! A `Plan` is immutable and `Send + Sync`: the serving tier caches
//! prepared plans keyed on canonicalised query text and executes them
//! concurrently from many worker threads.

use crate::expr::{collect_const_geometries, spatial_pushdown, Expr};
use crate::parser::{AggFunc, PatternTerm, Query, SelectItem, TriplePattern};
use crate::store::{StoreView, TripleStore};
use crate::term::Term;
use crate::RdfError;
use ee_geo::{Envelope, Geometry};
use std::collections::HashMap;

/// The executor route a plan takes, decided purely from the plan shape
/// (never from store contents or thread count, so routing is stable
/// across replans and deterministic for tests and metrics).
///
/// The first four kinds are the interesting ones for the
/// `ee_rdf_fastpath_total{kind}` counter; `Aggregate` and `Stream` are
/// the generic routes that predate the fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FastPath {
    /// `ORDER BY ?v LIMIT k` (± OFFSET), no DISTINCT, no aggregation:
    /// bounded max-heap of size `k + offset` fed by the pipeline.
    TopK,
    /// `COUNT(*)` / `COUNT(?v)` as the sole SELECT item, no GROUP BY:
    /// rows are counted in the pipeline without materialising terms.
    FastCount,
    /// GROUP BY where every aggregate is a COUNT: one-pass id-keyed
    /// counter table instead of materialise-then-group row vectors.
    GroupCount,
    /// ORDER BY without a usable LIMIT (or with DISTINCT): global sort
    /// with precomputed keys (decorate–sort–undecorate).
    FullSort,
    /// Generic grouping/aggregation (SUM/AVG/MIN/MAX, or shapes the
    /// count fast paths cannot reproduce exactly).
    Aggregate,
    /// The fully pipelined non-aggregate, non-ORDER path.
    Stream,
}

impl FastPath {
    /// Every variant, in metric-rendering order.
    pub const ALL: [FastPath; 6] = [
        FastPath::TopK,
        FastPath::FastCount,
        FastPath::GroupCount,
        FastPath::FullSort,
        FastPath::Aggregate,
        FastPath::Stream,
    ];

    /// Stable label for metrics (`ee_rdf_fastpath_total{kind="..."}`)
    /// and [`Plan::describe`].
    pub fn label(self) -> &'static str {
        match self {
            FastPath::TopK => "topk",
            FastPath::FastCount => "fast_count",
            FastPath::GroupCount => "group_count",
            FastPath::FullSort => "full_sort",
            FastPath::Aggregate => "aggregate",
            FastPath::Stream => "stream",
        }
    }
}

/// A triple-pattern position with the variable resolved to a column and
/// (for physical plans) the constant resolved to a dictionary id.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A variable, as an index into [`Plan::vars`].
    Var(usize),
    /// A constant term, resolved to its dictionary id.
    Const(u64),
    /// A constant term that is not in the dictionary: the pattern can
    /// never match.
    Impossible,
}

/// A filter with its evaluation site decided at plan time.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    /// The filter expression.
    pub expr: Expr,
    /// Columns of every variable the expression references.
    pub vars: Vec<usize>,
    /// Name → column pairs for exactly the referenced variables, so the
    /// evaluator's name lookup scans a handful of entries instead of the
    /// whole variable table per row.
    pub lookup: Vec<(String, usize)>,
    /// Index into [`Plan::order`] of the earliest join step after which
    /// every referenced variable is bound; `None` means the filter is
    /// residual (it references OPTIONAL or unbound variables) and runs
    /// after the left-joins.
    pub apply_after: Option<usize>,
}

/// An executable query plan. See the module docs for the two builders.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The full variable table; row layout of every binding batch.
    pub vars: Vec<String>,
    /// The required triple patterns, as parsed (kept for inspection and
    /// for engines that ship patterns to remote endpoints).
    pub patterns: Vec<TriplePattern>,
    /// Execution order: indices into [`Plan::patterns`].
    pub order: Vec<usize>,
    /// Id-resolved slots, parallel to [`Plan::patterns`]. Empty for
    /// logical plans.
    pub slots: Vec<[Slot; 3]>,
    /// OPTIONAL groups, id-resolved, each in its own execution order.
    pub optionals: Vec<Vec<[Slot; 3]>>,
    /// The filters with plan-time placement.
    pub filters: Vec<FilterPlan>,
    /// Geometries parsed out of constant terms at plan time.
    pub const_geoms: Vec<(Term, Geometry)>,
    /// Per-column spatial candidate id sets (sorted ascending) from
    /// R-tree pushdown. Empty for logical plans and non-`Full` stores.
    pub candidates: HashMap<usize, Vec<u64>>,
    /// The pushdown region, when one exists: (variable name, envelope).
    /// Logical plans keep this for spatial source selection.
    pub region: Option<(String, Envelope)>,
    /// The SELECT items, as parsed (drives the aggregation tail).
    pub select: Vec<SelectItem>,
    /// `SELECT *`.
    pub star: bool,
    /// `DISTINCT`.
    pub distinct: bool,
    /// Projected (name, column) pairs for the non-aggregate path,
    /// resolved at plan time.
    pub projection: Vec<(String, usize)>,
    /// Whether any SELECT item aggregates.
    pub has_agg: bool,
    /// GROUP BY columns, resolved at plan time.
    pub group_by: Vec<usize>,
    /// ORDER BY as (column, ascending), resolved at plan time.
    pub order_by: Option<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
    /// True when some required pattern contains a constant the store has
    /// never seen: the query yields no join rows.
    pub impossible: bool,
}

fn var_index(vars: &mut Vec<String>, name: &str) -> usize {
    if let Some(i) = vars.iter().position(|v| v == name) {
        i
    } else {
        vars.push(name.to_string());
        vars.len() - 1
    }
}

fn resolve_slot(t: &PatternTerm, store: StoreView<'_>, vars: &mut Vec<String>) -> Slot {
    match t {
        PatternTerm::Var(name) => Slot::Var(var_index(vars, name)),
        PatternTerm::Const(term) => match store.dict().id_of(term) {
            Some(id) => Slot::Const(id),
            None => Slot::Impossible,
        },
    }
}

fn collect_expr_vars(expr: &Expr, vars: &mut Vec<String>, out: &mut Vec<usize>) {
    match expr {
        Expr::Var(name) => {
            let i = var_index(vars, name);
            if !out.contains(&i) {
                out.push(i);
            }
        }
        Expr::Cmp(a, _, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Spatial(_, a, b)
        | Expr::Distance(a, b)
        | Expr::Arith(a, _, b) => {
            collect_expr_vars(a, vars, out);
            collect_expr_vars(b, vars, out);
        }
        Expr::Not(a) => collect_expr_vars(a, vars, out),
        Expr::Const(_) => {}
    }
}

/// Variables (as column indices) of a pattern's slots.
fn slot_vars(slots: &[Slot; 3]) -> impl Iterator<Item = usize> + '_ {
    slots.iter().filter_map(|s| match s {
        Slot::Var(v) => Some(*v),
        _ => None,
    })
}

/// Greedy static join order: repeatedly take the pattern with the most
/// bound positions (constants + variables bound by already-ordered
/// patterns), breaking ties by the store's cardinality estimate over the
/// constant positions, then by pattern index. `estimate == None` (logical
/// planning) falls back to position count alone.
fn choose_order(slots: &[[Slot; 3]], store: Option<StoreView<'_>>) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..slots.len()).collect();
    let mut bound: Vec<bool> = Vec::new();
    let grow = |bound: &mut Vec<bool>, v: usize| {
        if v >= bound.len() {
            bound.resize(v + 1, false);
        }
    };
    let mut order = Vec::with_capacity(slots.len());
    while !remaining.is_empty() {
        let mut best = remaining[0];
        let mut best_key = (usize::MAX, usize::MAX);
        for &pi in &remaining {
            let mut bound_count = 0;
            let ids: Vec<Option<u64>> = slots[pi]
                .iter()
                .map(|s| match s {
                    Slot::Const(id) => {
                        bound_count += 1;
                        Some(*id)
                    }
                    Slot::Var(v) => {
                        if bound.get(*v).copied().unwrap_or(false) {
                            bound_count += 1;
                        }
                        // The concrete id is unknown at plan time; the
                        // estimate sees only the constants.
                        None
                    }
                    Slot::Impossible => Some(u64::MAX),
                })
                .collect();
            let est = match store {
                Some(st) => st.estimate(ids[0], ids[1], ids[2]),
                None => 0,
            };
            let key = (3 - bound_count, est);
            if key < best_key {
                best_key = key;
                best = pi;
            }
        }
        order.push(best);
        remaining.retain(|&x| x != best);
        for v in slot_vars(&slots[best]) {
            grow(&mut bound, v);
            bound[v] = true;
        }
    }
    order
}

/// Pin each filter to the earliest step in `order` after which all of its
/// variables are bound by required patterns; `None` = residual.
fn place_filters(filters: &mut [FilterPlan], slots: &[[Slot; 3]], order: &[usize]) {
    let mut bound: Vec<bool> = Vec::new();
    let mut bound_after: Vec<Vec<bool>> = Vec::with_capacity(order.len());
    for &pi in order {
        for v in slot_vars(&slots[pi]) {
            if v >= bound.len() {
                bound.resize(v + 1, false);
            }
            bound[v] = true;
        }
        bound_after.push(bound.clone());
    }
    for f in filters.iter_mut() {
        f.apply_after = bound_after.iter().position(|b| {
            f.vars
                .iter()
                .all(|&v| b.get(v).copied().unwrap_or(false))
        });
    }
}

/// The shared planning scaffold. `store == None` builds a logical plan.
fn build(store: Option<StoreView<'_>>, q: &Query) -> Result<Plan, RdfError> {
    let mut vars = Vec::new();
    // Select order defines projection order for named vars.
    for item in &q.select {
        if let SelectItem::Var(v) = item {
            var_index(&mut vars, v);
        }
    }
    let mut impossible = false;
    let resolve = |t: &PatternTerm, vars: &mut Vec<String>, impossible: &mut bool| match store {
        Some(st) => {
            let s = resolve_slot(t, st, vars);
            if matches!(s, Slot::Impossible) {
                *impossible = true;
            }
            s
        }
        None => match t {
            PatternTerm::Var(name) => Slot::Var(var_index(vars, name)),
            // Logical plans carry no ids; mark constants with a
            // placeholder the executor never sees.
            PatternTerm::Const(_) => Slot::Const(0),
        },
    };
    let slots: Vec<[Slot; 3]> = q
        .patterns
        .iter()
        .map(|p| {
            [
                resolve(&p.s, &mut vars, &mut impossible),
                resolve(&p.p, &mut vars, &mut impossible),
                resolve(&p.o, &mut vars, &mut impossible),
            ]
        })
        .collect();
    let optionals: Vec<Vec<[Slot; 3]>> = q
        .optionals
        .iter()
        .map(|group| {
            // An optional group with an unknown constant never matches;
            // the Slot::Impossible stays in the group and the executor
            // passes rows through unextended.
            let mut opt_impossible = false;
            group
                .iter()
                .map(|p| {
                    [
                        resolve(&p.s, &mut vars, &mut opt_impossible),
                        resolve(&p.p, &mut vars, &mut opt_impossible),
                        resolve(&p.o, &mut vars, &mut opt_impossible),
                    ]
                })
                .collect::<Vec<[Slot; 3]>>()
        })
        .collect();
    let mut const_geoms = Vec::new();
    for f in &q.filters {
        collect_const_geometries(f, &mut const_geoms);
    }
    let mut region: Option<(String, Envelope)> = None;
    let mut candidates: HashMap<usize, Vec<u64>> = HashMap::new();
    for f in &q.filters {
        if let Some((var, env)) = spatial_pushdown(f, &const_geoms) {
            if region.is_none() {
                region = Some((var.clone(), env));
            }
            if let Some(st) = store {
                if let Some(ids) = st.spatial_candidates(&env) {
                    let vi = var_index(&mut vars, &var);
                    let mut set = ids;
                    set.sort_unstable();
                    set.dedup();
                    match candidates.entry(vi) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            // Intersect with the previous pushdown set.
                            let prev = e.get_mut();
                            prev.retain(|id| set.binary_search(id).is_ok());
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(set);
                        }
                    }
                }
            }
        }
    }
    let mut filters: Vec<FilterPlan> = q
        .filters
        .iter()
        .map(|f| {
            let mut used = Vec::new();
            collect_expr_vars(f, &mut vars, &mut used);
            let lookup = used
                .iter()
                .map(|&i| (vars[i].clone(), i))
                .collect();
            FilterPlan {
                expr: f.clone(),
                vars: used,
                lookup,
                apply_after: None,
            }
        })
        .collect();
    // Group/order vars must exist in the table too.
    for v in &q.group_by {
        var_index(&mut vars, v);
    }
    if let Some((v, _)) = &q.order_by {
        var_index(&mut vars, v);
    }

    let order = choose_order(&slots, store);
    place_filters(&mut filters, &slots, &order);

    // Each optional group gets its own static execution order by
    // re-sorting the group's slots in place.
    let optionals: Vec<Vec<[Slot; 3]>> = optionals
        .into_iter()
        .map(|group| {
            let ord = choose_order(&group, store);
            ord.into_iter().map(|i| group[i].clone()).collect()
        })
        .collect();

    let has_agg = q.select.iter().any(|s| matches!(s, SelectItem::Agg { .. }));
    let projection: Vec<(String, usize)> = if has_agg || !q.group_by.is_empty() {
        Vec::new()
    } else {
        let names: Vec<String> = if q.star {
            vars.clone()
        } else {
            q.select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Var(v) => Some(v.clone()),
                    _ => None,
                })
                .collect()
        };
        names
            .into_iter()
            .map(|n| {
                let i = vars
                    .iter()
                    .position(|v| v == &n)
                    .ok_or_else(|| RdfError::Eval(format!("unknown select variable ?{n}")))?;
                Ok((n, i))
            })
            .collect::<Result<_, RdfError>>()?
    };
    let group_by: Vec<usize> = q
        .group_by
        .iter()
        .map(|v| {
            vars.iter()
                .position(|x| x == v)
                .ok_or_else(|| RdfError::Eval(format!("unknown group variable ?{v}")))
        })
        .collect::<Result<_, _>>()?;
    let order_by = match &q.order_by {
        Some((ov, asc)) => {
            let oi = vars
                .iter()
                .position(|v| v == ov)
                .ok_or_else(|| RdfError::Eval(format!("unknown order variable ?{ov}")))?;
            Some((oi, *asc))
        }
        None => None,
    };

    Ok(Plan {
        vars,
        patterns: q.patterns.clone(),
        order,
        slots,
        optionals,
        filters,
        const_geoms,
        candidates,
        region,
        select: q.select.clone(),
        star: q.star,
        distinct: q.distinct,
        projection,
        has_agg,
        group_by,
        order_by,
        limit: q.limit,
        offset: q.offset,
        impossible,
    })
}

/// Plan a query against a concrete store (physical plan).
pub fn plan(store: &TripleStore, q: &Query) -> Result<Plan, RdfError> {
    build(Some(StoreView::from(store)), q)
}

/// Plan a query against a [`StoreView`] — the versioned-read entry
/// point. Spatial candidate sets include the view's overlay geometries,
/// so plans built here are valid **only for that exact view** (the
/// serving tier never caches them; the overlay grows as head advances).
pub fn plan_view(view: StoreView<'_>, q: &Query) -> Result<Plan, RdfError> {
    build(Some(view), q)
}

/// Plan a query without a store (logical plan): no dictionary ids, no
/// candidate sets, join order from bound positions alone. This is the
/// shape remote engines (federation) plan against.
pub fn logical(q: &Query) -> Result<Plan, RdfError> {
    build(None, q)
}

fn pattern_term_str(t: &PatternTerm) -> String {
    match t {
        PatternTerm::Var(v) => format!("?{v}"),
        PatternTerm::Const(c) => c.ntriples(),
    }
}

fn pattern_str(p: &TriplePattern) -> String {
    format!(
        "{} {} {}",
        pattern_term_str(&p.s),
        pattern_term_str(&p.p),
        pattern_term_str(&p.o)
    )
}

impl Plan {
    /// The name of the ORDER BY variable, if any (resolved back from the
    /// column index).
    pub fn order_by_name(&self) -> Option<(&str, bool)> {
        self.order_by
            .map(|(i, asc)| (self.vars[i].as_str(), asc))
    }

    /// Which executor route this plan takes (see [`FastPath`]). A pure
    /// function of the plan shape: the executor and the serving tier's
    /// `ee_rdf_fastpath_total{kind}` counter call this and always agree.
    ///
    /// Count fast paths additionally require every aggregated variable to
    /// resolve in the variable table: an unknown `COUNT(?ghost)` stays on
    /// the generic path, which reproduces the historical semantics of
    /// erroring only when at least one group exists.
    pub fn fast_path(&self) -> FastPath {
        if self.has_agg || !self.group_by.is_empty() {
            let resolvable = |var: &Option<String>| match var {
                None => true,
                Some(v) => self.vars.iter().any(|x| x == v),
            };
            if self.group_by.is_empty() {
                if let [SelectItem::Agg { func: AggFunc::Count, var, .. }] =
                    self.select.as_slice()
                {
                    if resolvable(var) {
                        return FastPath::FastCount;
                    }
                }
                return FastPath::Aggregate;
            }
            let all_count = self.has_agg
                && self.select.iter().all(|item| match item {
                    SelectItem::Var(_) => true,
                    SelectItem::Agg { func: AggFunc::Count, var, .. } => resolvable(var),
                    SelectItem::Agg { .. } => false,
                });
            if all_count {
                FastPath::GroupCount
            } else {
                FastPath::Aggregate
            }
        } else if self.order_by.is_some() {
            if self.limit.is_some() && !self.distinct {
                FastPath::TopK
            } else {
                FastPath::FullSort
            }
        } else {
            FastPath::Stream
        }
    }

    /// A stable human-readable rendering of the chosen plan, for
    /// inspection and snapshot tests. Deliberately excludes anything that
    /// varies with store content beyond the join order itself (no
    /// cardinalities, no candidate counts).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str("join order:\n");
        for (step, &pi) in self.order.iter().enumerate() {
            s.push_str(&format!("  {step}: {}", pattern_str(&self.patterns[pi])));
            if let Some([_, _, Slot::Var(v)]) = self.slots.get(pi) {
                if self.candidates.contains_key(v) {
                    s.push_str(&format!(" [pushdown ?{}]", self.vars[*v]));
                }
            }
            s.push('\n');
        }
        for (gi, group) in self.optionals.iter().enumerate() {
            s.push_str(&format!("optional group {gi}: {} patterns\n", group.len()));
        }
        for (fi, f) in self.filters.iter().enumerate() {
            let vars: Vec<String> = f
                .vars
                .iter()
                .map(|&v| format!("?{}", self.vars[v]))
                .collect();
            match f.apply_after {
                Some(step) => s.push_str(&format!(
                    "filter {fi} on {} after step {step}\n",
                    vars.join(" ")
                )),
                None => s.push_str(&format!("filter {fi} on {} residual\n", vars.join(" "))),
            }
        }
        if self.has_agg || !self.group_by.is_empty() {
            s.push_str("aggregate\n");
        } else {
            let names: Vec<String> = self
                .projection
                .iter()
                .map(|(n, i)| format!("?{n}@{i}"))
                .collect();
            s.push_str(&format!("project: {}\n", names.join(" ")));
        }
        if self.distinct {
            s.push_str("distinct\n");
        }
        if let Some((oi, asc)) = self.order_by {
            s.push_str(&format!(
                "order by ?{} {}\n",
                self.vars[oi],
                if asc { "asc" } else { "desc" }
            ));
        }
        if let Some(l) = self.limit {
            s.push_str(&format!("limit {l}\n"));
        }
        if let Some(o) = self.offset {
            s.push_str(&format!("offset {o}\n"));
        }
        // The routing decision, for non-default routes only: the plain
        // pipelined path stays unannotated so historical plan snapshots
        // keep their shape.
        let fp = self.fast_path();
        if fp != FastPath::Stream {
            s.push_str(&format!("fastpath: {}\n", fp.label()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::store::IndexMode;

    fn e(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn store() -> TripleStore {
        let mut st = TripleStore::new(IndexMode::Full);
        let name = e("name");
        let knows = e("knows");
        let geom = e("hasGeometry");
        for who in ["alice", "bob", "carol"] {
            st.insert(&e(who), &name, &Term::string(who));
        }
        st.insert(&e("alice"), &knows, &e("bob"));
        st.insert(&e("alice"), &geom, &Term::wkt("POINT (1 1)"));
        st.insert(&e("bob"), &geom, &Term::wkt("POINT (5 5)"));
        st.build_spatial_index();
        st
    }

    #[test]
    fn join_order_starts_with_most_selective_pattern() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
        )
        .unwrap();
        let p = plan(&st, &q).unwrap();
        // ?x knows ?y has 1 match, ?y name ?n has 3: knows goes first.
        assert_eq!(p.order, vec![0, 1]);
        // The filterless name join is step 1 with ?y bound.
        assert!(p.describe().starts_with("join order:"));
    }

    #[test]
    fn snapshot_join_query_plan() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
        )
        .unwrap();
        let p = plan(&st, &q).unwrap();
        assert_eq!(
            p.describe(),
            "join order:\n\
             \x20 0: ?x <http://e/knows> ?y\n\
             \x20 1: ?y <http://e/name> ?n\n\
             project: ?n@0\n"
        );
    }

    #[test]
    fn snapshot_spatial_selection_plan() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { \
             ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        )
        .unwrap();
        let p = plan(&st, &q).unwrap();
        assert_eq!(
            p.describe(),
            "join order:\n\
             \x20 0: ?s <http://e/hasGeometry> ?g [pushdown ?g]\n\
             filter 0 on ?g after step 0\n\
             aggregate\n\
             fastpath: fast_count\n"
        );
        assert!(p.region.is_some());
        assert_eq!(p.candidates.len(), 1);
    }

    #[test]
    fn filters_are_pinned_to_earliest_step() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:name ?n . ?x e:knows ?y . \
             FILTER(?n = \"alice\") }",
        )
        .unwrap();
        let p = plan(&st, &q).unwrap();
        let f = &p.filters[0];
        // ?n is bound by the name pattern; whichever step runs it first
        // carries the filter.
        let name_step = p
            .order
            .iter()
            .position(|&pi| matches!(&q.patterns[pi].p, PatternTerm::Const(t) if t == &e("name")))
            .unwrap();
        assert_eq!(f.apply_after, Some(name_step));
    }

    #[test]
    fn residual_filter_over_optional_var() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:knows ?y . \
             OPTIONAL { ?x e:name ?n } FILTER(?n != \"bob\") }",
        )
        .unwrap();
        let p = plan(&st, &q).unwrap();
        assert_eq!(p.filters[0].apply_after, None, "optional var → residual");
    }

    #[test]
    fn logical_plan_has_no_ids_but_same_shape() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?f ?n WHERE { ?f e:cropType \"wheat\" . ?f e:name ?n }",
        )
        .unwrap();
        let p = logical(&q).unwrap();
        assert_eq!(p.order, vec![0, 1], "two consts beat one const");
        assert!(p.candidates.is_empty());
        assert!(!p.impossible);
        assert_eq!(p.projection.len(), 2);
    }

    #[test]
    fn fast_path_routing_covers_every_shape() {
        let st = store();
        let route = |q_text: &str| {
            let q = parse_query(q_text).unwrap();
            plan(&st, &q).unwrap().fast_path()
        };
        let cases = [
            // ORDER BY + LIMIT without DISTINCT: bounded heap.
            (
                "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:name ?n } ORDER BY ?n LIMIT 2",
                FastPath::TopK,
            ),
            // OFFSET rides along with the heap (k + offset resident rows).
            (
                "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:name ?n } ORDER BY DESC(?n) LIMIT 2 OFFSET 1",
                FastPath::TopK,
            ),
            // DISTINCT dedups after the sort — the heap would under-produce.
            (
                "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?x e:name ?n } ORDER BY ?n LIMIT 2",
                FastPath::FullSort,
            ),
            // No LIMIT: nothing to bound.
            (
                "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:name ?n } ORDER BY ?n",
                FastPath::FullSort,
            ),
            ("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }", FastPath::FastCount),
            (
                "PREFIX e: <http://e/> SELECT (COUNT(?y) AS ?n) WHERE { ?x e:knows ?y }",
                FastPath::FastCount,
            ),
            // Non-count aggregate: generic path.
            (
                "PREFIX e: <http://e/> SELECT (MIN(?n) AS ?lo) WHERE { ?x e:name ?n }",
                FastPath::Aggregate,
            ),
            (
                "PREFIX e: <http://e/> SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x e:knows ?y } GROUP BY ?x",
                FastPath::GroupCount,
            ),
            // Grouped non-count aggregate: generic path.
            (
                "PREFIX e: <http://e/> SELECT ?x (MIN(?y) AS ?lo) WHERE { ?x e:knows ?y } GROUP BY ?x",
                FastPath::Aggregate,
            ),
            (
                "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:name ?n } LIMIT 2",
                FastPath::Stream,
            ),
        ];
        for (q_text, want) in cases {
            assert_eq!(route(q_text), want, "{q_text}");
        }
        // Labels are stable — the metrics contract.
        assert_eq!(FastPath::TopK.label(), "topk");
        assert_eq!(FastPath::ALL.len(), 6);
        let mut labels: Vec<&str> = FastPath::ALL.iter().map(|f| f.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 6, "labels are distinct");
    }

    #[test]
    fn describe_names_the_chosen_fast_path() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1",
        )
        .unwrap();
        let d = plan(&st, &q).unwrap().describe();
        assert!(d.ends_with("fastpath: topk\n"), "{d}");
        // The plain pipelined route stays unannotated.
        let q = parse_query("PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:name ?n }").unwrap();
        let d = plan(&st, &q).unwrap().describe();
        assert!(!d.contains("fastpath"), "{d}");
    }

    #[test]
    fn unresolvable_count_var_stays_on_generic_path() {
        // COUNT over a variable the query never binds must keep the
        // historical semantics (error only when a group exists), so it
        // routes to the generic aggregate path.
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT (COUNT(?ghost) AS ?n) WHERE { ?x e:name ?m }",
        )
        .unwrap();
        assert_eq!(plan(&st, &q).unwrap().fast_path(), FastPath::Aggregate);
    }

    #[test]
    fn unknown_constant_marks_impossible() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:name \"Nobody\" }",
        )
        .unwrap();
        let p = plan(&st, &q).unwrap();
        assert!(p.impossible);
    }
}
