//! The versioned commit log: an immutable, hash-chained history of every
//! commit the store has ever applied.
//!
//! `commits.log` sits beside `wal.log` and reuses the same record framing
//! ([`super::encode::write_record`]). Each record's payload is
//!
//! ```text
//! [u64 LE parent commit id][WAL commit payload (generation, delete, insert)]
//! ```
//!
//! and a record's **commit id** is `fnv1a(payload)` — the same value the
//! framing already stores as the record checksum. Because the parent id is
//! folded into the payload, ids form a hash chain rooted at
//! [`ROOT_COMMIT_ID`] (the FNV offset basis, i.e. `fnv1a("")`): a commit id
//! names not just one delta but the entire history that produced it, which
//! is what makes it safe to use as an ETag and a cache key upstream.
//!
//! Unlike the WAL, the commit log is **never reset by compaction** — the
//! WAL holds only the deltas since the last snapshot fold, while the
//! commit log holds the whole history so `AS OF` reads can rewind past
//! compaction points. Recovery exploits the write order (WAL append →
//! commit-log append → apply): a torn commit-log tail is truncated and the
//! missing records are re-derived from the WAL's replayed commits, which
//! reproduces them bit-identically because the chain hash is
//! deterministic.

use super::encode::{bad_data, fnv1a, write_record, RecordOutcome, RecordReader};
use super::wal::{decode_commit, encode_commit, Durability, WalCommit};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the commit log inside a store directory.
pub const COMMITS_FILE: &str = "commits.log";

/// The commit id of the empty history — the store as created/bulk-loaded,
/// before any commit. Equal to `fnv1a(&[])`, the FNV-1a offset basis.
pub const ROOT_COMMIT_ID: u64 = 0xcbf2_9ce4_8422_2325;

/// One immutable entry in the commit history.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// This commit's id: `fnv1a(parent LE bytes ‖ commit payload)`.
    pub id: u64,
    /// The id of the preceding commit ([`ROOT_COMMIT_ID`] for the first).
    pub parent: u64,
    /// The delta, in the same shape the WAL stores it.
    pub commit: WalCommit,
}

impl CommitRecord {
    /// The generation this commit produced.
    pub fn generation(&self) -> u64 {
        self.commit.generation
    }
}

fn encode_record(parent: u64, commit: &WalCommit) -> Vec<u8> {
    let body = encode_commit(commit);
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&parent.to_le_bytes());
    payload.extend_from_slice(&body);
    payload
}

fn decode_record(payload: &[u8]) -> io::Result<CommitRecord> {
    if payload.len() < 8 {
        return Err(bad_data("commit record shorter than its parent id"));
    }
    let parent = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let commit = decode_commit(&payload[8..])?;
    Ok(CommitRecord {
        id: fnv1a(payload),
        parent,
        commit,
    })
}

/// Derive the commit record a given delta produces on top of `parent`.
/// Pure and deterministic: the live commit path and crash recovery both
/// call this, which is why a re-derived record is bit-identical to the
/// one lost in a torn tail.
pub fn derive_record(parent: u64, commit: &WalCommit) -> CommitRecord {
    let payload = encode_record(parent, commit);
    CommitRecord {
        id: fnv1a(&payload),
        parent,
        commit: commit.clone(),
    }
}

/// An open commit log.
pub struct CommitLog {
    file: File,
    path: PathBuf,
    durability: Durability,
    /// Bytes of clean records currently in the file.
    len: u64,
}

impl CommitLog {
    /// Open (creating if absent) the commit log in `dir` and reconcile it
    /// against the WAL-recovered state of the store:
    ///
    /// 1. torn or chain-breaking tail records are truncated away;
    /// 2. records whose generation exceeds `head_generation` (written
    ///    ahead of a WAL tail that itself tore) are dropped;
    /// 3. records missing relative to the WAL (crash between WAL append
    ///    and commit-log append, or a torn commit-log tail) are
    ///    re-derived from `wal_commits` and appended.
    ///
    /// Returns the log handle plus the full reconciled history in commit
    /// order. If the history has a gap the WAL cannot fill (a missing or
    /// externally-truncated file on a store that already compacted), the
    /// stale prefix is discarded and the chain restarts at the earliest
    /// state the WAL can still reach: time travel then only goes back
    /// that far, but the store always opens.
    pub fn open(
        dir: &Path,
        durability: Durability,
        wal_commits: &[WalCommit],
        head_generation: u64,
    ) -> io::Result<(CommitLog, Vec<CommitRecord>)> {
        let path = dir.join(COMMITS_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut records: Vec<CommitRecord> = Vec::new();
        // End offset of each clean record, so dropping a logical tail
        // maps back to a byte length.
        let mut ends: Vec<u64> = Vec::new();
        let mut reader = RecordReader::new(BufReader::new(&file));
        let mut valid_len = loop {
            match reader.next_record()? {
                RecordOutcome::Record(payload) => {
                    let rec = decode_record(&payload)?;
                    let expect = records.last().map_or(ROOT_COMMIT_ID, |r| r.id);
                    if rec.parent != expect {
                        // A record that does not extend the chain is as
                        // good as torn: keep the clean prefix.
                        break *ends.last().unwrap_or(&0);
                    }
                    records.push(rec);
                    ends.push(reader.valid_len());
                }
                RecordOutcome::Eof => break reader.valid_len(),
                RecordOutcome::Torn { valid_len } => break valid_len,
            }
        };
        while records
            .last()
            .is_some_and(|r| r.generation() > head_generation)
        {
            records.pop();
            ends.pop();
            valid_len = *ends.last().unwrap_or(&0);
        }
        let mut log = CommitLog {
            file,
            path,
            durability,
            len: valid_len,
        };
        let disk_len = log.file.metadata()?.len();
        if disk_len != valid_len {
            log.file.set_len(valid_len)?;
            log.file.sync_all()?;
        }
        log.file.seek(SeekFrom::Start(valid_len))?;

        // Re-derive whatever the tail lost from the WAL's commits.
        let logged_gen = records.last().map_or(0, |r| r.generation());
        let mut missing: Vec<&WalCommit> = wal_commits
            .iter()
            .filter(|c| c.generation > logged_gen && c.generation <= head_generation)
            .collect();
        let gap = match missing.first() {
            Some(first) => first.generation != logged_gen + 1,
            None => logged_gen < head_generation,
        };
        if gap {
            // The log lost records older than the WAL's coverage (it was
            // deleted or truncated externally — the write order never
            // produces this). A chain with a hole is useless for as-of
            // rewinding, so restart it at the earliest state the WAL can
            // still reconstruct; commits before that are no longer
            // addressable, but the store opens.
            records.clear();
            ends.clear();
            log.file.set_len(0)?;
            log.file.sync_all()?;
            log.file.seek(SeekFrom::Start(0))?;
            log.len = 0;
            missing = wal_commits
                .iter()
                .filter(|c| c.generation <= head_generation)
                .collect();
        }
        for c in missing {
            let parent = records.last().map_or(ROOT_COMMIT_ID, |r| r.id);
            let rec = derive_record(parent, c);
            log.append(&rec)?;
            records.push(rec);
        }
        Ok((log, records))
    }

    /// Append one commit record; returns its on-disk size in bytes.
    pub fn append(&mut self, rec: &CommitRecord) -> io::Result<u64> {
        let payload = encode_record(rec.parent, &rec.commit);
        let mut framed = Vec::with_capacity(payload.len() + 12);
        write_record(&mut framed, &payload)?;
        self.file.write_all(&framed)?;
        if self.durability == Durability::Sync {
            self.file.sync_data()?;
        }
        self.len += framed.len() as u64;
        Ok(framed.len() as u64)
    }

    /// Force the log to disk. Compaction calls this before resetting the
    /// WAL: once the WAL is empty, a lost commit-log tail could no longer
    /// be re-derived, so it must be durable first.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Current clean length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no commits are logged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}
