//! Low-level wire format shared by snapshots and the WAL.
//!
//! Everything on disk is a sequence of **records**:
//!
//! ```text
//! [u32 LE payload_len][payload bytes][u64 LE FNV-1a(payload)]
//! ```
//!
//! Inside payloads, integers are LEB128 uvarints and terms are a tag
//! byte (`0` = IRI, `1` = literal) followed by length-prefixed UTF-8.
//! The framing lets a reader distinguish three outcomes: a complete
//! record, a clean end-of-file, and a torn tail (truncated or
//! checksum-corrupt trailing bytes from a crashed writer) — the last of
//! which is reported with the byte offset of the clean prefix so WAL
//! recovery can truncate it away.

use crate::term::Term;
use std::io::{self, Read, Write};

/// FNV-1a over a byte slice (the repo-wide checksum/hash primitive;
/// same constants as `ee-serve`'s ETag sink).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append a LEB128 uvarint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read a LEB128 uvarint from `buf` starting at `*pos`, advancing it.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = buf
            .get(*pos)
            .ok_or_else(|| bad_data("truncated uvarint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(bad_data("uvarint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a length-prefixed string.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> io::Result<String> {
    let len = get_uvarint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| bad_data("truncated string"))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| bad_data("non-UTF-8 string"))?
        .to_string();
    *pos = end;
    Ok(s)
}

const TAG_IRI: u8 = 0;
const TAG_LITERAL: u8 = 1;

/// Append one term.
pub fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Iri(i) => {
            out.push(TAG_IRI);
            put_str(out, i);
        }
        Term::Literal { lexical, datatype } => {
            out.push(TAG_LITERAL);
            put_str(out, lexical);
            put_str(out, datatype);
        }
    }
}

/// Read one term.
pub fn get_term(buf: &[u8], pos: &mut usize) -> io::Result<Term> {
    let &tag = buf.get(*pos).ok_or_else(|| bad_data("truncated term"))?;
    *pos += 1;
    match tag {
        TAG_IRI => Ok(Term::Iri(get_str(buf, pos)?)),
        TAG_LITERAL => Ok(Term::Literal {
            lexical: get_str(buf, pos)?,
            datatype: get_str(buf, pos)?,
        }),
        other => Err(bad_data(&format!("unknown term tag {other}"))),
    }
}

/// An `InvalidData` error (corrupt bytes, as opposed to a torn tail).
pub fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Frame and write one record.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len: u32 = payload
        .len()
        .try_into()
        .map_err(|_| bad_data("record over 4 GiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    Ok(())
}

/// Total on-disk size of a record with this payload length.
pub fn record_len(payload_len: usize) -> u64 {
    4 + payload_len as u64 + 8
}

/// One read attempt from a [`RecordReader`].
#[derive(Debug)]
pub enum RecordOutcome {
    /// A complete, checksum-verified payload.
    Record(Vec<u8>),
    /// Clean end of input exactly at a record boundary.
    Eof,
    /// Trailing bytes that do not form a complete valid record — a torn
    /// write. `valid_len` is the offset of the end of the last good
    /// record; recovery truncates the file there.
    Torn {
        /// Byte length of the clean prefix.
        valid_len: u64,
    },
}

/// Streaming record reader that tracks how many bytes of clean records
/// it has consumed (for torn-tail truncation).
pub struct RecordReader<R: Read> {
    inner: R,
    valid_len: u64,
}

impl<R: Read> RecordReader<R> {
    /// Wrap a reader positioned at a record boundary.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            valid_len: 0,
        }
    }

    /// Byte length of the clean record prefix read so far.
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// Read the next record. A short read or checksum mismatch yields
    /// [`RecordOutcome::Torn`], never an error — only genuine I/O
    /// failures surface as `Err`.
    pub fn next_record(&mut self) -> io::Result<RecordOutcome> {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut len_buf)? {
            Fill::Empty => return Ok(RecordOutcome::Eof),
            Fill::Partial => {
                return Ok(RecordOutcome::Torn {
                    valid_len: self.valid_len,
                })
            }
            Fill::Full => {}
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        if read_exact_or_eof(&mut self.inner, &mut payload)? != Fill::Full {
            return Ok(RecordOutcome::Torn {
                valid_len: self.valid_len,
            });
        }
        let mut sum_buf = [0u8; 8];
        if read_exact_or_eof(&mut self.inner, &mut sum_buf)? != Fill::Full {
            return Ok(RecordOutcome::Torn {
                valid_len: self.valid_len,
            });
        }
        if u64::from_le_bytes(sum_buf) != fnv1a(&payload) {
            return Ok(RecordOutcome::Torn {
                valid_len: self.valid_len,
            });
        }
        self.valid_len += record_len(len);
        Ok(RecordOutcome::Record(payload))
    }
}

#[derive(PartialEq)]
enum Fill {
    /// EOF before any byte.
    Empty,
    /// EOF mid-buffer.
    Partial,
    /// Buffer filled.
    Full,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Fill> {
    let mut read = 0;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => {
                return Ok(if read == 0 { Fill::Empty } else { Fill::Partial });
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn term_round_trips() {
        let terms = [
            Term::iri("http://example.org/thing"),
            Term::string("hello \"quoted\" \\ world\n"),
            Term::integer(-42),
            Term::wkt("POINT (3.5 -7.25)"),
        ];
        let mut buf = Vec::new();
        for t in &terms {
            put_term(&mut buf, t);
        }
        let mut pos = 0;
        for t in &terms {
            assert_eq!(&get_term(&buf, &mut pos).unwrap(), t);
        }
    }

    #[test]
    fn records_round_trip_and_detect_torn_tails() {
        let mut file = Vec::new();
        write_record(&mut file, b"first").unwrap();
        write_record(&mut file, b"second record").unwrap();
        let clean_len = file.len() as u64;

        // Clean read.
        let mut r = RecordReader::new(&file[..]);
        assert!(matches!(r.next_record().unwrap(), RecordOutcome::Record(p) if p == b"first"));
        assert!(matches!(r.next_record().unwrap(), RecordOutcome::Record(_)));
        assert!(matches!(r.next_record().unwrap(), RecordOutcome::Eof));
        assert_eq!(r.valid_len(), clean_len);

        // Every truncation point inside the second record is torn, with
        // valid_len pointing at the end of the first record.
        let first_len = record_len(5);
        for cut in (first_len as usize)..file.len() {
            let mut r = RecordReader::new(&file[..cut]);
            assert!(matches!(r.next_record().unwrap(), RecordOutcome::Record(_)));
            match r.next_record().unwrap() {
                RecordOutcome::Torn { valid_len } => assert_eq!(valid_len, first_len),
                RecordOutcome::Eof if cut == first_len as usize => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }

        // A flipped payload bit is a checksum failure, reported as torn.
        let mut corrupt = file.clone();
        corrupt[first_len as usize + 4] ^= 0x40;
        let mut r = RecordReader::new(&corrupt[..]);
        assert!(matches!(r.next_record().unwrap(), RecordOutcome::Record(_)));
        assert!(matches!(
            r.next_record().unwrap(),
            RecordOutcome::Torn { valid_len } if valid_len == first_len
        ));
    }
}
