//! Durable storage for the triple store: WAL + snapshot + commit-log
//! lifecycle.
//!
//! A store directory holds at most three files:
//!
//! * `snapshot.bin` — a complete, immutable image of the store at some
//!   generation ([`snapshot`]: dictionary blocks + sorted triple
//!   segments, every record length-prefixed and FNV-1a-checksummed);
//! * `wal.log` — one checksummed record per commit since that snapshot
//!   ([`wal`]);
//! * `commits.log` — the hash-chained record of **every** commit since
//!   the store was created, never reset by compaction ([`commitlog`]).
//!
//! [`Store::open`] replays the snapshot, then the WAL tail (dropping a
//! torn final record), and arrives at exactly the last fully-committed
//! generation. [`Store::commit`] evaluates a SPARQL UPDATE read-only,
//! appends the resulting delta to the WAL (fsync'd by default), appends
//! the hash-chained commit record, applies the delta to the in-memory
//! indexes, and bumps the monotonic **generation**. The serving tier
//! keys ETags and caches on the **head commit id**
//! ([`Store::head_commit`]) — unlike a bare counter, the id names the
//! exact history that produced the state, and [`Store::as_of`] can
//! rewind reads to any id in that history. [`Store::compact`] folds the
//! WAL into a fresh snapshot (write-tmp, fsync, rename).
//!
//! The wrapper derefs to [`TripleStore`], so every read path — pattern
//! matching, planning, execution, streaming — works unchanged.

pub mod commitlog;
pub mod encode;
pub mod segment;
pub mod snapshot;
pub mod wal;

use crate::store::{IdTriple, IndexMode, Novelty, TripleStore};
use crate::term::{Term, XSD_STRING};
use crate::update::{apply_delta, evaluate_update, Delta, GroundTriple};
use crate::RdfError;
pub use commitlog::{CommitRecord, ROOT_COMMIT_ID};
use commitlog::{derive_record, CommitLog};
use snapshot::{read_snapshot, write_snapshot, SNAPSHOT_FILE};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
pub use wal::Durability;
use wal::{Wal, WalCommit};

/// Errors from the storage layer: either the SPARQL side of an update
/// or the filesystem side of durability.
#[derive(Debug)]
pub enum StoreError {
    /// Update failed to parse or evaluate.
    Rdf(RdfError),
    /// Filesystem failure (or corrupt on-disk data).
    Io(io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Rdf(e) => write!(f, "{e}"),
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<RdfError> for StoreError {
    fn from(e: RdfError) -> Self {
        StoreError::Rdf(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What one commit did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// Generation after the commit (unchanged for no-op commits).
    pub generation: u64,
    /// Triples actually added.
    pub inserted: usize,
    /// Triples actually removed.
    pub deleted: usize,
    /// Bytes appended to the WAL (0 for no-ops and ephemeral stores).
    pub wal_bytes: u64,
}

/// Bulk-load timing, for the E-w7 ingest benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BulkLoadStats {
    /// Triples loaded (after dedup).
    pub triples: usize,
    /// Wall time for build + index + snapshot write.
    pub elapsed: Duration,
    /// `triples / elapsed` in triples per second.
    pub triples_per_sec: f64,
}

/// One shard's slice of a logical dataset, by deterministic subject
/// hash: shard `index` of `count` keeps exactly the triples whose
/// subject the shared consistent-hash ring ([`ee_util::ring`]) assigns
/// to it. Every process that builds a `ShardSpec` with the same `count`
/// partitions identically, so N shard stores built from the same triple
/// stream hold disjoint slices whose union is the whole dataset — the
/// property the router tier's scatter-gather merge relies on.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// This shard's index in `0..count`.
    pub index: usize,
    /// Total shards the dataset is split across.
    pub count: usize,
    ring: ee_util::ring::HashRing,
}

impl ShardSpec {
    /// The spec for shard `index` of `count`. Panics unless
    /// `index < count` (validate CLI input with [`ShardSpec::try_new`]).
    pub fn new(index: usize, count: usize) -> ShardSpec {
        ShardSpec::try_new(index, count).expect("shard index must be < count, count >= 1")
    }

    /// Non-panicking constructor for unvalidated (CLI / env) input.
    pub fn try_new(index: usize, count: usize) -> Option<ShardSpec> {
        if count == 0 || index >= count {
            return None;
        }
        Some(ShardSpec {
            index,
            count,
            ring: ee_util::ring::HashRing::new(count),
        })
    }

    /// Whether this shard owns `subject` (IRIs hash on their IRI text,
    /// anything else on its N-Triples form).
    pub fn accepts(&self, subject: &Term) -> bool {
        self.owner(subject) == self.index
    }

    /// The shard index owning `subject` on this spec's ring.
    pub fn owner(&self, subject: &Term) -> usize {
        match subject {
            Term::Iri(iri) => self.ring.shard_of(iri),
            other => self.ring.shard_of(&other.ntriples()),
        }
    }
}

/// When a durable store folds its WAL into a fresh snapshot on its own.
/// Both triggers are optional; either one firing after a commit runs
/// [`Store::compact`] inline (the caller's `commit` pays the snapshot
/// write — bounded by the triggers themselves, since a small WAL folds
/// fast). Ephemeral stores ignore the policy entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionPolicy {
    /// Compact once the WAL holds more than this many bytes.
    pub max_wal_bytes: Option<u64>,
    /// Compact once this many effective commits landed since the last
    /// snapshot.
    pub max_commits: Option<u64>,
}

impl CompactionPolicy {
    /// Never auto-compact (the default; callers run [`Store::compact`]
    /// by hand).
    pub fn disabled() -> Self {
        CompactionPolicy::default()
    }

    /// Read `EE_WAL_COMPACT_BYTES` / `EE_WAL_COMPACT_COMMITS` from the
    /// environment (unset, empty or unparsable → that trigger disabled).
    pub fn from_env() -> Self {
        fn parse(var: &str) -> Option<u64> {
            std::env::var(var).ok()?.trim().parse().ok()
        }
        CompactionPolicy {
            max_wal_bytes: parse("EE_WAL_COMPACT_BYTES"),
            max_commits: parse("EE_WAL_COMPACT_COMMITS"),
        }
    }

    /// True when either trigger fires for the given WAL state.
    pub fn should_compact(&self, wal_bytes: u64, commits_since_snapshot: u64) -> bool {
        self.max_wal_bytes.is_some_and(|b| wal_bytes > b)
            || self.max_commits.is_some_and(|c| commits_since_snapshot >= c)
    }
}

/// A mutable, optionally durable triple store with a monotonic
/// generation counter. Derefs to [`TripleStore`] for all reads.
pub struct Store {
    inner: TripleStore,
    generation: u64,
    /// `None` for ephemeral (memory-only) stores.
    wal: Option<Wal>,
    /// `None` for ephemeral stores (which still keep `history` in
    /// memory, so versioned reads work without a disk).
    commits: Option<CommitLog>,
    /// Every commit applied since the store was created, oldest first,
    /// with consecutive generations (normally starting at 1; later if a
    /// lost commit log forced the chain to restart mid-history).
    history: Vec<CommitRecord>,
    dir: Option<PathBuf>,
    policy: CompactionPolicy,
    /// Effective commits since the snapshot on disk was written (seeded
    /// from the WAL tail on open).
    commits_since_snapshot: u64,
    compactions: u64,
}

impl std::ops::Deref for Store {
    type Target = TripleStore;

    fn deref(&self) -> &TripleStore {
        &self.inner
    }
}

impl Store {
    /// Wrap an in-memory store with no persistence: commits apply and
    /// bump the generation, nothing touches disk. This is what a
    /// default `ee-serve` (no data dir) runs on.
    pub fn ephemeral(inner: TripleStore) -> Self {
        Store {
            inner,
            generation: 0,
            wal: None,
            commits: None,
            history: Vec::new(),
            dir: None,
            policy: CompactionPolicy::disabled(),
            commits_since_snapshot: 0,
            compactions: 0,
        }
    }

    /// Open (or initialise) a durable store in `dir`: replay the
    /// snapshot if one exists, then the WAL tail — a torn final record
    /// is dropped, never partially applied. Durability of future
    /// commits comes from `EE_WAL_NO_SYNC` (see [`Durability`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, Durability::from_env())
    }

    /// [`Store::open`] with explicit durability (tests, benchmarks).
    pub fn open_with(dir: impl AsRef<Path>, durability: Durability) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let (mut inner, mut generation) = if snap_path.exists() {
            let data = read_snapshot(&snap_path)?;
            let mut st = TripleStore::new(data.mode);
            for t in &data.terms {
                st.dict.intern(t);
            }
            debug_assert_eq!(st.dict.len(), data.terms.len(), "ids must be positional");
            // Snapshot segments are strictly-ascending SPO, so the
            // indexes bulk-build from sorted runs instead of paying a
            // tree walk per triple.
            st.bulk_load_sorted_ids(&data.triples);
            (st, data.generation)
        } else {
            (TripleStore::new(IndexMode::Full), 0)
        };
        let (wal, commits) = Wal::open(dir, durability)?;
        let mut replayed = 0u64;
        for c in &commits {
            if c.generation <= generation {
                // Already folded into the snapshot by a compaction that
                // crashed before resetting the WAL; deltas are
                // idempotent either way, skipping is just cheaper.
                continue;
            }
            for (s, p, o) in &c.delete {
                inner.remove(s, p, o);
            }
            for (s, p, o) in &c.insert {
                inner.insert(s, p, o);
            }
            generation = c.generation;
            replayed += 1;
        }
        inner.build_spatial_index();
        let (commit_log, history) = CommitLog::open(dir, durability, &commits, generation)?;
        Ok(Store {
            inner,
            generation,
            wal: Some(wal),
            commits: Some(commit_log),
            history,
            dir: Some(dir.to_path_buf()),
            policy: CompactionPolicy::disabled(),
            commits_since_snapshot: replayed,
            compactions: 0,
        })
    }

    /// Initialise a durable store in `dir` from an already-built
    /// [`TripleStore`]: writes a generation-0 snapshot and an empty
    /// WAL, replacing whatever the directory held.
    pub fn create(
        dir: impl AsRef<Path>,
        inner: TripleStore,
        durability: Durability,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        write_snapshot(dir, &inner, 0)?;
        let (mut wal, _stale) = Wal::open(dir, durability)?;
        if !wal.is_empty() {
            wal.reset()?;
        }
        // A fresh store starts a fresh history: reconciling against an
        // empty WAL at generation 0 drops every stale commit record.
        let (commit_log, history) = CommitLog::open(dir, durability, &[], 0)?;
        debug_assert!(history.is_empty());
        Ok(Store {
            inner,
            generation: 0,
            wal: Some(wal),
            commits: Some(commit_log),
            history,
            dir: Some(dir.to_path_buf()),
            policy: CompactionPolicy::disabled(),
            commits_since_snapshot: 0,
            compactions: 0,
        })
    }

    /// Build a store from a triple stream and persist it in one step —
    /// **without** per-triple WAL records (the snapshot itself is the
    /// durable copy). Reports load throughput.
    ///
    /// With a [`ShardSpec`], only the triples whose subject the spec
    /// owns are kept: N shard processes can each stream the *same*
    /// logical dataset and build/snapshot only their slice, without any
    /// coordinator shipping data around. `triples_per_sec` then reports
    /// kept-triples over wall time (the filter walks the whole stream).
    pub fn bulk_load<I>(
        dir: impl AsRef<Path>,
        mode: IndexMode,
        triples: I,
        durability: Durability,
        shard: Option<&ShardSpec>,
    ) -> Result<(Self, BulkLoadStats), StoreError>
    where
        I: IntoIterator<Item = GroundTriple>,
    {
        let start = Instant::now();
        let mut st = TripleStore::new(mode);
        for (s, p, o) in triples {
            if let Some(spec) = shard {
                if !spec.accepts(&s) {
                    continue;
                }
            }
            st.insert(&s, &p, &o);
        }
        st.build_spatial_index();
        let n = st.len();
        let store = Self::create(dir, st, durability)?;
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64();
        let stats = BulkLoadStats {
            triples: n,
            elapsed,
            triples_per_sec: if secs > 0.0 { n as f64 / secs } else { f64::INFINITY },
        };
        Ok((store, stats))
    }

    /// Monotonic change counter: bumps by one per effective commit,
    /// survives restarts (it is recorded in both snapshot and WAL).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The id of the latest commit — [`ROOT_COMMIT_ID`] before any
    /// commit. Because each id hashes its parent's id, the head id names
    /// the store's entire history: equal head ids mean byte-identical
    /// stores, which is what makes it a sound ETag and cache key.
    pub fn head_commit(&self) -> u64 {
        self.history.last().map_or(ROOT_COMMIT_ID, |r| r.id)
    }

    /// Whether `id` names a commit in this store's history (the root id
    /// always qualifies).
    pub fn commit_known(&self, id: u64) -> bool {
        id == ROOT_COMMIT_ID || self.history.iter().any(|r| r.id == id)
    }

    /// The full commit history, oldest first.
    pub fn history(&self) -> &[CommitRecord] {
        &self.history
    }

    /// Build the novelty overlay that rewinds reads to `commit_id`:
    /// [`crate::StoreView::with_novelty`] over the *current* indexes
    /// plus this overlay sees exactly the store as of that commit — no
    /// copy of the store is made. Returns `None` for unknown ids; the
    /// head id yields an empty (transparent) overlay.
    ///
    /// Commits are undone newest-first over their effective deltas: an
    /// inserted triple not re-added later is hidden, a deleted triple
    /// not re-hidden later is resurrected. Needs `&mut self` because
    /// resurrected triples may reference terms absent from a
    /// reopened-store dictionary (snapshots only carry live terms);
    /// those are re-interned, which is safe — the dictionary is
    /// append-only and ids are stable.
    pub fn as_of(&mut self, commit_id: u64) -> Option<Novelty> {
        if commit_id == self.head_commit() {
            return Some(Novelty::default());
        }
        let cut = if commit_id == ROOT_COMMIT_ID {
            0
        } else {
            self.history.iter().position(|r| r.id == commit_id)? + 1
        };
        let mut hide: std::collections::HashSet<IdTriple> = std::collections::HashSet::new();
        let mut add: std::collections::HashSet<IdTriple> = std::collections::HashSet::new();
        // Take the history out so the dictionary can be borrowed mutably
        // while walking it (interning never touches the history).
        let history = std::mem::take(&mut self.history);
        for rec in history[cut..].iter().rev() {
            for (s, p, o) in &rec.commit.insert {
                let t = (
                    self.inner.dict.intern(s),
                    self.inner.dict.intern(p),
                    self.inner.dict.intern(o),
                );
                if !add.remove(&t) {
                    hide.insert(t);
                }
            }
            for (s, p, o) in &rec.commit.delete {
                let t = (
                    self.inner.dict.intern(s),
                    self.inner.dict.intern(p),
                    self.inner.dict.intern(o),
                );
                if !hide.remove(&t) {
                    add.insert(t);
                }
            }
        }
        self.history = history;
        Some(Novelty::new(hide, add.into_iter().collect()))
    }

    /// Directory backing this store (`None` when ephemeral).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Evaluate and durably apply a SPARQL UPDATE.
    ///
    /// Order of operations is the crash-safety contract: (1) evaluate
    /// read-only into a [`Delta`], (2) append the delta to the WAL and
    /// fsync, (3) apply to the in-memory indexes, (4) bump the
    /// generation. A crash before (2) completes loses the commit
    /// entirely (torn tail → dropped on reopen); after (2) the commit
    /// replays on reopen. There is no state in between.
    ///
    /// A commit whose effective delta is empty (inserting only present
    /// triples, deleting only absent ones) does **not** bump the
    /// generation — caches stay warm across no-ops.
    pub fn commit(&mut self, update: &crate::parser::Update) -> Result<CommitStats, StoreError> {
        let delta = evaluate_update(&self.inner, update)?;
        self.commit_delta(delta)
    }

    /// [`Store::commit`] for a pre-evaluated delta.
    pub fn commit_delta(&mut self, delta: Delta) -> Result<CommitStats, StoreError> {
        // Reduce to the effective delta so WAL records are minimal and
        // replay is trivially idempotent.
        let delete: Vec<GroundTriple> = delta
            .delete
            .iter()
            .filter(|(s, p, o)| self.inner.contains(s, p, o))
            .cloned()
            .collect();
        let deleted_set: std::collections::HashSet<&GroundTriple> = delete.iter().collect();
        let insert: Vec<GroundTriple> = delta
            .insert
            .iter()
            .filter(|t| !self.inner.contains(&t.0, &t.1, &t.2) || deleted_set.contains(t))
            .cloned()
            .collect();
        if insert.is_empty() && delete.is_empty() {
            return Ok(CommitStats {
                generation: self.generation,
                inserted: 0,
                deleted: 0,
                wal_bytes: 0,
            });
        }
        let generation = self.generation + 1;
        let commit = WalCommit {
            generation,
            delete: delete.clone(),
            insert: insert.clone(),
        };
        let mut wal_bytes = 0;
        if let Some(wal) = &mut self.wal {
            wal_bytes = wal.append(&commit)?;
        }
        // Commit-log append comes *after* the WAL append: a crash in
        // between leaves the record re-derivable from the WAL on reopen
        // (the chain hash is deterministic), never the other way round.
        let record = derive_record(self.head_commit(), &commit);
        if let Some(log) = &mut self.commits {
            log.append(&record)?;
        }
        self.history.push(record);
        let effective = Delta { insert, delete };
        let (inserted, deleted) = apply_delta(&mut self.inner, &effective);
        self.generation = generation;
        self.commits_since_snapshot += 1;
        // Threshold-triggered fold: keep the WAL (and therefore restart
        // replay time) bounded without anyone scheduling maintenance.
        if self.wal.is_some()
            && self
                .policy
                .should_compact(self.wal_len(), self.commits_since_snapshot)
        {
            self.compact()?;
        }
        Ok(CommitStats {
            generation,
            inserted,
            deleted,
            wal_bytes,
        })
    }

    /// Fold the WAL into a fresh snapshot at the current generation.
    /// Crash-safe: the new snapshot is published atomically (tmp +
    /// fsync + rename) before the WAL is reset, and replay skips WAL
    /// records at or below the snapshot generation — a crash between
    /// the two steps recovers to the same state.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        write_snapshot(&dir, &self.inner, self.generation)?;
        if let Some(log) = &mut self.commits {
            // Once the WAL is empty, a lost commit-log tail could no
            // longer be re-derived from it — make the log durable first.
            log.sync()?;
        }
        if let Some(wal) = &mut self.wal {
            wal.reset()?;
        }
        self.commits_since_snapshot = 0;
        self.compactions += 1;
        Ok(())
    }

    /// Bytes currently in the WAL (0 when ephemeral or just compacted).
    pub fn wal_len(&self) -> u64 {
        self.wal.as_ref().map(Wal::len).unwrap_or(0)
    }

    /// Install an automatic compaction policy (see [`CompactionPolicy`]).
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// The active automatic compaction policy.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Effective commits since the last snapshot write.
    pub fn commits_since_snapshot(&self) -> u64 {
        self.commits_since_snapshot
    }

    /// Snapshot folds performed by this instance (manual or automatic).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

/// Serialise every triple in N-Triples syntax (the interchange format
/// the E-w7 cold-rebuild benchmark parses back in).
pub fn export_ntriples(store: &TripleStore) -> String {
    let mut out = String::new();
    for (s, p, o) in store.triples() {
        out.push_str(&s.ntriples());
        out.push(' ');
        out.push_str(&p.ntriples());
        out.push(' ');
        out.push_str(&o.ntriples());
        out.push_str(" .\n");
    }
    out
}

/// Parse N-Triples text (the subset [`export_ntriples`] emits: IRIs and
/// quoted literals with optional `^^<datatype>`) into a store.
/// Returns the number of triple lines parsed.
pub fn load_ntriples(store: &mut TripleStore, text: &str) -> io::Result<usize> {
    let mut n = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut pos = 0;
        let s = parse_nt_term(line, &mut pos)
            .ok_or_else(|| nt_err(lineno, "bad subject"))?;
        let p = parse_nt_term(line, &mut pos)
            .ok_or_else(|| nt_err(lineno, "bad predicate"))?;
        let o = parse_nt_term(line, &mut pos)
            .ok_or_else(|| nt_err(lineno, "bad object"))?;
        let rest = line[pos..].trim();
        if rest != "." {
            return Err(nt_err(lineno, "missing terminating '.'"));
        }
        store.insert(&s, &p, &o);
        n += 1;
    }
    Ok(n)
}

fn nt_err(lineno: usize, msg: &str) -> io::Error {
    encode::bad_data(&format!("N-Triples line {}: {msg}", lineno + 1))
}

/// Parse one term starting at `*pos` (after skipping spaces).
fn parse_nt_term(line: &str, pos: &mut usize) -> Option<Term> {
    let bytes = line.as_bytes();
    while *pos < bytes.len() && bytes[*pos] == b' ' {
        *pos += 1;
    }
    match bytes.get(*pos)? {
        b'<' => {
            let end = line[*pos..].find('>')? + *pos;
            let iri = line[*pos + 1..end].to_string();
            *pos = end + 1;
            Some(Term::Iri(iri))
        }
        b'"' => {
            // Rust-debug-style escapes, matching `Term::ntriples`.
            let mut lexical = String::new();
            let mut i = *pos + 1;
            loop {
                match *bytes.get(i)? {
                    b'"' => break,
                    b'\\' => {
                        i += 1;
                        match *bytes.get(i)? {
                            b'n' => lexical.push('\n'),
                            b't' => lexical.push('\t'),
                            b'r' => lexical.push('\r'),
                            b'0' => lexical.push('\0'),
                            b'u' => {
                                // \u{hex}
                                if bytes.get(i + 1) != Some(&b'{') {
                                    return None;
                                }
                                let close = line[i..].find('}')? + i;
                                let cp = u32::from_str_radix(&line[i + 2..close], 16).ok()?;
                                lexical.push(char::from_u32(cp)?);
                                i = close;
                            }
                            other => lexical.push(other as char),
                        }
                        i += 1;
                    }
                    _ => {
                        let c = line[i..].chars().next()?;
                        lexical.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            *pos = i + 1;
            let datatype = if line[*pos..].starts_with("^^<") {
                let end = line[*pos..].find('>')? + *pos;
                let dt = line[*pos + 3..end].to_string();
                *pos = end + 1;
                dt
            } else {
                XSD_STRING.to_string()
            };
            Some(Term::Literal { lexical, datatype })
        }
        _ => None,
    }
}

/// A unique scratch directory under the system temp dir, for tests and
/// benchmarks (the caller removes it).
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "ee-store-{tag}-{}-{n}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
pub(crate) use scratch_dir as test_dir;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_update;

    fn e(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn upd(src: &str) -> crate::parser::Update {
        parse_update(&format!("PREFIX e: <http://e/> {src}")).unwrap()
    }

    #[test]
    fn open_commit_reopen_round_trips() {
        let dir = test_dir("open-commit");
        {
            let mut st = Store::open_with(&dir, Durability::Sync).unwrap();
            assert_eq!(st.generation(), 0);
            let stats = st
                .commit(&upd("INSERT DATA { e:a e:p e:b . e:a e:p e:c }"))
                .unwrap();
            assert_eq!(stats.generation, 1);
            assert_eq!(stats.inserted, 2);
            assert!(stats.wal_bytes > 0);
            st.commit(&upd("DELETE DATA { e:a e:p e:b }")).unwrap();
            assert_eq!(st.generation(), 2);
        }
        let st = Store::open_with(&dir, Durability::Sync).unwrap();
        assert_eq!(st.generation(), 2);
        assert_eq!(st.len(), 1);
        assert!(st.contains(&e("a"), &e("p"), &e("c")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn noop_commit_does_not_bump_generation() {
        let dir = test_dir("noop-commit");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        st.commit(&upd("INSERT DATA { e:a e:p e:b }")).unwrap();
        let before = st.generation();
        let wal_before = st.wal_len();
        // Insert of a present triple + delete of an absent one: no-op.
        let stats = st
            .commit(&upd("INSERT DATA { e:a e:p e:b } ; DELETE DATA { e:x e:p e:y }"))
            .unwrap();
        assert_eq!(stats.generation, before);
        assert_eq!((stats.inserted, stats.deleted), (0, 0));
        assert_eq!(st.wal_len(), wal_before, "no WAL record for no-ops");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_wal_and_reopens_identically() {
        let dir = test_dir("compact");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        for i in 0..10 {
            st.commit(&upd(&format!("INSERT DATA {{ e:s{i} e:p e:o }}")))
                .unwrap();
        }
        st.commit(&upd("DELETE WHERE { e:s3 ?p ?o }")).unwrap();
        let gen = st.generation();
        let triples: Vec<String> = {
            let mut v: Vec<String> = st
                .triples()
                .map(|(s, p, o)| format!("{} {} {}", s.ntriples(), p.ntriples(), o.ntriples()))
                .collect();
            v.sort();
            v
        };
        st.compact().unwrap();
        assert_eq!(st.wal_len(), 0);
        // Commits keep working after compaction.
        st.commit(&upd("INSERT DATA { e:post e:p e:o }")).unwrap();
        assert_eq!(st.generation(), gen + 1);
        drop(st);
        let st = Store::open_with(&dir, Durability::NoSync).unwrap();
        assert_eq!(st.generation(), gen + 1);
        let mut got: Vec<String> = st
            .triples()
            .map(|(s, p, o)| format!("{} {} {}", s.ntriples(), p.ntriples(), o.ntriples()))
            .collect();
        got.sort();
        let mut want = triples;
        want.push(format!(
            "{} {} {}",
            e("post").ntriples(),
            e("p").ntriples(),
            e("o").ntriples()
        ));
        want.sort();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_count_policy_triggers_automatic_compaction() {
        let dir = test_dir("auto-compact-commits");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        st.set_compaction_policy(CompactionPolicy {
            max_wal_bytes: None,
            max_commits: Some(3),
        });
        for i in 0..2 {
            st.commit(&upd(&format!("INSERT DATA {{ e:s{i} e:p e:o }}")))
                .unwrap();
        }
        assert_eq!(st.compactions(), 0);
        assert!(st.wal_len() > 0);
        st.commit(&upd("INSERT DATA { e:s2 e:p e:o }")).unwrap();
        // Third effective commit crossed the threshold: the WAL folded.
        assert_eq!(st.compactions(), 1);
        assert_eq!(st.wal_len(), 0);
        assert_eq!(st.commits_since_snapshot(), 0);
        let gen = st.generation();
        drop(st);
        let st = Store::open_with(&dir, Durability::NoSync).unwrap();
        assert_eq!(st.generation(), gen);
        assert_eq!(st.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_byte_policy_triggers_automatic_compaction() {
        let dir = test_dir("auto-compact-bytes");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        st.set_compaction_policy(CompactionPolicy {
            max_wal_bytes: Some(256),
            max_commits: None,
        });
        let mut compacted = false;
        for i in 0..50 {
            st.commit(&upd(&format!(
                "INSERT DATA {{ e:subject-{i} e:predicate e:object-{i} }}"
            )))
            .unwrap();
            assert!(
                st.wal_len() <= 256 + 512,
                "WAL must stay near the byte cap (one record of slack)"
            );
            compacted |= st.compactions() > 0;
        }
        assert!(compacted, "50 commits must cross a 256-byte WAL cap");
        drop(st);
        let st = Store::open_with(&dir, Durability::NoSync).unwrap();
        assert_eq!(st.len(), 50);
        assert_eq!(st.generation(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_policy_from_env_parses_and_defaults() {
        // Not set in the test environment → both triggers off.
        let p = CompactionPolicy::disabled();
        assert!(!p.should_compact(u64::MAX, u64::MAX));
        let p = CompactionPolicy {
            max_wal_bytes: Some(100),
            max_commits: Some(5),
        };
        assert!(!p.should_compact(100, 4));
        assert!(p.should_compact(101, 0));
        assert!(p.should_compact(0, 5));
    }

    #[test]
    fn ephemeral_store_commits_without_disk() {
        let mut st = Store::ephemeral(TripleStore::new(IndexMode::Full));
        let stats = st.commit(&upd("INSERT DATA { e:a e:p e:b }")).unwrap();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.wal_bytes, 0);
        assert!(st.dir().is_none());
        assert_eq!(st.wal_len(), 0);
    }

    #[test]
    fn bulk_load_builds_snapshot_without_wal_records() {
        let dir = test_dir("bulk");
        let triples: Vec<GroundTriple> = (0..5000)
            .map(|i| (e(&format!("s{i}")), e("p"), Term::integer(i)))
            .collect();
        let (st, stats) =
            Store::bulk_load(&dir, IndexMode::Full, triples, Durability::NoSync, None).unwrap();
        assert_eq!(stats.triples, 5000);
        assert!(stats.triples_per_sec > 0.0);
        assert_eq!(st.wal_len(), 0, "bulk load must not write per-triple WAL");
        drop(st);
        let st = Store::open_with(&dir, Durability::NoSync).unwrap();
        assert_eq!(st.len(), 5000);
        assert_eq!(st.generation(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_spec_validates_and_partitions() {
        assert!(ShardSpec::try_new(0, 0).is_none());
        assert!(ShardSpec::try_new(2, 2).is_none());
        assert!(ShardSpec::try_new(1, 2).is_some());
        // Every subject is owned by exactly one shard, and ownership
        // agrees across independently-built specs.
        let count = 4;
        let specs: Vec<ShardSpec> = (0..count).map(|i| ShardSpec::new(i, count)).collect();
        for i in 0..500 {
            let s = e(&format!("f{i}"));
            let owners: Vec<usize> = (0..count).filter(|&k| specs[k].accepts(&s)).collect();
            assert_eq!(owners.len(), 1, "subject owned by exactly one shard");
            assert_eq!(owners[0], specs[0].owner(&s));
        }
    }

    #[test]
    fn sharded_bulk_loads_partition_the_dataset() {
        let count = 3;
        let n = 2000;
        let triples = |_: usize| -> Vec<GroundTriple> {
            (0..n)
                .map(|i| (e(&format!("s{i}")), e("p"), Term::integer(i)))
                .collect()
        };
        let mut total = 0;
        let mut stores = Vec::new();
        for k in 0..count {
            let dir = test_dir(&format!("bulk-shard-{k}"));
            let spec = ShardSpec::new(k, count);
            let (st, stats) =
                Store::bulk_load(&dir, IndexMode::Full, triples(k), Durability::NoSync, Some(&spec))
                    .unwrap();
            assert_eq!(st.len(), stats.triples);
            assert!(st.len() < n as usize, "a shard holds a strict slice");
            total += st.len();
            stores.push((st, spec, dir));
        }
        assert_eq!(total, n as usize, "slices are disjoint and exhaustive");
        // Each shard holds exactly the subjects its spec accepts.
        for (st, spec, dir) in &stores {
            for (s, _, _) in st.triples() {
                assert!(spec.accepts(s));
            }
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    #[test]
    fn spatial_candidates_survive_reopen() {
        let dir = test_dir("spatial-reopen");
        {
            let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
            st.commit(&upd(
                "INSERT DATA { e:f e:geo \"POINT (5 5)\"^^<http://www.opengis.net/ont/geosparql#wktLiteral> }",
            ))
            .unwrap();
        }
        let st = Store::open_with(&dir, Durability::NoSync).unwrap();
        let hits = st
            .spatial_candidates(&ee_geo::Envelope::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert_eq!(hits.len(), 1, "R-tree rebuilt from replayed triples");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every triple visible through the store (or a rewound view of it),
    /// as sorted N-Triples lines — id-independent, so states of
    /// different store instances compare directly.
    fn visible(st: &TripleStore, novelty: Option<&Novelty>) -> Vec<String> {
        let view = match novelty {
            Some(n) => crate::StoreView::with_novelty(st, n),
            None => crate::StoreView::from(st),
        };
        let mut out: Vec<String> = view
            .id_triples_sorted()
            .into_iter()
            .map(|(s, p, o)| {
                format!(
                    "{} {} {}",
                    view.dict().term(s).ntriples(),
                    view.dict().term(p).ntriples(),
                    view.dict().term(o).ntriples()
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn commit_ids_chain_deterministically() {
        let updates = [
            "INSERT DATA { e:a e:p e:b . e:a e:p e:c }",
            "DELETE DATA { e:a e:p e:b }",
            "INSERT DATA { e:d e:p e:e }",
        ];
        let run = |mut st: Store| -> (Vec<u64>, Store) {
            let ids = updates
                .iter()
                .map(|u| {
                    st.commit(&upd(u)).unwrap();
                    st.head_commit()
                })
                .collect();
            (ids, st)
        };
        let dir = test_dir("chain-durable");
        let (durable_ids, durable) = run(Store::open_with(&dir, Durability::NoSync).unwrap());
        let (ephemeral_ids, _) = run(Store::ephemeral(TripleStore::new(IndexMode::Full)));
        // Same commit sequence → same chain, with or without a disk.
        assert_eq!(durable_ids, ephemeral_ids);
        assert_eq!(durable_ids.len(), 3);
        let mut uniq = durable_ids.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "each commit gets a distinct id");
        for id in &durable_ids {
            assert!(durable.commit_known(*id));
        }
        assert!(durable.commit_known(ROOT_COMMIT_ID));
        assert!(!durable.commit_known(0xdead_beef));
        drop(durable);
        let st = Store::open_with(&dir, Durability::NoSync).unwrap();
        let reopened: Vec<u64> = st.history().iter().map(|r| r.id).collect();
        assert_eq!(reopened, durable_ids, "ids survive reopen");
        assert_eq!(st.head_commit(), *durable_ids.last().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn as_of_views_match_replayed_stores() {
        let updates = [
            "INSERT DATA { e:a e:p e:b . e:a e:p e:c . e:x e:q e:y }",
            "DELETE DATA { e:a e:p e:b } ; INSERT DATA { e:a e:p e:d }",
            "DELETE WHERE { e:a ?p ?o }",
            "INSERT DATA { e:a e:p e:b . e:z e:q \"POINT (2 2)\"^^<http://www.opengis.net/ont/geosparql#wktLiteral> }",
            "DELETE DATA { e:x e:q e:y }",
        ];
        let mut st = Store::ephemeral(TripleStore::new(IndexMode::Full));
        let mut ids = vec![ROOT_COMMIT_ID];
        for u in &updates {
            st.commit(&upd(u)).unwrap();
            ids.push(st.head_commit());
        }
        for (k, id) in ids.iter().enumerate() {
            // Reference: a fresh store replayed through the first k
            // commits, queried at head.
            let mut reference = Store::ephemeral(TripleStore::new(IndexMode::Full));
            for u in &updates[..k] {
                reference.commit(&upd(u)).unwrap();
            }
            let novelty = st.as_of(*id).expect("known commit");
            assert_eq!(
                visible(&st, Some(&novelty)),
                visible(&reference, None),
                "as_of commit #{k} must equal replay-to-{k}"
            );
        }
        assert!(st.as_of(0x1234_5678).is_none(), "unknown id");
        // The head view is transparent (no overlay work).
        assert!(st.as_of(st.head_commit()).unwrap().is_empty());
    }

    #[test]
    fn as_of_resurrects_triples_folded_away_by_compaction() {
        let dir = test_dir("asof-resurrect");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        st.commit(&upd("INSERT DATA { e:a e:p \"only-in-history\" }"))
            .unwrap();
        let before_delete = st.head_commit();
        st.commit(&upd("DELETE DATA { e:a e:p \"only-in-history\" }"))
            .unwrap();
        st.compact().unwrap();
        drop(st);
        // After compaction + reopen the triple is in no snapshot segment
        // and no WAL record: only the commit log still knows it.
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        assert!(visible(&st, None).is_empty());
        let novelty = st.as_of(before_delete).unwrap();
        let rows = visible(&st, Some(&novelty));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].contains("only-in-history"), "{rows:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_history_survives_compaction_and_reopen() {
        let dir = test_dir("history-compact");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        for i in 0..6 {
            st.commit(&upd(&format!("INSERT DATA {{ e:s{i} e:p e:o{i} }}")))
                .unwrap();
        }
        let mid = st.history()[2].id;
        let mid_rows = {
            let n = st.as_of(mid).unwrap();
            visible(&st, Some(&n))
        };
        let ids: Vec<u64> = st.history().iter().map(|r| r.id).collect();
        st.compact().unwrap();
        st.commit(&upd("INSERT DATA { e:post e:p e:o }")).unwrap();
        drop(st);
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        let reopened: Vec<u64> = st.history().iter().map(|r| r.id).collect();
        assert_eq!(&reopened[..ids.len()], &ids[..], "pre-compaction history intact");
        assert_eq!(reopened.len(), ids.len() + 1);
        let n = st.as_of(mid).unwrap();
        assert_eq!(visible(&st, Some(&n)), mid_rows, "as-of crosses compaction");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The commit-log sibling of `wal::tests::torn_tail_is_truncated_on_open`,
    /// extended to the recovery contract: tear `commits.log` at **every**
    /// byte boundary and the reopened store must re-derive the lost
    /// records from the WAL bit-identically — same head commit id, same
    /// history ids, same `as_of` views.
    #[test]
    fn torn_commit_log_recovers_bit_identically_at_every_byte() {
        let dir = test_dir("torn-commitlog");
        let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
        st.commit(&upd("INSERT DATA { e:a e:p e:b . e:a e:p e:c }"))
            .unwrap();
        st.commit(&upd("DELETE DATA { e:a e:p e:b } ; INSERT DATA { e:d e:p e:e }"))
            .unwrap();
        st.commit(&upd("INSERT DATA { e:f e:p e:g }")).unwrap();
        let ids: Vec<u64> = st.history().iter().map(|r| r.id).collect();
        let head = st.head_commit();
        let views: Vec<Vec<String>> = ids
            .iter()
            .map(|id| {
                let n = st.as_of(*id).unwrap();
                visible(&st, Some(&n))
            })
            .collect();
        drop(st);
        let path = dir.join(commitlog::COMMITS_FILE);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut st = Store::open_with(&dir, Durability::NoSync).unwrap();
            assert_eq!(st.head_commit(), head, "cut at {cut}");
            let reopened: Vec<u64> = st.history().iter().map(|r| r.id).collect();
            assert_eq!(reopened, ids, "cut at {cut}");
            for (id, want) in ids.iter().zip(&views) {
                let n = st.as_of(*id).unwrap();
                assert_eq!(&visible(&st, Some(&n)), want, "cut at {cut}");
            }
            assert_eq!(
                std::fs::read(&path).unwrap(),
                full,
                "recovery must rewrite the exact bytes (cut {cut})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ntriples_export_import_round_trips() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("p"), &Term::string("line\nbreak \"quoted\" \\slash"));
        st.insert(&e("a"), &e("v"), &Term::integer(-5));
        st.insert(&e("a"), &e("g"), &Term::wkt("POINT (1 2)"));
        let text = export_ntriples(&st);
        let mut back = TripleStore::new(IndexMode::Full);
        assert_eq!(load_ntriples(&mut back, &text).unwrap(), 3);
        for (s, p, o) in st.triples() {
            assert!(back.contains(s, p, o), "{} missing", o.ntriples());
        }
    }
}
