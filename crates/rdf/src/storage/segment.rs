//! Snapshot building blocks: dictionary blocks and triple segments.
//!
//! A **dictionary block** holds a contiguous run of terms in id order —
//! ids are implicit (the reader assigns them by position), which works
//! because [`crate::dict::Dictionary`] ids are dense, append-only and
//! never reclaimed.
//!
//! A **triple segment** holds a run of id-triples sorted in SPO order,
//! delta-encoded: the subject is stored as a delta against the previous
//! triple's subject (non-negative by sort order), predicate and object
//! as raw uvarints. Sorting is what makes the deltas small and lets a
//! future reader binary-search segment boundaries.

use super::encode::{bad_data, get_term, get_uvarint, put_term, put_uvarint};
use crate::store::IdTriple;
use crate::term::Term;
use std::io;

/// Terms per dictionary record.
pub const DICT_CHUNK: usize = 4096;
/// Triples per segment record.
pub const TRIPLE_CHUNK: usize = 8192;

/// Encode one dictionary block (terms in id order).
pub fn encode_dict_block(terms: &[&Term]) -> Vec<u8> {
    let mut out = Vec::with_capacity(terms.len() * 16);
    put_uvarint(&mut out, terms.len() as u64);
    for t in terms {
        put_term(&mut out, t);
    }
    out
}

/// Decode a dictionary block.
pub fn decode_dict_block(payload: &[u8]) -> io::Result<Vec<Term>> {
    let mut pos = 0;
    let n = get_uvarint(payload, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_term(payload, &mut pos)?);
    }
    if pos != payload.len() {
        return Err(bad_data("trailing bytes in dictionary block"));
    }
    Ok(out)
}

/// Encode one triple segment. `triples` must be sorted ascending (SPO)
/// and `prev_s` is the subject id of the last triple of the previous
/// segment (0 for the first).
pub fn encode_triple_segment(triples: &[IdTriple], prev_s: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(triples.len() * 6);
    put_uvarint(&mut out, triples.len() as u64);
    let mut last_s = prev_s;
    for &(s, p, o) in triples {
        debug_assert!(s >= last_s, "triple segments must be SPO-sorted");
        put_uvarint(&mut out, s - last_s);
        put_uvarint(&mut out, p);
        put_uvarint(&mut out, o);
        last_s = s;
    }
    out
}

/// Decode a triple segment into `out`, returning the last subject id
/// (the next segment's delta base).
pub fn decode_triple_segment(
    payload: &[u8],
    prev_s: u64,
    out: &mut Vec<IdTriple>,
) -> io::Result<u64> {
    let mut pos = 0;
    let n = get_uvarint(payload, &mut pos)? as usize;
    out.reserve(n);
    let mut last_s = prev_s;
    for _ in 0..n {
        last_s += get_uvarint(payload, &mut pos)?;
        let p = get_uvarint(payload, &mut pos)?;
        let o = get_uvarint(payload, &mut pos)?;
        out.push((last_s, p, o));
    }
    if pos != payload.len() {
        return Err(bad_data("trailing bytes in triple segment"));
    }
    Ok(last_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_block_round_trips() {
        let terms: Vec<Term> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    Term::iri(format!("http://e/{i}"))
                } else {
                    Term::integer(i)
                }
            })
            .collect();
        let refs: Vec<&Term> = terms.iter().collect();
        let back = decode_dict_block(&encode_dict_block(&refs)).unwrap();
        assert_eq!(back, terms);
    }

    #[test]
    fn triple_segments_round_trip_across_chunks() {
        let mut triples: Vec<IdTriple> = (0..1000u64).map(|i| (i / 3, i % 7, i)).collect();
        triples.sort_unstable();
        let mut prev_s = 0;
        let mut encoded = Vec::new();
        for chunk in triples.chunks(137) {
            encoded.push(encode_triple_segment(chunk, prev_s));
            prev_s = chunk.last().unwrap().0;
        }
        let mut back = Vec::new();
        let mut base = 0;
        for seg in &encoded {
            base = decode_triple_segment(seg, base, &mut back).unwrap();
        }
        assert_eq!(back, triples);
    }
}
