//! Snapshot files: a complete store image at one generation.
//!
//! ```text
//! record 0           header: "EESNAP01" magic, index mode, generation,
//!                    term count, triple count
//! records 1..=D      dictionary blocks (terms in id order, DICT_CHUNK each)
//! records D+1..=D+S  triple segments (SPO-sorted, TRIPLE_CHUNK each)
//! ```
//!
//! Snapshots are immutable once published: the writer streams to
//! `snapshot.tmp`, fsyncs, then renames over `snapshot.bin` and fsyncs
//! the directory — a crash mid-write leaves the previous snapshot (or
//! none) fully intact, never a half-written one. Any torn or corrupt
//! record while *reading* is therefore a hard error, unlike the WAL
//! where a torn tail is expected after a crash.

use super::encode::{bad_data, get_uvarint, put_uvarint, write_record, RecordOutcome, RecordReader};
use super::segment::{
    decode_dict_block, decode_triple_segment, encode_dict_block, encode_triple_segment,
    DICT_CHUNK, TRIPLE_CHUNK,
};
use crate::store::{IdTriple, IndexMode, TripleStore};
use crate::term::Term;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EESNAP01";

/// Published snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// A decoded snapshot: everything needed to rebuild a store.
pub struct SnapshotData {
    /// Index mode the store was built with.
    pub mode: IndexMode,
    /// Generation the snapshot captures.
    pub generation: u64,
    /// All terms, position = dictionary id.
    pub terms: Vec<Term>,
    /// All triples, SPO-sorted.
    pub triples: Vec<IdTriple>,
}

fn mode_byte(mode: IndexMode) -> u8 {
    match mode {
        IndexMode::Full => 0,
        IndexMode::NoPushdown => 1,
        IndexMode::Scan => 2,
    }
}

fn byte_mode(b: u8) -> io::Result<IndexMode> {
    match b {
        0 => Ok(IndexMode::Full),
        1 => Ok(IndexMode::NoPushdown),
        2 => Ok(IndexMode::Scan),
        other => Err(bad_data(&format!("unknown index mode byte {other}"))),
    }
}

/// Write a snapshot of `store` at `generation` into `dir`, atomically
/// replacing any previous one.
pub fn write_snapshot(dir: &Path, store: &TripleStore, generation: u64) -> io::Result<()> {
    let tmp_path = dir.join(SNAPSHOT_TMP);
    let final_path = dir.join(SNAPSHOT_FILE);
    {
        let file = File::create(&tmp_path)?;
        let mut w = BufWriter::new(file);

        let n_terms = store.dict.len();
        let mut triples: Vec<IdTriple> = store.id_triples().to_vec();
        triples.sort_unstable();

        let mut header = Vec::with_capacity(32);
        header.extend_from_slice(MAGIC);
        header.push(mode_byte(store.mode()));
        put_uvarint(&mut header, generation);
        put_uvarint(&mut header, n_terms as u64);
        put_uvarint(&mut header, triples.len() as u64);
        write_record(&mut w, &header)?;

        let mut block: Vec<&Term> = Vec::with_capacity(DICT_CHUNK);
        for id in 0..n_terms as u64 {
            block.push(store.dict.term(id));
            if block.len() == DICT_CHUNK {
                write_record(&mut w, &encode_dict_block(&block))?;
                block.clear();
            }
        }
        if !block.is_empty() {
            write_record(&mut w, &encode_dict_block(&block))?;
        }

        let mut prev_s = 0;
        for chunk in triples.chunks(TRIPLE_CHUNK) {
            write_record(&mut w, &encode_triple_segment(chunk, prev_s))?;
            prev_s = chunk.last().unwrap().0;
        }

        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    // Persist the rename itself (directory metadata).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read and verify a snapshot file.
pub fn read_snapshot(path: &Path) -> io::Result<SnapshotData> {
    let mut r = RecordReader::new(BufReader::new(File::open(path)?));
    let header = must_record(&mut r, "snapshot header")?;
    if header.len() < 9 || &header[..8] != MAGIC {
        return Err(bad_data("not a snapshot file (bad magic)"));
    }
    let mode = byte_mode(header[8])?;
    let mut pos = 9;
    let generation = get_uvarint(&header, &mut pos)?;
    let n_terms = get_uvarint(&header, &mut pos)? as usize;
    let n_triples = get_uvarint(&header, &mut pos)? as usize;

    let mut terms = Vec::with_capacity(n_terms);
    while terms.len() < n_terms {
        let block = must_record(&mut r, "dictionary block")?;
        terms.extend(decode_dict_block(&block)?);
    }
    if terms.len() != n_terms {
        return Err(bad_data("dictionary block overshoots declared term count"));
    }

    let mut triples = Vec::with_capacity(n_triples);
    let mut prev_s = 0;
    while triples.len() < n_triples {
        let seg = must_record(&mut r, "triple segment")?;
        prev_s = decode_triple_segment(&seg, prev_s, &mut triples)?;
    }
    if triples.len() != n_triples {
        return Err(bad_data("triple segment overshoots declared count"));
    }
    match r.next_record()? {
        RecordOutcome::Eof => {}
        _ => return Err(bad_data("trailing records after snapshot body")),
    }
    Ok(SnapshotData {
        mode,
        generation,
        terms,
        triples,
    })
}

fn must_record<R: io::Read>(r: &mut RecordReader<R>, what: &str) -> io::Result<Vec<u8>> {
    match r.next_record()? {
        RecordOutcome::Record(p) => Ok(p),
        _ => Err(bad_data(&format!("snapshot truncated or corrupt in {what}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::test_dir;

    fn sample_store() -> TripleStore {
        let mut st = TripleStore::new(IndexMode::Full);
        for i in 0..5000u64 {
            st.insert(
                &Term::iri(format!("http://e/f{i}")),
                &Term::iri("http://e/v"),
                &Term::integer(i as i64 % 97),
            );
        }
        st.insert(
            &Term::iri("http://e/g"),
            &Term::iri("http://e/geo"),
            &Term::wkt("POINT (4 4)"),
        );
        st
    }

    #[test]
    fn snapshot_round_trips_multi_chunk_store() {
        let dir = test_dir("snap-roundtrip");
        let st = sample_store();
        write_snapshot(&dir, &st, 7).unwrap();
        let data = read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(data.generation, 7);
        assert_eq!(data.mode, IndexMode::Full);
        assert_eq!(data.terms.len(), st.dict.len());
        assert_eq!(data.triples.len(), st.len());
        let mut want: Vec<IdTriple> = st.id_triples().to_vec();
        want.sort_unstable();
        assert_eq!(data.triples, want);
        // Term ids are positional: term 0 decodes to the first interned term.
        for id in 0..data.terms.len() as u64 {
            assert_eq!(&data.terms[id as usize], st.dict.term(id));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = test_dir("snap-corrupt");
        write_snapshot(&dir, &sample_store(), 1).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
