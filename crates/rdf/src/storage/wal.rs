//! The write-ahead log: one checksummed record per commit.
//!
//! ```text
//! commit payload := uvarint generation
//!                   uvarint n_delete, n_delete × (term term term)
//!                   uvarint n_insert, n_insert × (term term term)
//! ```
//!
//! Commits log **terms, not dictionary ids**: replay re-interns against
//! whatever dictionary the snapshot produced, so a WAL written before a
//! compaction (or against an older snapshot) stays meaningful. Deltas
//! are stored delete-first, matching application order.
//!
//! Recovery contract: [`Wal::open`] replays every complete record and
//! **truncates** a torn tail in place (a crash mid-`append` leaves
//! either the whole record or nothing). Fsync on append is the default;
//! `Durability::NoSync` skips it for tests and benchmarks on slow disks
//! (`EE_WAL_NO_SYNC=1` — test-only, a power loss may then lose the last
//! commits, though never corrupt the store).

use super::encode::{
    bad_data, get_term, get_uvarint, put_term, put_uvarint, write_record, RecordOutcome,
    RecordReader,
};
use crate::update::GroundTriple;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Whether appends fsync before a commit is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// `fdatasync` every commit record (the default).
    Sync,
    /// Skip fsync — test/bench only; a torn tail is still recovered,
    /// but acknowledged commits may be lost on power failure.
    NoSync,
}

impl Durability {
    /// Resolve the default from `EE_WAL_NO_SYNC` (test-only escape
    /// hatch; anything non-empty and not `0` disables fsync).
    pub fn from_env() -> Self {
        match std::env::var("EE_WAL_NO_SYNC") {
            Ok(v) if !v.is_empty() && v != "0" => Durability::NoSync,
            _ => Durability::Sync,
        }
    }
}

/// One logged commit.
#[derive(Debug, Clone, PartialEq)]
pub struct WalCommit {
    /// Generation this commit produced.
    pub generation: u64,
    /// Triples removed (applied first).
    pub delete: Vec<GroundTriple>,
    /// Triples added.
    pub insert: Vec<GroundTriple>,
}

pub(crate) fn encode_commit(c: &WalCommit) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_uvarint(&mut out, c.generation);
    put_uvarint(&mut out, c.delete.len() as u64);
    for (s, p, o) in &c.delete {
        put_term(&mut out, s);
        put_term(&mut out, p);
        put_term(&mut out, o);
    }
    put_uvarint(&mut out, c.insert.len() as u64);
    for (s, p, o) in &c.insert {
        put_term(&mut out, s);
        put_term(&mut out, p);
        put_term(&mut out, o);
    }
    out
}

pub(crate) fn decode_commit(payload: &[u8]) -> io::Result<WalCommit> {
    let mut pos = 0;
    let generation = get_uvarint(payload, &mut pos)?;
    let read_triples = |pos: &mut usize| -> io::Result<Vec<GroundTriple>> {
        let n = get_uvarint(payload, pos)? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let s = get_term(payload, pos)?;
            let p = get_term(payload, pos)?;
            let o = get_term(payload, pos)?;
            out.push((s, p, o));
        }
        Ok(out)
    };
    let delete = read_triples(&mut pos)?;
    let insert = read_triples(&mut pos)?;
    if pos != payload.len() {
        return Err(bad_data("trailing bytes in WAL commit"));
    }
    Ok(WalCommit {
        generation,
        delete,
        insert,
    })
}

/// An open write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    durability: Durability,
    /// Bytes of clean records currently in the file.
    len: u64,
}

impl Wal {
    /// Open (creating if absent) the WAL in `dir`, replaying every
    /// complete commit and truncating any torn tail. Returns the log
    /// handle plus the replayed commits in append order.
    pub fn open(dir: &Path, durability: Durability) -> io::Result<(Wal, Vec<WalCommit>)> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Existing bytes are the commit history: replay them, never
            // truncate here (torn tails are trimmed after replay).
            .truncate(false)
            .open(&path)?;
        let mut commits = Vec::new();
        let mut reader = RecordReader::new(BufReader::new(&file));
        let valid_len = loop {
            match reader.next_record()? {
                RecordOutcome::Record(payload) => commits.push(decode_commit(&payload)?),
                RecordOutcome::Eof => break reader.valid_len(),
                RecordOutcome::Torn { valid_len } => break valid_len,
            }
        };
        let mut wal = Wal {
            file,
            path,
            durability,
            len: valid_len,
        };
        let disk_len = wal.file.metadata()?.len();
        if disk_len != valid_len {
            // Drop the torn tail so future appends start on a clean
            // record boundary.
            wal.file.set_len(valid_len)?;
            wal.file.sync_all()?;
        }
        wal.file.seek(SeekFrom::Start(valid_len))?;
        Ok((wal, commits))
    }

    /// Append one commit record; returns its on-disk size in bytes.
    /// With [`Durability::Sync`] the record is fdatasync'd before
    /// returning — the commit is durable once this call succeeds.
    pub fn append(&mut self, commit: &WalCommit) -> io::Result<u64> {
        let payload = encode_commit(commit);
        let mut framed = Vec::with_capacity(payload.len() + 12);
        write_record(&mut framed, &payload)?;
        self.file.write_all(&framed)?;
        if self.durability == Durability::Sync {
            self.file.sync_data()?;
        }
        self.len += framed.len() as u64;
        Ok(framed.len() as u64)
    }

    /// Current clean length in bytes (for tests and truncation fuzzing).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no commits are logged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every record (after a successful compaction folded them
    /// into a fresh snapshot).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::test_dir;
    use crate::term::Term;

    fn commit(generation: u64, n: usize) -> WalCommit {
        WalCommit {
            generation,
            delete: (0..n / 2)
                .map(|i| {
                    (
                        Term::iri(format!("http://e/d{i}")),
                        Term::iri("http://e/p"),
                        Term::integer(i as i64),
                    )
                })
                .collect(),
            insert: (0..n)
                .map(|i| {
                    (
                        Term::iri(format!("http://e/s{i}")),
                        Term::iri("http://e/p"),
                        Term::string(format!("v{i}")),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let dir = test_dir("wal-roundtrip");
        let commits: Vec<WalCommit> = (1..=5).map(|g| commit(g, g as usize * 2)).collect();
        {
            let (mut wal, replayed) = Wal::open(&dir, Durability::NoSync).unwrap();
            assert!(replayed.is_empty());
            for c in &commits {
                wal.append(c).unwrap();
            }
        }
        let (wal, replayed) = Wal::open(&dir, Durability::NoSync).unwrap();
        assert_eq!(replayed, commits);
        assert_eq!(wal.len(), std::fs::metadata(wal.path()).unwrap().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = test_dir("wal-torn");
        let keep = commit(1, 4);
        let torn = commit(2, 6);
        let clean_len;
        {
            let (mut wal, _) = Wal::open(&dir, Durability::NoSync).unwrap();
            wal.append(&keep).unwrap();
            clean_len = wal.len();
            wal.append(&torn).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        for cut in (clean_len as usize)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, replayed) = Wal::open(&dir, Durability::NoSync).unwrap();
            assert_eq!(replayed, vec![keep.clone()], "cut at {cut}");
            assert_eq!(wal.len(), clean_len);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                clean_len,
                "torn tail must be physically truncated (cut {cut})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = test_dir("wal-reset");
        let (mut wal, _) = Wal::open(&dir, Durability::NoSync).unwrap();
        wal.append(&commit(1, 2)).unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(&commit(2, 2)).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir, Durability::NoSync).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].generation, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
