//! The triple store: dictionary-encoded triples in three covering B-tree
//! indexes, plus an R-tree over geometry literals.

use crate::dict::Dictionary;
use crate::term::{Term, Value};
use ee_geo::{Envelope, RTree};
use std::collections::BTreeSet;
use std::ops::Bound;

/// How the store answers triple patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// SPO/POS/OSP indexes + R-tree spatial pushdown (Strabon-style).
    Full,
    /// SPO/POS/OSP indexes but **no** spatial pushdown: spatial filters
    /// are evaluated as plain post-filters. The ablation arm of E2 that
    /// isolates what the R-tree buys on top of the triple indexes.
    NoPushdown,
    /// Linear scan of the triple list, no indexes at all — the naive
    /// baseline of experiments E2/E3.
    Scan,
}

/// A triple of dictionary ids.
pub type IdTriple = (u64, u64, u64);

/// Cardinality estimates are capped here: the planner only needs relative
/// magnitude, and exact counts over huge ranges would make planning O(n)
/// per join step. An estimate equal to the cap means "at least this many".
pub const ESTIMATE_CAP: usize = 1024;

/// The store.
pub struct TripleStore {
    /// Term dictionary (public read access for the evaluator).
    pub dict: Dictionary,
    mode: IndexMode,
    all: Vec<IdTriple>,
    /// Position of every triple in `all`, for O(1) removal (doubles as
    /// the scan-mode dedup set; indexed modes also dedup through `spo`).
    pos_of: std::collections::HashMap<IdTriple, usize>,
    spo: BTreeSet<(u64, u64, u64)>,
    pos: BTreeSet<(u64, u64, u64)>,
    osp: BTreeSet<(u64, u64, u64)>,
    rtree: RTree<u64>,
    pending_spatial: Vec<(Envelope, u64)>,
}

impl TripleStore {
    /// An empty store in the given index mode.
    pub fn new(mode: IndexMode) -> Self {
        Self {
            dict: Dictionary::new(),
            mode,
            all: Vec::new(),
            pos_of: std::collections::HashMap::new(),
            spo: BTreeSet::new(),
            pos: BTreeSet::new(),
            osp: BTreeSet::new(),
            rtree: RTree::new(),
            pending_spatial: Vec::new(),
        }
    }

    /// The index mode.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Insert a triple of terms. Duplicate triples are ignored.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) {
        let si = self.dict.intern(s);
        let pi = self.dict.intern(p);
        let oi = self.dict.intern(o);
        self.insert_ids(si, pi, oi);
    }

    /// Insert a triple of pre-interned ids.
    pub fn insert_ids(&mut self, s: u64, p: u64, o: u64) {
        match self.mode {
            IndexMode::Full | IndexMode::NoPushdown => {
                if !self.spo.insert((s, p, o)) {
                    return;
                }
                self.pos.insert((p, o, s));
                self.osp.insert((o, s, p));
                if self.mode == IndexMode::Full {
                    if let Some(env) = self.dict.envelope_of(o) {
                        // Buffer for bulk-load; ingests pay one STR pack.
                        self.pending_spatial.push((env, o));
                    }
                }
            }
            IndexMode::Scan => {
                if self.pos_of.contains_key(&(s, p, o)) {
                    return;
                }
            }
        }
        self.pos_of.insert((s, p, o), self.all.len());
        self.all.push((s, p, o));
    }

    /// Remove a triple of terms. Returns `true` when the triple was
    /// present. Unknown terms make this a no-op (they cannot appear in
    /// any triple). Dictionary ids are never reclaimed — term ids stay
    /// stable across deletes, which is what keeps on-disk dictionary
    /// blocks and baked query plans valid.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(si), Some(pi), Some(oi)) =
            (self.dict.id_of(s), self.dict.id_of(p), self.dict.id_of(o))
        else {
            return false;
        };
        self.remove_ids(si, pi, oi)
    }

    /// Remove a triple of pre-interned ids; `true` when it was present.
    ///
    /// All three B-tree indexes are updated in place. The R-tree (and the
    /// pending-spatial buffer) deliberately keeps any entry for the
    /// object: spatial candidates are only ever a candidate *superset*,
    /// and rows bind exclusively through B-tree pattern matches, so a
    /// stale geometry id costs one rejected probe, never a wrong answer.
    ///
    /// Cursor invariant: active [`PatternCursor`]s in the indexed modes
    /// resume via an `Excluded(last)` re-seek, so removal of triples
    /// other than the cursor's exact resume key is safe between batches
    /// (removing the resume key itself is also safe — the seek lands on
    /// the next greater key). Scan-mode cursors are positional and are
    /// only valid while the store is unmodified, which the `&mut self`
    /// borrow already enforces within a single query execution.
    pub fn remove_ids(&mut self, s: u64, p: u64, o: u64) -> bool {
        let t = (s, p, o);
        let Some(i) = self.pos_of.remove(&t) else {
            return false;
        };
        // O(1) removal from the insertion-order list; fix up the moved
        // tail entry's recorded position.
        self.all.swap_remove(i);
        if i < self.all.len() {
            self.pos_of.insert(self.all[i], i);
        }
        if matches!(self.mode, IndexMode::Full | IndexMode::NoPushdown) {
            self.spo.remove(&t);
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        true
    }

    /// Bulk-load a strictly-ascending, deduplicated SPO-sorted triple
    /// slice into an **empty** store — the snapshot-open fast path.
    /// Instead of 3n individual B-tree inserts (each paying a root-to-
    /// leaf walk and node splits), the three indexes are built through
    /// `FromIterator`, which packs nodes from sorted runs in one linear
    /// pass. Equivalent to calling [`TripleStore::insert_ids`] per
    /// triple, which the storage tests assert.
    pub fn bulk_load_sorted_ids(&mut self, triples: &[IdTriple]) {
        debug_assert!(self.all.is_empty(), "bulk load requires an empty store");
        debug_assert!(
            triples.windows(2).all(|w| w[0] < w[1]),
            "bulk load input must be strictly ascending SPO"
        );
        if matches!(self.mode, IndexMode::Full | IndexMode::NoPushdown) {
            self.spo = triples.iter().copied().collect();
            self.pos = triples.iter().map(|&(s, p, o)| (p, o, s)).collect();
            self.osp = triples.iter().map(|&(s, p, o)| (o, s, p)).collect();
            if self.mode == IndexMode::Full {
                for &(_, _, o) in triples {
                    if let Some(env) = self.dict.envelope_of(o) {
                        self.pending_spatial.push((env, o));
                    }
                }
            }
        }
        self.all = triples.to_vec();
        self.pos_of.reserve(triples.len());
        self.pos_of
            .extend(triples.iter().enumerate().map(|(i, &t)| (t, i)));
    }

    /// Membership test on pre-interned ids.
    pub fn contains_ids(&self, s: u64, p: u64, o: u64) -> bool {
        self.pos_of.contains_key(&(s, p, o))
    }

    /// Every triple as raw dictionary ids, in insertion order (absent
    /// deletes; a delete swaps the last triple into the hole). The
    /// storage layer encodes snapshots from this.
    pub fn id_triples(&self) -> &[IdTriple] {
        &self.all
    }

    /// Finish an ingest: bulk-(re)load the spatial index from all geometry
    /// objects seen so far. Call after batch inserts; queries also call it
    /// lazily through [`TripleStore::spatial_candidates`] being
    /// conservative (it falls back to pending entries linearly).
    pub fn build_spatial_index(&mut self) {
        if self.pending_spatial.is_empty() {
            return;
        }
        let mut items: Vec<(Envelope, u64)> = Vec::with_capacity(self.rtree.len() + self.pending_spatial.len());
        // Existing entries are re-collected by scanning the dictionary
        // (ids are stable), which avoids keeping a second copy.
        items.append(&mut self.pending_spatial);
        let mut seen: std::collections::HashSet<u64> = items.iter().map(|(_, id)| *id).collect();
        let mut old = Vec::new();
        self.rtree.visit(&Envelope::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::INFINITY), &mut |id| {
            old.push(*id);
        });
        for id in old {
            if seen.insert(id) {
                if let Some(env) = self.dict.envelope_of(id) {
                    items.push((env, id));
                }
            }
        }
        self.rtree = RTree::bulk_load(items);
    }

    /// Geometry-literal ids whose envelope intersects `query` (the spatial
    /// pushdown primitive). `None` when the store cannot prune (scan mode).
    pub fn spatial_candidates(&self, query: &Envelope) -> Option<Vec<u64>> {
        if self.mode != IndexMode::Full {
            return None;
        }
        let mut out: Vec<u64> = self.rtree.search(query).into_iter().copied().collect();
        // Include not-yet-packed entries so correctness never depends on
        // calling build_spatial_index.
        for (env, id) in &self.pending_spatial {
            if env.intersects(query) {
                out.push(*id);
            }
        }
        Some(out)
    }

    /// All triples matching a pattern of optional ids, via the best index
    /// (or a scan in [`IndexMode::Scan`]). The callback returns `false` to
    /// stop early.
    pub fn match_pattern<F: FnMut(IdTriple) -> bool>(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
        f: &mut F,
    ) {
        let mut cursor = PatternCursor::default();
        self.match_pattern_from(s, p, o, &mut cursor, f);
    }

    /// Resumable form of [`match_pattern`]: enumerates matches in the same
    /// order, but a callback returning `false` *pauses* the enumeration
    /// instead of abandoning it — the cursor remembers the pause point and
    /// the next call picks up strictly after the last delivered triple.
    /// Start from `PatternCursor::default()`; [`PatternCursor::is_done`]
    /// reports exhaustion. Resuming a B-tree range is an O(log n) re-seek,
    /// so pulling a total of k matches in batches costs O(k + batches ·
    /// log n) — this is what lets the pipelined executor's index scans
    /// yield a batch at a time without rescanning from the start.
    pub fn match_pattern_from<F: FnMut(IdTriple) -> bool>(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
        cursor: &mut PatternCursor,
        f: &mut F,
    ) {
        if cursor.done {
            return;
        }
        if self.mode == IndexMode::Scan {
            // Scan order is `all` order; the cursor is a plain position.
            while cursor.scan_pos < self.all.len() {
                let (ts, tp, to) = self.all[cursor.scan_pos];
                cursor.scan_pos += 1;
                if s.map(|v| v == ts).unwrap_or(true)
                    && p.map(|v| v == tp).unwrap_or(true)
                    && o.map(|v| v == to).unwrap_or(true)
                    && !f((ts, tp, to))
                {
                    return;
                }
            }
            cursor.done = true;
            return;
        }
        // Indexed modes: resume each B-tree range exclusively after the
        // last delivered triple, mapped into that index's component order.
        let spo_key = |t: IdTriple| (t.0, t.1, t.2);
        let pos_key = |t: IdTriple| (t.1, t.2, t.0);
        let osp_key = |t: IdTriple| (t.2, t.0, t.1);
        let after = cursor.last;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if after.is_none() && self.spo.contains(&(s, p, o)) {
                    f((s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for &(ts, tp, to) in range3_from(&self.spo, s, Some(p), after.map(spo_key)) {
                    debug_assert!(ts == s && tp == p);
                    if !f((ts, tp, to)) {
                        cursor.last = Some((ts, tp, to));
                        return;
                    }
                }
            }
            (Some(s), None, _) => {
                for &(ts, tp, to) in range3_from(&self.spo, s, None, after.map(spo_key)) {
                    if o.map(|v| v == to).unwrap_or(true) && !f((ts, tp, to)) {
                        cursor.last = Some((ts, tp, to));
                        return;
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                for &(tp, to, ts) in range3_from(&self.pos, p, Some(o), after.map(pos_key)) {
                    if !f((ts, tp, to)) {
                        cursor.last = Some((ts, tp, to));
                        return;
                    }
                }
            }
            (None, Some(p), None) => {
                for &(tp, to, ts) in range3_from(&self.pos, p, None, after.map(pos_key)) {
                    if !f((ts, tp, to)) {
                        cursor.last = Some((ts, tp, to));
                        return;
                    }
                }
            }
            (None, None, Some(o)) => {
                for &(to, ts, tp) in range3_from(&self.osp, o, None, after.map(osp_key)) {
                    if !f((ts, tp, to)) {
                        cursor.last = Some((ts, tp, to));
                        return;
                    }
                }
            }
            (None, None, None) => {
                let lo = match after {
                    Some(k) => Bound::Excluded(k),
                    None => Bound::Unbounded,
                };
                for &t in self.spo.range((lo, Bound::Unbounded)) {
                    if !f(t) {
                        cursor.last = Some(t);
                        return;
                    }
                }
            }
        }
        cursor.done = true;
    }

    /// Estimated result count of a pattern (exact for indexed lookups,
    /// `len()` for unbounded/scan) — drives join ordering.
    pub fn estimate(&self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> usize {
        if self.mode == IndexMode::Scan {
            // Scan mode has no statistics: every pattern costs a pass.
            return self.all.len();
        }
        match (s, p, o) {
            (None, None, None) => self.spo.len(),
            (Some(s), pp, _) => range3(&self.spo, s, pp).take(ESTIMATE_CAP).count(),
            (None, Some(p), oo) => range3(&self.pos, p, oo).take(ESTIMATE_CAP).count(),
            (None, None, Some(o)) => range3(&self.osp, o, None).take(ESTIMATE_CAP).count(),
        }
    }

    /// Iterate every triple (term-resolved), for export and interlinking.
    pub fn triples(&self) -> impl Iterator<Item = (&Term, &Term, &Term)> {
        // `all` is maintained in both modes, so one iterator serves both.
        self.all
            .iter()
            .map(move |&(s, p, o)| (self.dict.term(s), self.dict.term(p), self.dict.term(o)))
    }
}

/// Pause/resume state for [`TripleStore::match_pattern_from`]. One cursor
/// serves one `(s, p, o)` pattern against one store; reusing it for a
/// different pattern or store is a logic error (the resume key would skip
/// or repeat matches).
#[derive(Debug, Clone, Default)]
pub struct PatternCursor {
    /// Last triple delivered before a pause (indexed modes resume
    /// exclusively after it).
    last: Option<IdTriple>,
    /// Next position in `all` (scan mode).
    scan_pos: usize,
    /// The enumeration ran to the end.
    done: bool,
}

impl PatternCursor {
    /// True once the pattern's matches are exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// Range over a 3-tuple B-tree with the first component fixed and the
/// second optionally fixed.
fn range3(
    set: &BTreeSet<(u64, u64, u64)>,
    first: u64,
    second: Option<u64>,
) -> impl Iterator<Item = &(u64, u64, u64)> {
    range3_from(set, first, second, None)
}

/// [`range3`] resuming exclusively after `after` (a full key in this
/// index's component order); `None` starts from the beginning.
fn range3_from(
    set: &BTreeSet<(u64, u64, u64)>,
    first: u64,
    second: Option<u64>,
    after: Option<(u64, u64, u64)>,
) -> impl Iterator<Item = &(u64, u64, u64)> {
    let lo = match (after, second) {
        (Some(k), _) => Bound::Excluded(k),
        (None, Some(s)) => Bound::Included((first, s, u64::MIN)),
        (None, None) => Bound::Included((first, u64::MIN, u64::MIN)),
    };
    let hi = match second {
        Some(s) => Bound::Included((first, s, u64::MAX)),
        None => Bound::Included((first, u64::MAX, u64::MAX)),
    };
    set.range((lo, hi))
}

/// Convenience for tests and loaders: is the exact triple present?
impl TripleStore {
    /// Membership test on terms.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(s),
            self.dict.id_of(p),
            self.dict.id_of(o),
        ) else {
            return false;
        };
        self.pos_of.contains_key(&(s, p, o))
    }

    /// The decoded value of an object id (exposed for the evaluator).
    pub fn value_of(&self, id: u64) -> &Value {
        self.dict.value(id)
    }
}

/// The difference between the store's current state and a historical
/// commit, expressed over the **current** dictionary ids: triples to
/// hide (inserted after the as-of commit, still present in the base) and
/// triples to add back (deleted after it, absent from the base). Built
/// by [`crate::storage::Store::as_of`] from the immutable commit log;
/// the overlay is proportional to the churn since the commit, never to
/// the store size.
#[derive(Debug, Clone, Default)]
pub struct Novelty {
    hide: std::collections::HashSet<IdTriple>,
    /// Sorted SPO, deduplicated, disjoint from the base.
    add: Vec<IdTriple>,
}

impl Novelty {
    /// Build an overlay from the triples to hide and to add back. `add`
    /// is sorted and deduplicated here so view enumeration over it is
    /// deterministic.
    pub fn new(hide: std::collections::HashSet<IdTriple>, mut add: Vec<IdTriple>) -> Novelty {
        add.sort_unstable();
        add.dedup();
        Novelty { hide, add }
    }

    /// True when the view is the base itself.
    pub fn is_empty(&self) -> bool {
        self.hide.is_empty() && self.add.is_empty()
    }

    /// Base triples hidden from the view.
    pub fn hidden(&self) -> usize {
        self.hide.len()
    }

    /// Overlay triples added back into the view.
    pub fn added(&self) -> usize {
        self.add.len()
    }
}

/// A read view over a [`TripleStore`], optionally through a [`Novelty`]
/// overlay: the plan/join/exec pipeline runs against this, so the same
/// code answers head queries (`novelty: None`, zero overhead) and
/// historical `as_of` queries (base enumeration minus hidden triples,
/// plus the overlay's adds) without ever duplicating the indexes.
///
/// Enumeration order with an overlay: each pattern first yields the
/// base's index-order matches (skipping hidden triples), then the
/// overlay's matches in SPO order. That order is deterministic for a
/// given view but not identical to a head store holding the same
/// triples, so order-insensitive consumers (aggregates, `ORDER BY`,
/// sorted comparisons) see bit-identical results while plain streamed
/// projections agree up to row order.
#[derive(Clone, Copy)]
pub struct StoreView<'a> {
    base: &'a TripleStore,
    novelty: Option<&'a Novelty>,
}

impl<'a> From<&'a TripleStore> for StoreView<'a> {
    fn from(base: &'a TripleStore) -> StoreView<'a> {
        StoreView {
            base,
            novelty: None,
        }
    }
}

/// Does `t` match the optional-constant pattern?
fn pattern_matches(t: IdTriple, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> bool {
    s.map(|v| v == t.0).unwrap_or(true)
        && p.map(|v| v == t.1).unwrap_or(true)
        && o.map(|v| v == t.2).unwrap_or(true)
}

impl<'a> StoreView<'a> {
    /// The head view: the store itself, no overlay.
    pub fn head(base: &'a TripleStore) -> StoreView<'a> {
        StoreView {
            base,
            novelty: None,
        }
    }

    /// A historical view through `novelty`.
    pub fn with_novelty(base: &'a TripleStore, novelty: &'a Novelty) -> StoreView<'a> {
        StoreView {
            base,
            novelty: Some(novelty),
        }
    }

    /// The shared term dictionary (ids are append-only, so overlay
    /// triples resolve through the same dictionary as base triples).
    pub fn dict(&self) -> &'a Dictionary {
        &self.base.dict
    }

    /// The base store's index mode.
    pub fn mode(&self) -> IndexMode {
        self.base.mode()
    }

    /// Triples visible through the view.
    pub fn len(&self) -> usize {
        match self.novelty {
            None => self.base.len(),
            Some(n) => self.base.len() - n.hide.len() + n.add.len(),
        }
    }

    /// True when the view holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test on pre-interned ids, through the overlay.
    pub fn contains_ids(&self, s: u64, p: u64, o: u64) -> bool {
        match self.novelty {
            None => self.base.contains_ids(s, p, o),
            Some(n) => {
                if n.hide.contains(&(s, p, o)) {
                    false
                } else {
                    self.base.contains_ids(s, p, o) || n.add.binary_search(&(s, p, o)).is_ok()
                }
            }
        }
    }

    /// The decoded value of an object id.
    pub fn value_of(&self, id: u64) -> &'a Value {
        self.base.dict.value(id)
    }

    /// Estimated result count of a pattern. Overlay adds are counted in
    /// (hidden triples are not subtracted — estimates only drive join
    /// ordering, where a superset is safe).
    pub fn estimate(&self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> usize {
        let base = self.base.estimate(s, p, o);
        match self.novelty {
            None => base,
            Some(n) => {
                base + n
                    .add
                    .iter()
                    .filter(|&&t| pattern_matches(t, s, p, o))
                    .count()
            }
        }
    }

    /// Geometry-literal ids whose envelope intersects `query`, including
    /// overlay objects — candidate sets are used by the executor to
    /// *reject* bindings outside them, so a view that resurrects a
    /// deleted geometry must surface its id here or the row would be
    /// silently dropped. Stale base entries stay (superset semantics).
    pub fn spatial_candidates(&self, query: &Envelope) -> Option<Vec<u64>> {
        let mut out = self.base.spatial_candidates(query)?;
        if let Some(n) = self.novelty {
            for &(_, _, o) in &n.add {
                if let Some(env) = self.base.dict.envelope_of(o) {
                    if env.intersects(query) {
                        out.push(o);
                    }
                }
            }
        }
        Some(out)
    }

    /// All view triples matching a pattern; the callback returns `false`
    /// to stop early. See [`StoreView`] for the enumeration order.
    pub fn match_pattern<F: FnMut(IdTriple) -> bool>(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
        f: &mut F,
    ) {
        let mut cursor = ViewCursor::default();
        self.match_pattern_from(s, p, o, &mut cursor, f);
    }

    /// Resumable form of [`StoreView::match_pattern`], mirroring
    /// [`TripleStore::match_pattern_from`]: a `false` return pauses, the
    /// cursor resumes strictly after the last delivered triple.
    pub fn match_pattern_from<F: FnMut(IdTriple) -> bool>(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
        cursor: &mut ViewCursor,
        f: &mut F,
    ) {
        if cursor.done {
            return;
        }
        let Some(n) = self.novelty else {
            self.base.match_pattern_from(s, p, o, &mut cursor.base, f);
            cursor.done = cursor.base.is_done();
            return;
        };
        if !cursor.base.is_done() {
            let mut paused = false;
            self.base.match_pattern_from(s, p, o, &mut cursor.base, &mut |t| {
                if n.hide.contains(&t) {
                    return true;
                }
                let more = f(t);
                if !more {
                    paused = true;
                }
                more
            });
            if paused {
                return; // the base cursor holds the resume point
            }
        }
        while cursor.add_pos < n.add.len() {
            let t = n.add[cursor.add_pos];
            cursor.add_pos += 1;
            if pattern_matches(t, s, p, o) && !f(t) {
                return;
            }
        }
        cursor.done = true;
    }

    /// Every view triple as ids, sorted SPO — the canonical content
    /// comparison the as-of identity tests use.
    pub fn id_triples_sorted(&self) -> Vec<IdTriple> {
        let mut out: Vec<IdTriple> = match self.novelty {
            None => self.base.id_triples().to_vec(),
            Some(n) => self
                .base
                .id_triples()
                .iter()
                .filter(|t| !n.hide.contains(t))
                .copied()
                .chain(n.add.iter().copied())
                .collect(),
        };
        out.sort_unstable();
        out
    }
}

/// Pause/resume state for [`StoreView::match_pattern_from`]: the base
/// store's cursor plus a position into the overlay's adds.
#[derive(Debug, Clone, Default)]
pub struct ViewCursor {
    base: PatternCursor,
    add_pos: usize,
    done: bool,
}

impl ViewCursor {
    /// True once the view's matches are exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn store(mode: IndexMode) -> TripleStore {
        let mut st = TripleStore::new(mode);
        st.insert(&t("a"), &t("knows"), &t("b"));
        st.insert(&t("a"), &t("knows"), &t("c"));
        st.insert(&t("b"), &t("knows"), &t("c"));
        st.insert(&t("a"), &t("age"), &Term::integer(30));
        st
    }

    fn collect(
        st: &TripleStore,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Vec<IdTriple> {
        let sid = s.map(|x| st.dict.id_of(x).unwrap());
        let pid = p.map(|x| st.dict.id_of(x).unwrap());
        let oid = o.map(|x| st.dict.id_of(x).unwrap());
        let mut out = Vec::new();
        st.match_pattern(sid, pid, oid, &mut |t| {
            out.push(t);
            true
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn both_modes_agree_on_all_patterns() {
        let full = store(IndexMode::Full);
        let scan = store(IndexMode::Scan);
        let a = t("a");
        let knows = t("knows");
        let c = t("c");
        let cases: Vec<(Option<&Term>, Option<&Term>, Option<&Term>)> = vec![
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&knows), None),
            (None, None, Some(&c)),
            (Some(&a), Some(&knows), None),
            (None, Some(&knows), Some(&c)),
            (Some(&a), Some(&knows), Some(&c)),
        ];
        for (s, p, o) in cases {
            // Ids differ across dictionaries; compare resolved terms.
            let resolve = |st: &TripleStore, v: Vec<IdTriple>| -> Vec<(Term, Term, Term)> {
                let mut r: Vec<_> = v
                    .into_iter()
                    .map(|(a, b, c)| {
                        (
                            st.dict.term(a).clone(),
                            st.dict.term(b).clone(),
                            st.dict.term(c).clone(),
                        )
                    })
                    .collect();
                r.sort();
                r
            };
            let lf = resolve(&full, collect(&full, s, p, o));
            let ls = resolve(&scan, collect(&scan, s, p, o));
            assert_eq!(lf, ls, "pattern {s:?} {p:?} {o:?}");
        }
    }

    #[test]
    fn match_pattern_from_resumes_identically() {
        // Pulling 1..=3 triples per resume must enumerate exactly what a
        // one-shot match_pattern delivers, in the same order, for every
        // pattern shape and both index modes.
        for mode in [IndexMode::Full, IndexMode::Scan] {
            let st = store(mode);
            let a = t("a");
            let knows = t("knows");
            let c = t("c");
            let id = |x: &Term| st.dict.id_of(x).unwrap();
            let cases = [
                (None, None, None),
                (Some(id(&a)), None, None),
                (None, Some(id(&knows)), None),
                (None, None, Some(id(&c))),
                (Some(id(&a)), Some(id(&knows)), None),
                (None, Some(id(&knows)), Some(id(&c))),
                (Some(id(&a)), None, Some(id(&c))),
                (Some(id(&a)), Some(id(&knows)), Some(id(&c))),
            ];
            for (s, p, o) in cases {
                let mut oneshot = Vec::new();
                st.match_pattern(s, p, o, &mut |t| {
                    oneshot.push(t);
                    true
                });
                for chunk in 1..=3usize {
                    let mut cursor = PatternCursor::default();
                    let mut resumed = Vec::new();
                    while !cursor.is_done() {
                        let mut got = 0;
                        st.match_pattern_from(s, p, o, &mut cursor, &mut |t| {
                            resumed.push(t);
                            got += 1;
                            got < chunk
                        });
                    }
                    assert_eq!(
                        resumed, oneshot,
                        "mode {mode:?} pattern {s:?} {p:?} {o:?} chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut st = store(IndexMode::Full);
        assert_eq!(st.len(), 4);
        st.insert(&t("a"), &t("knows"), &t("b"));
        assert_eq!(st.len(), 4);
        let mut scan = store(IndexMode::Scan);
        scan.insert(&t("a"), &t("knows"), &t("b"));
        assert_eq!(scan.len(), 4);
    }

    #[test]
    fn contains_checks_membership() {
        let st = store(IndexMode::Full);
        assert!(st.contains(&t("a"), &t("knows"), &t("b")));
        assert!(!st.contains(&t("c"), &t("knows"), &t("a")));
        assert!(!st.contains(&t("zz"), &t("knows"), &t("b")), "unknown term");
    }

    #[test]
    fn early_termination() {
        let st = store(IndexMode::Full);
        let mut count = 0;
        st.match_pattern(None, None, None, &mut |_| {
            count += 1;
            count < 2
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn bulk_load_sorted_ids_matches_per_triple_inserts() {
        // Same triple set through insert() and through the snapshot-open
        // bulk path: every index, the insertion-order list, and the
        // spatial candidate set must agree.
        let reference = {
            let mut st = store(IndexMode::Full);
            st.insert(&t("g"), &t("hasGeometry"), &Term::wkt("POINT (3 4)"));
            st.build_spatial_index();
            st
        };
        let mut sorted = reference.id_triples().to_vec();
        sorted.sort_unstable();
        let mut bulk = TripleStore::new(IndexMode::Full);
        for id in 0..reference.dict.len() as u64 {
            bulk.dict.intern(reference.dict.term(id));
        }
        bulk.bulk_load_sorted_ids(&sorted);
        bulk.build_spatial_index();

        assert_eq!(bulk.len(), reference.len());
        for &(s, p, o) in reference.id_triples() {
            assert!(bulk.contains_ids(s, p, o));
        }
        for (pat, label) in [
            ((None, reference.dict.id_of(&t("knows")), None), "POS"),
            ((reference.dict.id_of(&t("a")), None, None), "SPO"),
            ((None, None, reference.dict.id_of(&t("c"))), "OSP"),
        ] {
            assert_eq!(
                collect_ids(&bulk, pat.0, pat.1, pat.2),
                collect_ids(&reference, pat.0, pat.1, pat.2),
                "{label} pattern must match"
            );
        }
        let env = Envelope::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            bulk.spatial_candidates(&env).map(|mut v| {
                v.sort_unstable();
                v
            }),
            reference.spatial_candidates(&env).map(|mut v| {
                v.sort_unstable();
                v
            }),
        );
    }

    fn collect_ids(
        st: &TripleStore,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
    ) -> Vec<IdTriple> {
        let mut out = Vec::new();
        st.match_pattern(s, p, o, &mut |t| {
            out.push(t);
            true
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn estimates_reflect_selectivity() {
        let st = store(IndexMode::Full);
        let knows = st.dict.id_of(&t("knows")).unwrap();
        let a = st.dict.id_of(&t("a")).unwrap();
        assert_eq!(st.estimate(None, None, None), 4);
        assert_eq!(st.estimate(None, Some(knows), None), 3);
        assert_eq!(st.estimate(Some(a), Some(knows), None), 2);
        // Scan mode: flat cost.
        let sc = store(IndexMode::Scan);
        assert_eq!(sc.estimate(Some(0), Some(1), Some(2)), 4);
    }

    #[test]
    fn no_pushdown_mode_indexes_but_does_not_prune() {
        let mut st = TripleStore::new(IndexMode::NoPushdown);
        st.insert(&t("f"), &t("hasGeometry"), &Term::wkt("POINT (5 5)"));
        st.build_spatial_index();
        assert!(
            st.spatial_candidates(&Envelope::new(0.0, 0.0, 10.0, 10.0)).is_none(),
            "no R-tree pruning in this mode"
        );
        // But pattern matching still uses the B-tree indexes.
        assert_eq!(st.estimate(None, st.dict.id_of(&t("hasGeometry")), None), 1);
    }

    #[test]
    fn spatial_candidates_prune_by_envelope() {
        let mut st = TripleStore::new(IndexMode::Full);
        let has_geom = t("hasGeometry");
        for i in 0..100 {
            let x = i as f64;
            st.insert(
                &t(&format!("f{i}")),
                &has_geom,
                &Term::wkt(format!("POINT ({x} {x})")),
            );
        }
        st.build_spatial_index();
        let hits = st
            .spatial_candidates(&Envelope::new(10.0, 10.0, 20.0, 20.0))
            .unwrap();
        assert_eq!(hits.len(), 11, "points 10..=20");
        // Scan mode cannot prune.
        let scan = TripleStore::new(IndexMode::Scan);
        assert!(scan.spatial_candidates(&Envelope::new(0.0, 0.0, 1.0, 1.0)).is_none());
    }

    #[test]
    fn spatial_candidates_without_explicit_build() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&t("f"), &t("hasGeometry"), &Term::wkt("POINT (5 5)"));
        // No build_spatial_index call: pending entries still found.
        let hits = st
            .spatial_candidates(&Envelope::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert_eq!(hits.len(), 1);
        // After build, same answer.
        st.build_spatial_index();
        let hits = st
            .spatial_candidates(&Envelope::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn incremental_build_keeps_old_entries() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&t("f1"), &t("g"), &Term::wkt("POINT (1 1)"));
        st.build_spatial_index();
        st.insert(&t("f2"), &t("g"), &Term::wkt("POINT (2 2)"));
        st.build_spatial_index();
        let hits = st
            .spatial_candidates(&Envelope::new(0.0, 0.0, 3.0, 3.0))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn remove_updates_every_index() {
        for mode in [IndexMode::Full, IndexMode::NoPushdown, IndexMode::Scan] {
            let mut st = store(mode);
            assert!(st.remove(&t("a"), &t("knows"), &t("b")), "mode {mode:?}");
            assert!(!st.remove(&t("a"), &t("knows"), &t("b")), "double remove");
            assert_eq!(st.len(), 3);
            assert!(!st.contains(&t("a"), &t("knows"), &t("b")));
            assert!(st.contains(&t("a"), &t("knows"), &t("c")));
            // Pattern matching no longer surfaces the removed triple.
            let got = collect(&st, Some(&t("a")), Some(&t("knows")), None);
            assert_eq!(got.len(), 1, "mode {mode:?}");
            // Unknown term: no-op.
            assert!(!st.remove(&t("nobody"), &t("knows"), &t("b")));
            // Re-insert after removal works and dedups.
            st.insert(&t("a"), &t("knows"), &t("b"));
            st.insert(&t("a"), &t("knows"), &t("b"));
            assert_eq!(st.len(), 4);
        }
    }

    #[test]
    fn remove_is_safe_mid_stream_in_indexed_mode() {
        // A paused cursor must resume correctly even when the triple it
        // paused on — and others — were removed between batches.
        let mut st = TripleStore::new(IndexMode::Full);
        for i in 0..10 {
            st.insert(&t(&format!("s{i:02}")), &t("p"), &t("o"));
        }
        let p = st.dict.id_of(&t("p")).unwrap();
        let mut cursor = PatternCursor::default();
        let mut first = Vec::new();
        st.match_pattern_from(None, Some(p), None, &mut cursor, &mut |tr| {
            first.push(tr);
            first.len() < 3
        });
        assert_eq!(first.len(), 3);
        // Remove the resume key itself plus a not-yet-seen triple.
        let (ls, lp, lo) = *first.last().unwrap();
        assert!(st.remove_ids(ls, lp, lo));
        assert!(st.remove(&t("s07"), &t("p"), &t("o")));
        let mut rest = Vec::new();
        while !cursor.is_done() {
            st.match_pattern_from(None, Some(p), None, &mut cursor, &mut |tr| {
                rest.push(tr);
                true
            });
        }
        // 10 - 3 delivered - 1 removed-unseen = 6 remaining, none repeated.
        assert_eq!(rest.len(), 6);
        let mut seen: Vec<_> = first.iter().chain(&rest).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 9, "no triple delivered twice");
    }

    #[test]
    fn triples_iterator_resolves_terms() {
        let st = store(IndexMode::Full);
        let all: Vec<_> = st.triples().collect();
        assert_eq!(all.len(), 4);
        assert!(all
            .iter()
            .any(|(s, p, o)| *s == &t("a") && *p == &t("age") && *o == &Term::integer(30)));
    }

    /// A store plus a novelty that hides (a knows c) and adds back a
    /// deleted triple (d knows a) — the view should look exactly like
    /// the store did before those two changes.
    fn view_fixture(mode: IndexMode) -> (TripleStore, Novelty) {
        let mut st = store(mode);
        // Intern the resurrected triple's terms, then remove it so the
        // base doesn't contain it (mirrors what Store::as_of does).
        st.insert(&t("d"), &t("knows"), &t("a"));
        let d = st.dict.id_of(&t("d")).unwrap();
        let knows = st.dict.id_of(&t("knows")).unwrap();
        let a = st.dict.id_of(&t("a")).unwrap();
        let c = st.dict.id_of(&t("c")).unwrap();
        assert!(st.remove_ids(d, knows, a));
        let hide: std::collections::HashSet<IdTriple> = [(a, knows, c)].into_iter().collect();
        let nov = Novelty::new(hide, vec![(d, knows, a)]);
        (st, nov)
    }

    fn view_collect(
        view: StoreView<'_>,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
    ) -> Vec<IdTriple> {
        let mut out = Vec::new();
        view.match_pattern(s, p, o, &mut |t| {
            out.push(t);
            true
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn view_overlays_hide_and_add_in_both_modes() {
        for mode in [IndexMode::Full, IndexMode::Scan] {
            let (st, nov) = view_fixture(mode);
            let view = StoreView::with_novelty(&st, &nov);
            let a = st.dict.id_of(&t("a")).unwrap();
            let c = st.dict.id_of(&t("c")).unwrap();
            let d = st.dict.id_of(&t("d")).unwrap();
            let knows = st.dict.id_of(&t("knows")).unwrap();
            assert_eq!(view.len(), st.len()); // one hidden, one added
            assert!(!view.contains_ids(a, knows, c), "hidden triple visible");
            assert!(view.contains_ids(d, knows, a), "added triple missing");
            assert!(st.contains_ids(a, knows, c) && !st.contains_ids(d, knows, a));
            // Every pattern shape agrees with a materialised reference.
            let reference: Vec<IdTriple> = {
                let mut v: Vec<IdTriple> = st
                    .id_triples()
                    .iter()
                    .copied()
                    .filter(|&tr| tr != (a, knows, c))
                    .collect();
                v.push((d, knows, a));
                v.sort_unstable();
                v
            };
            assert_eq!(view.id_triples_sorted(), reference);
            for (s, p, o) in [
                (None, None, None),
                (Some(a), None, None),
                (Some(d), Some(knows), None),
                (None, Some(knows), None),
                (None, Some(knows), Some(a)),
                (None, None, Some(c)),
                (Some(d), Some(knows), Some(a)),
                (Some(a), Some(knows), Some(c)),
            ] {
                let got = view_collect(view, s, p, o);
                let want: Vec<IdTriple> = reference
                    .iter()
                    .copied()
                    .filter(|&tr| pattern_matches(tr, s, p, o))
                    .collect();
                assert_eq!(got, want, "pattern {s:?} {p:?} {o:?} in {mode:?}");
                assert!(
                    view.estimate(s, p, o) >= want.len(),
                    "estimate must not undercount"
                );
            }
        }
    }

    #[test]
    fn view_cursor_resumes_across_base_and_overlay() {
        let (st, nov) = view_fixture(IndexMode::Full);
        let view = StoreView::with_novelty(&st, &nov);
        let knows = st.dict.id_of(&t("knows")).unwrap();
        let all = view_collect(view, None, Some(knows), None);
        // Pause after every delivery; resumed enumeration must be
        // identical (as a set) with no duplicates.
        let mut cursor = ViewCursor::default();
        let mut got = Vec::new();
        while !cursor.is_done() {
            view.match_pattern_from(None, Some(knows), None, &mut cursor, &mut |tr| {
                got.push(tr);
                false
            });
        }
        got.sort_unstable();
        assert_eq!(got, all);
    }

    #[test]
    fn head_view_is_transparent() {
        let st = store(IndexMode::Full);
        let view = StoreView::from(&st);
        assert_eq!(view.len(), st.len());
        assert_eq!(
            view.id_triples_sorted(),
            {
                let mut v = st.id_triples().to_vec();
                v.sort_unstable();
                v
            },
            "head view enumerates the store itself"
        );
    }

    #[test]
    fn view_spatial_candidates_include_resurrected_geometries() {
        let mut st = TripleStore::new(IndexMode::Full);
        let wkt_near = Term::wkt("POINT (1 1)");
        let wkt_far = Term::wkt("POINT (50 50)");
        st.insert(&t("x"), &t("hasGeometry"), &wkt_near);
        st.insert(&t("y"), &t("hasGeometry"), &wkt_far);
        let x = st.dict.id_of(&t("x")).unwrap();
        let geom = st.dict.id_of(&t("hasGeometry")).unwrap();
        let near = st.dict.id_of(&wkt_near).unwrap();
        // Delete the near geometry, then resurrect it through a view.
        assert!(st.remove_ids(x, geom, near));
        st.build_spatial_index();
        let nov = Novelty::new(Default::default(), vec![(x, geom, near)]);
        let view = StoreView::with_novelty(&st, &nov);
        let query = Envelope::new(0.0, 0.0, 2.0, 2.0);
        let cands = view.spatial_candidates(&query).expect("full mode prunes");
        assert!(cands.contains(&near), "overlay geometry must be a candidate");
    }
}
