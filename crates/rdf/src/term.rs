//! RDF terms and typed literal values.

use ee_geo::wkt;
use ee_util::timeline::Date;

/// Well-known datatype IRIs (abbreviated).
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// `xsd:date`.
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// GeoSPARQL `geo:wktLiteral`.
pub const GEO_WKT: &str = "http://www.opengis.net/ont/geosparql#wktLiteral";

/// An RDF term. Blank nodes are not needed by the workspace's pipelines
/// (GeoTriples-style mappings mint IRIs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference.
    Iri(String),
    /// A literal with its datatype IRI.
    Literal {
        /// Lexical form.
        lexical: String,
        /// Datatype IRI (e.g. [`XSD_INTEGER`]).
        datatype: String,
    },
}

impl Term {
    /// IRI constructor.
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    /// Plain string literal.
    pub fn string(s: impl Into<String>) -> Term {
        Term::Literal {
            lexical: s.into(),
            datatype: XSD_STRING.to_string(),
        }
    }

    /// Integer literal.
    pub fn integer(v: i64) -> Term {
        Term::Literal {
            lexical: v.to_string(),
            datatype: XSD_INTEGER.to_string(),
        }
    }

    /// Double literal.
    pub fn double(v: f64) -> Term {
        Term::Literal {
            lexical: format!("{v}"),
            datatype: XSD_DOUBLE.to_string(),
        }
    }

    /// Boolean literal.
    pub fn boolean(v: bool) -> Term {
        Term::Literal {
            lexical: v.to_string(),
            datatype: XSD_BOOLEAN.to_string(),
        }
    }

    /// `xsd:date` literal from a calendar date.
    pub fn date(d: Date) -> Term {
        Term::Literal {
            lexical: d.iso(),
            datatype: XSD_DATE.to_string(),
        }
    }

    /// `geo:wktLiteral` from WKT text.
    pub fn wkt(wkt_text: impl Into<String>) -> Term {
        Term::Literal {
            lexical: wkt_text.into(),
            datatype: GEO_WKT.to_string(),
        }
    }

    /// `geo:wktLiteral` from a geometry.
    pub fn geometry(g: &ee_geo::Geometry) -> Term {
        Term::wkt(wkt::to_wkt(g))
    }

    /// True for IRIs.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// N-Triples-ish display form.
    pub fn ntriples(&self) -> String {
        match self {
            Term::Iri(i) => format!("<{i}>"),
            Term::Literal { lexical, datatype } if datatype == XSD_STRING => {
                format!("{lexical:?}")
            }
            Term::Literal { lexical, datatype } => format!("{lexical:?}^^<{datatype}>"),
        }
    }
}

/// The decoded value of a literal, computed once at interning time so
/// filters never re-parse lexical forms in the inner loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An IRI (compared by identity only).
    Iri,
    /// String.
    Str(String),
    /// Integer.
    Int(i64),
    /// Double.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Calendar date, held as days since epoch for cheap comparison.
    Date(i64),
    /// A geometry: index into the dictionary's geometry table.
    Geometry(usize),
    /// A literal whose lexical form did not parse under its datatype.
    Malformed,
}

/// Decode a term's typed value. Geometries are parsed separately by the
/// dictionary (which owns the geometry table); this returns `None` for
/// WKT literals so the caller knows to do so.
pub fn decode_non_geometry(term: &Term) -> Option<Value> {
    match term {
        Term::Iri(_) => Some(Value::Iri),
        Term::Literal { lexical, datatype } => match datatype.as_str() {
            XSD_STRING => Some(Value::Str(lexical.clone())),
            XSD_INTEGER => Some(
                lexical
                    .parse::<i64>()
                    .map(Value::Int)
                    .unwrap_or(Value::Malformed),
            ),
            XSD_DOUBLE => Some(
                lexical
                    .parse::<f64>()
                    .map(Value::Float)
                    .unwrap_or(Value::Malformed),
            ),
            XSD_BOOLEAN => match lexical.as_str() {
                "true" | "1" => Some(Value::Bool(true)),
                "false" | "0" => Some(Value::Bool(false)),
                _ => Some(Value::Malformed),
            },
            XSD_DATE => Some(parse_date(lexical).map(Value::Date).unwrap_or(Value::Malformed)),
            GEO_WKT => None,
            _ => Some(Value::Str(lexical.clone())),
        },
    }
}

/// Parse `YYYY-MM-DD` into days since 0000-01-01 (ordering-compatible).
pub fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    let date = Date::new(y, m, d)?;
    let epoch = Date::new(0, 1, 1)?;
    Some(date.days_since(epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_datatypes() {
        assert!(Term::iri("http://ex.org/a").is_iri());
        match Term::integer(42) {
            Term::Literal { lexical, datatype } => {
                assert_eq!(lexical, "42");
                assert_eq!(datatype, XSD_INTEGER);
            }
            _ => panic!(),
        }
        assert!(!Term::string("x").is_iri());
    }

    #[test]
    fn decode_typed_values() {
        assert_eq!(decode_non_geometry(&Term::integer(-7)), Some(Value::Int(-7)));
        assert_eq!(
            decode_non_geometry(&Term::double(2.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(
            decode_non_geometry(&Term::boolean(true)),
            Some(Value::Bool(true))
        );
        assert_eq!(
            decode_non_geometry(&Term::string("hi")),
            Some(Value::Str("hi".into()))
        );
        assert_eq!(decode_non_geometry(&Term::iri("x")), Some(Value::Iri));
        assert_eq!(decode_non_geometry(&Term::wkt("POINT (1 2)")), None);
    }

    #[test]
    fn malformed_literals_decode_as_malformed() {
        let bad = Term::Literal {
            lexical: "not-a-number".into(),
            datatype: XSD_INTEGER.into(),
        };
        assert_eq!(decode_non_geometry(&bad), Some(Value::Malformed));
    }

    #[test]
    fn date_parsing_and_ordering() {
        let a = parse_date("2017-01-31").unwrap();
        let b = parse_date("2017-02-01").unwrap();
        let c = parse_date("2018-01-01").unwrap();
        assert!(a < b && b < c);
        assert_eq!(b - a, 1);
        assert!(parse_date("2017-13-01").is_none());
        assert!(parse_date("2017-02-30").is_none());
        assert!(parse_date("nope").is_none());
        assert!(parse_date("2017-01-01-09").is_none());
    }

    #[test]
    fn date_term_roundtrip() {
        let d = Date::new(2017, 7, 15).unwrap();
        match Term::date(d) {
            Term::Literal { lexical, .. } => assert_eq!(lexical, "2017-07-15"),
            _ => panic!(),
        }
    }

    #[test]
    fn ntriples_forms() {
        assert_eq!(Term::iri("http://e/x").ntriples(), "<http://e/x>");
        assert_eq!(Term::string("a\"b").ntriples(), "\"a\\\"b\"");
        assert!(Term::integer(5).ntriples().contains("^^<"));
    }

    #[test]
    fn geometry_term_roundtrips_via_wkt() {
        let g: ee_geo::Geometry = ee_geo::Point::new(23.7, 37.9).into();
        let t = Term::geometry(&g);
        match &t {
            Term::Literal { lexical, datatype } => {
                assert_eq!(datatype, GEO_WKT);
                assert_eq!(wkt::parse_wkt(lexical).unwrap(), g);
            }
            _ => panic!(),
        }
    }
}
