//! SPARQL UPDATE evaluation: turn a parsed [`Update`] into a concrete
//! [`Delta`] of ground triples, then apply it to a [`TripleStore`].
//!
//! Evaluation and application are deliberately split: the durable
//! [`crate::storage::Store`] evaluates first (read-only), writes the
//! delta to its WAL, and only then mutates the in-memory indexes — so a
//! crash between the two never leaves a half-applied commit.
//!
//! `DELETE WHERE` and `INSERT … WHERE` run their WHERE group through
//! the ordinary plan/execute pipeline (`SELECT *` over the group), then
//! instantiate a template with each solution row — for `DELETE WHERE`
//! the group is its own template. All operations in one request are
//! evaluated against the state at the start of the request and applied
//! in order (atomic-batch semantics).

use crate::parser::{PatternTerm, Query, TriplePattern, Update, UpdateOp};
use crate::store::TripleStore;
use crate::term::Term;
use crate::RdfError;
use std::collections::HashSet;

/// A ground triple.
pub type GroundTriple = (Term, Term, Term);

/// The concrete effect of an [`Update`] on a store: ground triples to
/// insert and to delete, deduplicated, in first-occurrence order.
/// Deletes are collected before inserts are applied, matching the
/// evaluate-all-then-apply contract above.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Triples to insert (may already be present — inserts dedup).
    pub insert: Vec<GroundTriple>,
    /// Triples to delete (may be absent — deletes of absent triples are
    /// no-ops).
    pub delete: Vec<GroundTriple>,
}

impl Delta {
    /// True when the update would touch nothing.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }
}

/// Evaluate an update against a store **without mutating it**.
pub fn evaluate_update(store: &TripleStore, update: &Update) -> Result<Delta, RdfError> {
    let mut delta = Delta::default();
    let mut seen_ins: HashSet<GroundTriple> = HashSet::new();
    let mut seen_del: HashSet<GroundTriple> = HashSet::new();
    for op in &update.ops {
        match op {
            UpdateOp::InsertData(ts) => {
                for t in ts {
                    if seen_ins.insert(t.clone()) {
                        delta.insert.push(t.clone());
                    }
                }
            }
            UpdateOp::DeleteData(ts) => {
                for t in ts {
                    if seen_del.insert(t.clone()) {
                        delta.delete.push(t.clone());
                    }
                }
            }
            UpdateOp::DeleteWhere(patterns) => {
                for t in instantiate(store, patterns, patterns)? {
                    if seen_del.insert(t.clone()) {
                        delta.delete.push(t);
                    }
                }
            }
            UpdateOp::InsertWhere { template, patterns } => {
                for t in instantiate(store, patterns, template)? {
                    if seen_ins.insert(t.clone()) {
                        delta.insert.push(t);
                    }
                }
            }
        }
    }
    Ok(delta)
}

/// Instantiate `template` with every solution of `patterns`: run the
/// WHERE group as `SELECT *` through the regular plan/execute pipeline,
/// then substitute each solution row into the template. `DELETE WHERE`
/// passes the same group for both.
fn instantiate(
    store: &TripleStore,
    patterns: &[TriplePattern],
    template: &[TriplePattern],
) -> Result<Vec<GroundTriple>, RdfError> {
    let q = Query {
        select: Vec::new(),
        star: true,
        distinct: false,
        patterns: patterns.to_vec(),
        optionals: Vec::new(),
        filters: Vec::new(),
        group_by: Vec::new(),
        order_by: None,
        limit: None,
        offset: None,
        as_of: None,
    };
    let sols = crate::exec::execute(store, &q)?;
    let col_of = |name: &str| sols.vars.iter().position(|v| v == name);
    let mut out = Vec::new();
    for row in &sols.rows {
        let bind = |pt: &PatternTerm| -> Option<Term> {
            match pt {
                PatternTerm::Const(t) => Some(t.clone()),
                PatternTerm::Var(name) => col_of(name).and_then(|i| row[i].clone()),
            }
        };
        for p in template {
            // A row with any unbound position instantiates nothing for
            // this pattern (cannot happen for required patterns, but be
            // defensive rather than write a wrong triple).
            if let (Some(s), Some(pr), Some(o)) = (bind(&p.s), bind(&p.p), bind(&p.o)) {
                out.push((s, pr, o));
            }
        }
    }
    Ok(out)
}

/// Apply a delta to a store: deletes first, then inserts (so an update
/// that deletes and re-inserts the same triple leaves it present).
/// Returns `(inserted, deleted)` — triples that actually changed state,
/// not counting no-op inserts of present triples or deletes of absent
/// ones.
pub fn apply_delta(store: &mut TripleStore, delta: &Delta) -> (usize, usize) {
    let mut deleted = 0;
    for (s, p, o) in &delta.delete {
        if store.remove(s, p, o) {
            deleted += 1;
        }
    }
    let mut inserted = 0;
    for (s, p, o) in &delta.insert {
        if !store.contains(s, p, o) {
            store.insert(s, p, o);
            inserted += 1;
        }
    }
    (inserted, deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_update;
    use crate::store::IndexMode;

    fn e(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn store() -> TripleStore {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("knows"), &e("b"));
        st.insert(&e("a"), &e("knows"), &e("c"));
        st.insert(&e("b"), &e("knows"), &e("c"));
        st.insert(&e("a"), &e("age"), &Term::integer(30));
        st
    }

    #[test]
    fn insert_data_applies() {
        let mut st = store();
        let u = parse_update("PREFIX e: <http://e/> INSERT DATA { e:c e:knows e:a }").unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        let (ins, del) = apply_delta(&mut st, &d);
        assert_eq!((ins, del), (1, 0));
        assert!(st.contains(&e("c"), &e("knows"), &e("a")));
        // Re-applying is a no-op.
        let d2 = evaluate_update(&st, &u).unwrap();
        assert_eq!(apply_delta(&mut st, &d2), (0, 0));
    }

    #[test]
    fn delete_where_instantiates_via_pipeline() {
        let mut st = store();
        let u = parse_update("PREFIX e: <http://e/> DELETE WHERE { ?s e:knows ?o }").unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        assert_eq!(d.delete.len(), 3);
        let (_, del) = apply_delta(&mut st, &d);
        assert_eq!(del, 3);
        assert_eq!(st.len(), 1, "only the age triple survives");
    }

    #[test]
    fn delete_where_with_constant_subject() {
        let mut st = store();
        let u = parse_update("PREFIX e: <http://e/> DELETE WHERE { e:a e:knows ?o }").unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        apply_delta(&mut st, &d);
        assert_eq!(st.len(), 2);
        assert!(st.contains(&e("b"), &e("knows"), &e("c")));
    }

    #[test]
    fn delete_then_reinsert_in_one_request_keeps_triple() {
        let mut st = store();
        let u = parse_update(
            "PREFIX e: <http://e/> \
             DELETE DATA { e:a e:knows e:b } ; INSERT DATA { e:a e:knows e:b }",
        )
        .unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        let (ins, del) = apply_delta(&mut st, &d);
        assert_eq!((ins, del), (1, 1));
        assert!(st.contains(&e("a"), &e("knows"), &e("b")));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn insert_where_instantiates_via_pipeline() {
        let mut st = store();
        // Everyone ?s knows becomes someone ?s e:met.
        let u = parse_update(
            "PREFIX e: <http://e/> INSERT { ?s e:met ?o } WHERE { ?s e:knows ?o }",
        )
        .unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        assert_eq!(d.insert.len(), 3);
        assert!(d.delete.is_empty());
        let (ins, del) = apply_delta(&mut st, &d);
        assert_eq!((ins, del), (3, 0));
        assert!(st.contains(&e("a"), &e("met"), &e("b")));
        assert!(st.contains(&e("b"), &e("met"), &e("c")));
        // Idempotent: re-running inserts nothing new (the WHERE group
        // still matches only the e:knows triples).
        let d2 = evaluate_update(&st, &u).unwrap();
        assert_eq!(apply_delta(&mut st, &d2), (0, 0));
    }

    #[test]
    fn insert_where_with_constant_template_parts() {
        let mut st = store();
        let u = parse_update(
            "PREFIX e: <http://e/> \
             INSERT { ?s e:type e:Person } WHERE { ?s e:knows ?o }",
        )
        .unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        // Two distinct subjects (a, b) — dedup collapses repeated rows.
        assert_eq!(d.insert.len(), 2);
        apply_delta(&mut st, &d);
        assert!(st.contains(&e("a"), &e("type"), &e("Person")));
        assert!(st.contains(&e("b"), &e("type"), &e("Person")));
    }

    #[test]
    fn insert_where_unbound_template_var_is_parse_error() {
        let err = parse_update(
            "PREFIX e: <http://e/> INSERT { ?s e:met ?x } WHERE { ?s e:knows ?o }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("?x"), "got: {err}");
    }

    #[test]
    fn insert_where_then_delete_where_in_one_request() {
        let mut st = store();
        // Copy e:knows to e:met, then drop the originals — evaluated
        // against the same starting state, applied deletes-then-inserts.
        let u = parse_update(
            "PREFIX e: <http://e/> \
             INSERT { ?s e:met ?o } WHERE { ?s e:knows ?o } ; \
             DELETE WHERE { ?s e:knows ?o }",
        )
        .unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        let (ins, del) = apply_delta(&mut st, &d);
        assert_eq!((ins, del), (3, 3));
        assert!(st.contains(&e("a"), &e("met"), &e("b")));
        assert!(!st.contains(&e("a"), &e("knows"), &e("b")));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn evaluate_does_not_mutate() {
        let st = store();
        let u = parse_update("PREFIX e: <http://e/> DELETE WHERE { ?s ?p ?o }").unwrap();
        let d = evaluate_update(&st, &u).unwrap();
        assert_eq!(d.delete.len(), 4);
        assert_eq!(st.len(), 4, "evaluation is read-only");
    }
}
