//! Crash-recovery property test for the durable store.
//!
//! Seeded loop: commit N random updates (with a mid-sequence compaction
//! so recovery exercises snapshot + WAL-tail replay, not just the WAL),
//! then simulate a crash at **every byte boundary** of the final WAL
//! record. Reopening must yield exactly the last fully-committed
//! generation — bit-identical triple set, correct generation counter —
//! whether the tail is cleanly absent, partially written, or complete.

use ee_rdf::parser::parse_update;
use ee_rdf::storage::{scratch_dir, Durability, Store};
use ee_rdf::Term;
use ee_util::Rng;

fn iri(n: &str) -> String {
    format!("<http://e/{n}>")
}

/// A random ground triple over a small universe (collisions are the
/// point: deletes must sometimes hit).
fn rand_triple(rng: &mut Rng) -> (String, String, String) {
    (
        iri(&format!("s{}", rng.range(0, 10))),
        iri(&format!("p{}", rng.range(0, 3))),
        iri(&format!("o{}", rng.range(0, 6))),
    )
}

fn rand_update(rng: &mut Rng) -> String {
    let mut ops = Vec::new();
    for _ in 0..rng.range(1, 3) {
        match rng.range(0, 4) {
            0 | 1 => {
                let ts: Vec<String> = (0..rng.range(1, 5))
                    .map(|_| {
                        let (s, p, o) = rand_triple(rng);
                        format!("{s} {p} {o} .")
                    })
                    .collect();
                ops.push(format!("INSERT DATA {{ {} }}", ts.join(" ")));
            }
            2 => {
                let (s, p, o) = rand_triple(rng);
                ops.push(format!("DELETE DATA {{ {s} {p} {o} }}"));
            }
            _ => {
                let s = iri(&format!("s{}", rng.range(0, 10)));
                ops.push(format!("DELETE WHERE {{ {s} ?p ?o }}"));
            }
        }
    }
    ops.join(" ; ")
}

fn triple_set(store: &Store) -> Vec<(Term, Term, Term)> {
    let mut v: Vec<(Term, Term, Term)> = store
        .triples()
        .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
        .collect();
    v.sort();
    v
}

#[test]
fn reopen_after_any_wal_tail_truncation_yields_last_committed_generation() {
    for seed in [7u64, 2019, 0xee] {
        let mut rng = Rng::seed_from(seed);
        let dir = scratch_dir(&format!("crash-{seed}"));

        let mut store = Store::open_with(&dir, Durability::NoSync).unwrap();
        let n_commits = 8;
        for i in 0..n_commits {
            let update = parse_update(&rand_update(&mut rng)).unwrap();
            store.commit(&update).unwrap();
            if i == n_commits / 2 {
                // Fold history so far into a snapshot: recovery below
                // must replay snapshot *plus* WAL tail.
                store.compact().unwrap();
            }
        }
        // State before the final commit.
        let gen_before = store.generation();
        let set_before = triple_set(&store);
        let wal_before = store.wal_len();
        // A guaranteed-effective final commit (unique marker triple) so
        // the final WAL record exists and bumps the generation.
        let marker = format!(
            "INSERT DATA {{ <http://e/marker> <http://e/at> {} . {} }}",
            gen_before,
            {
                let (s, p, o) = rand_triple(&mut rng);
                format!("{s} {p} {o} .")
            }
        );
        store.commit(&parse_update(&marker).unwrap()).unwrap();
        let gen_after = store.generation();
        let set_after = triple_set(&store);
        let wal_after = store.wal_len();
        assert_eq!(gen_after, gen_before + 1);
        assert!(wal_after > wal_before);
        drop(store);

        let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
        assert_eq!(wal_bytes.len() as u64, wal_after);
        let snapshot_bytes = std::fs::read(dir.join("snapshot.bin")).ok();

        // Crash at every byte boundary of the final record.
        for cut in (wal_before as usize)..=(wal_after as usize) {
            let crash_dir = scratch_dir(&format!("crash-{seed}-cut{cut}"));
            if let Some(snap) = &snapshot_bytes {
                std::fs::write(crash_dir.join("snapshot.bin"), snap).unwrap();
            }
            std::fs::write(crash_dir.join("wal.log"), &wal_bytes[..cut]).unwrap();

            let reopened = Store::open_with(&crash_dir, Durability::NoSync).unwrap();
            let (want_gen, want_set) = if cut == wal_after as usize {
                (gen_after, &set_after)
            } else {
                (gen_before, &set_before)
            };
            assert_eq!(
                reopened.generation(),
                want_gen,
                "seed {seed} cut {cut}: wrong generation"
            );
            assert_eq!(
                &triple_set(&reopened),
                want_set,
                "seed {seed} cut {cut}: triple set diverged"
            );
            drop(reopened);
            std::fs::remove_dir_all(&crash_dir).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn recovered_store_accepts_new_commits() {
    // After torn-tail truncation, the log must still be appendable and
    // the next commit must land at the right generation.
    let dir = scratch_dir("crash-resume");
    let mut store = Store::open_with(&dir, Durability::NoSync).unwrap();
    store
        .commit(&parse_update("INSERT DATA { <http://e/a> <http://e/p> <http://e/b> }").unwrap())
        .unwrap();
    let keep = store.wal_len();
    store
        .commit(&parse_update("INSERT DATA { <http://e/a> <http://e/p> <http://e/c> }").unwrap())
        .unwrap();
    drop(store);
    // Tear the second record in half.
    let wal_path = dir.join("wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    let cut = keep as usize + (bytes.len() - keep as usize) / 2;
    std::fs::write(&wal_path, &bytes[..cut]).unwrap();

    let mut store = Store::open_with(&dir, Durability::NoSync).unwrap();
    assert_eq!(store.generation(), 1);
    assert_eq!(store.len(), 1);
    let stats = store
        .commit(&parse_update("INSERT DATA { <http://e/a> <http://e/p> <http://e/d> }").unwrap())
        .unwrap();
    assert_eq!(stats.generation, 2);
    drop(store);
    let store = Store::open_with(&dir, Durability::NoSync).unwrap();
    assert_eq!(store.generation(), 2);
    assert_eq!(store.len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}
