//! Sharded LRU response cache with TTL.
//!
//! The cache sits between the router and the engines: cacheable GET
//! responses are stored under a canonicalised request key (see
//! [`crate::router::cache_key`]) so that repeated queries, catalogue
//! searches, tile fetches and ice bundles are answered without touching
//! the engines at all. Design:
//!
//! * **Sharding.** Keys are distributed over `shards` independent
//!   `Mutex<Shard>` instances by FNV-1a hash, so concurrent workers
//!   rarely contend on the same lock. FNV is used (not `RandomState`)
//!   to keep shard assignment deterministic run-to-run.
//! * **True LRU per shard.** Each shard keeps an intrusive doubly-linked
//!   list threaded through a slab of nodes; get/put/evict are all O(1).
//! * **TTL.** Every entry carries an expiry instant; expired entries are
//!   treated as misses and reclaimed on access, and the insert path
//!   sweeps a generation-stamped expiry queue so entries that expire and
//!   are never touched again stop counting against shard capacity.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cached response body: everything needed to replay the response
/// without re-running the engine.
#[derive(Debug)]
pub struct CachedBody {
    /// HTTP status (only 200s are cached, but kept for completeness).
    pub status: u16,
    /// Content type of the cached body.
    pub content_type: String,
    /// Extra response headers to replay with the body (e.g. `etag`,
    /// `x-tile-cols`), so a cache hit is indistinguishable from a miss.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

/// FNV-1a, used for deterministic shard selection.
fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const NIL: usize = usize::MAX;

struct Node {
    key: String,
    value: Arc<CachedBody>,
    expires: Instant,
    /// Generation stamp for this slab slot, bumped on every write and
    /// removal, so stale expiry-queue entries referring to an earlier
    /// occupant of the slot are recognised and skipped.
    generation: u64,
    /// Pinned entries never expire and survive [`Shard::sweep_unpinned`]
    /// — used for responses keyed by an immutable commit id, which stay
    /// correct forever. They remain LRU-evictable: pinning is about
    /// invalidation semantics, not a memory guarantee.
    pinned: bool,
    prev: usize,
    next: usize,
}

/// One LRU shard: slab + intrusive list, most-recent at `head`.
struct Shard {
    map: HashMap<String, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    /// Pending expiries in insertion order: `(expires, slot, generation)`.
    /// The TTL is uniform per cache, so insertion order is expiry order
    /// (up to lock-acquisition jitter, which only delays a reclaim by
    /// the jitter) and `put` can sweep the queue front in O(expired).
    expiry: VecDeque<(Instant, usize, u64)>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            expiry: VecDeque::new(),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn remove_index(&mut self, idx: usize) {
        self.unlink(idx);
        let key = std::mem::take(&mut self.nodes[idx].key);
        self.nodes[idx].generation += 1;
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Drop entries whose TTL has elapsed, so an expired-but-untouched
    /// entry stops counting against capacity without waiting for a `get`
    /// to land on its key. Queue entries whose generation no longer
    /// matches the slot were superseded (refreshed, evicted, or already
    /// reclaimed) and are discarded without touching the slot.
    fn sweep_expired(&mut self, now: Instant) {
        while let Some(&(expires, idx, generation)) = self.expiry.front() {
            if expires > now {
                break;
            }
            self.expiry.pop_front();
            if self.nodes[idx].generation == generation {
                self.remove_index(idx);
            }
        }
    }

    fn get(&mut self, key: &str, now: Instant) -> Option<Arc<CachedBody>> {
        let idx = *self.map.get(key)?;
        if !self.nodes[idx].pinned && self.nodes[idx].expires <= now {
            self.remove_index(idx);
            return None;
        }
        // Move to front.
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.nodes[idx].value))
    }

    /// Drop every entry, returning how many were held. Slot generations
    /// are bumped by `remove_index`, so queued expiries for the dropped
    /// entries are recognised as stale and skipped.
    fn clear(&mut self) -> usize {
        let n = self.map.len();
        while self.head != NIL {
            self.remove_index(self.head);
        }
        n
    }

    /// Drop every non-pinned entry, returning how many were dropped.
    /// The write path sweeps with this so commit-id-pinned versioned
    /// responses — which can never go stale — survive updates.
    fn sweep_unpinned(&mut self) -> usize {
        let victims: Vec<usize> = self
            .map
            .values()
            .copied()
            .filter(|&idx| !self.nodes[idx].pinned)
            .collect();
        let n = victims.len();
        for idx in victims {
            self.remove_index(idx);
        }
        n
    }

    fn put(&mut self, key: String, value: Arc<CachedBody>, expires: Instant, pinned: bool) {
        self.sweep_expired(Instant::now());
        if let Some(&idx) = self.map.get(&key) {
            let generation = self.nodes[idx].generation + 1;
            self.nodes[idx].value = value;
            self.nodes[idx].expires = expires;
            self.nodes[idx].generation = generation;
            self.nodes[idx].pinned = pinned;
            self.unlink(idx);
            self.push_front(idx);
            if !pinned {
                self.expiry.push_back((expires, idx, generation));
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            if victim == NIL {
                return; // capacity 0
            }
            self.remove_index(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                let generation = self.nodes[i].generation + 1;
                self.nodes[i] = Node {
                    key: key.clone(),
                    value,
                    expires,
                    generation,
                    pinned,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value,
                    expires,
                    generation: 0,
                    pinned,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        if !pinned {
            self.expiry.push_back((expires, idx, self.nodes[idx].generation));
        }
    }
}

/// The sharded cache.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    ttl: Duration,
    max_entry_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedLru {
    /// Create a cache of `shards` shards of `capacity_per_shard` entries
    /// each, with every entry living `ttl` from insertion and no
    /// per-entry size cap.
    pub fn new(shards: usize, capacity_per_shard: usize, ttl: Duration) -> Self {
        Self::with_max_entry_bytes(shards, capacity_per_shard, ttl, usize::MAX)
    }

    /// [`new`](ShardedLru::new) with a per-entry body-size cap: `put`
    /// refuses (returns `false` for) bodies larger than
    /// `max_entry_bytes`, so one huge streamed tile can't monopolise the
    /// cache's memory.
    pub fn with_max_entry_bytes(
        shards: usize,
        capacity_per_shard: usize,
        ttl: Duration,
        max_entry_bytes: usize,
    ) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(capacity_per_shard)))
                .collect(),
            ttl,
            max_entry_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The per-entry body-size cap (`usize::MAX` when uncapped).
    pub fn max_entry_bytes(&self) -> usize {
        self.max_entry_bytes
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let idx = (fnv1a(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look up a key; counts a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<CachedBody>> {
        let got = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key, Instant::now());
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert (or refresh) a key. Returns `false` (without storing)
    /// when the body exceeds the per-entry byte cap.
    pub fn put(&self, key: String, value: Arc<CachedBody>) -> bool {
        if value.body.len() > self.max_entry_bytes {
            return false;
        }
        let expires = Instant::now() + self.ttl;
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .put(key, value, expires, false);
        true
    }

    /// Insert (or refresh) a key as **pinned**: no TTL, and the entry
    /// survives [`sweep_unpinned`](ShardedLru::sweep_unpinned). For
    /// responses keyed by an immutable commit id (`?asOf=` reads), which
    /// can never go stale — only LRU pressure evicts them. Returns
    /// `false` when the body exceeds the per-entry byte cap.
    pub fn put_pinned(&self, key: String, value: Arc<CachedBody>) -> bool {
        if value.body.len() > self.max_entry_bytes {
            return false;
        }
        // The expiry instant is ignored for pinned entries; any value do.
        let expires = Instant::now();
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .put(key, value, expires, true);
        true
    }

    /// Drop every entry across all shards, returning how many were
    /// held. Test/teardown helper; the write path uses
    /// [`sweep_unpinned`](ShardedLru::sweep_unpinned) so versioned
    /// responses survive commits.
    pub fn clear(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").clear())
            .sum()
    }

    /// Drop every non-pinned entry across all shards, returning how
    /// many were dropped. Used by the write path: a committed update
    /// invalidates all head-of-store responses in one sweep
    /// (commit-stamped keys already make stale entries unreachable;
    /// sweeping also reclaims their memory immediately and feeds the
    /// invalidation counter), while commit-id-pinned versioned
    /// responses stay valid forever and are kept.
    pub fn sweep_unpinned(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").sweep_unpinned())
            .sum()
    }

    /// Entries currently held (expired-but-unreclaimed entries count).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in [0, 1]; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<CachedBody> {
        Arc::new(CachedBody {
            status: 200,
            content_type: "text/plain".into(),
            headers: Vec::new(),
            body: s.as_bytes().to_vec(),
        })
    }

    #[test]
    fn max_entry_bytes_refuses_oversized_bodies() {
        let c = ShardedLru::with_max_entry_bytes(2, 8, Duration::from_secs(60), 4);
        assert!(c.put("small".into(), body("abcd")), "at the cap is stored");
        assert!(!c.put("big".into(), body("abcde")), "over the cap refused");
        assert!(c.get("small").is_some());
        assert!(c.get("big").is_none());
        assert_eq!(c.max_entry_bytes(), 4);
        assert_eq!(ShardedLru::new(1, 1, Duration::ZERO).max_entry_bytes(), usize::MAX);
    }

    #[test]
    fn get_put_and_hit_accounting() {
        let c = ShardedLru::new(4, 8, Duration::from_secs(60));
        assert!(c.get("k").is_none());
        assert!(c.put("k".into(), body("v")));
        assert_eq!(c.get("k").unwrap().body, b"v");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard so eviction order is observable.
        let c = ShardedLru::new(1, 3, Duration::from_secs(60));
        c.put("a".into(), body("1"));
        c.put("b".into(), body("2"));
        c.put("c".into(), body("3"));
        // Touch "a" so "b" is now least-recent.
        assert!(c.get("a").is_some());
        c.put("d".into(), body("4"));
        assert!(c.get("b").is_none(), "b evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert!(c.get("d").is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn ttl_expires_entries() {
        let c = ShardedLru::new(2, 4, Duration::from_millis(30));
        c.put("k".into(), body("v"));
        assert!(c.get("k").is_some());
        std::thread::sleep(Duration::from_millis(60));
        assert!(c.get("k").is_none(), "expired entry is a miss");
        assert_eq!(c.len(), 0, "expired entry reclaimed on access");
    }

    #[test]
    fn expired_entries_are_swept_on_insert() {
        // Single shard, capacity 2: a and b expire untouched, so the
        // insert of c must reclaim them instead of letting them occupy
        // (and LRU-evict against) the full shard.
        let c = ShardedLru::new(1, 2, Duration::from_millis(30));
        c.put("a".into(), body("1"));
        c.put("b".into(), body("2"));
        assert_eq!(c.len(), 2);
        std::thread::sleep(Duration::from_millis(60));
        c.put("c".into(), body("3"));
        assert_eq!(c.len(), 1, "expired a and b no longer count against capacity");
        assert_eq!(c.get("c").unwrap().body, b"3");
        assert!(c.get("a").is_none());
        assert!(c.get("b").is_none());
    }

    #[test]
    fn refresh_invalidates_stale_expiry_entries() {
        // A refreshed key bumps the slot generation, so the original
        // expiry-queue entry must not reclaim the still-live refresh.
        let c = ShardedLru::new(1, 4, Duration::from_millis(40));
        c.put("k".into(), body("v1"));
        std::thread::sleep(Duration::from_millis(25));
        c.put("k".into(), body("v2")); // refresh: new expiry, new generation
        std::thread::sleep(Duration::from_millis(25));
        // Original expiry has passed; the refresh has not. The sweep on
        // this insert pops the stale entry but leaves k alone.
        c.put("other".into(), body("x"));
        assert_eq!(c.get("k").unwrap().body, b"v2", "refreshed entry survives");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refresh_updates_value_and_recency() {
        let c = ShardedLru::new(1, 2, Duration::from_secs(60));
        c.put("a".into(), body("1"));
        c.put("b".into(), body("2"));
        c.put("a".into(), body("1b"));
        c.put("c".into(), body("3")); // evicts b (a was refreshed)
        assert_eq!(c.get("a").unwrap().body, b"1b");
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn slab_reuse_survives_churn() {
        let c = ShardedLru::new(2, 16, Duration::from_secs(60));
        for round in 0..50 {
            for i in 0..40 {
                c.put(format!("k{i}"), body(&format!("r{round}v{i}")));
            }
        }
        assert!(c.len() <= 32, "bounded by shard capacities");
        // Recent keys are present with their latest values.
        let v = c.get("k39").expect("most recent key cached");
        assert_eq!(v.body, b"r49v39");
    }

    #[test]
    fn pinned_entries_survive_sweep_and_never_expire() {
        let c = ShardedLru::new(1, 8, Duration::from_millis(30));
        assert!(c.put_pinned("v1".into(), body("versioned")));
        c.put("head".into(), body("h"));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(c.get("v1").unwrap().body, b"versioned", "no TTL on pinned");
        assert!(c.get("head").is_none(), "unpinned entry expired");
        c.put("head2".into(), body("h2"));
        assert_eq!(c.sweep_unpinned(), 1, "only the unpinned entry swept");
        assert_eq!(c.get("v1").unwrap().body, b"versioned");
        assert!(c.get("head2").is_none());
        // Pinned entries are still LRU-evictable under pressure.
        let small = ShardedLru::new(1, 2, Duration::from_secs(60));
        small.put_pinned("a".into(), body("1"));
        small.put("b".into(), body("2"));
        small.put("c".into(), body("3"));
        assert!(small.get("a").is_none(), "pinned but least-recent: evicted");
        // clear() still drops pinned entries (teardown semantics).
        assert_eq!(c.clear(), 1);
        assert!(c.get("v1").is_none());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = Arc::new(ShardedLru::new(8, 64, Duration::from_secs(60)));
        ee_util::par::fan_out(8, |w| {
            for i in 0..500 {
                let key = format!("k{}", (w * 31 + i) % 100);
                if i % 3 == 0 {
                    c.put(key, body("x"));
                } else {
                    let _ = c.get(&key);
                }
            }
        });
        assert!(c.len() <= 8 * 64);
        assert!(c.hits() + c.misses() > 0);
    }
}
