//! A minimal HTTP/1.1 wire implementation: request parsing, response
//! emission (full or chunked), and the tiny client-side reader the load
//! generator and the integration tests share.
//!
//! Deliberately small — exactly the subset the serving tier needs:
//! request line + headers + `Content-Length` request bodies,
//! percent-decoded paths and query strings, keep-alive semantics
//! (HTTP/1.1 persistent by default, `Connection: close` honoured both
//! ways), and `Transfer-Encoding: chunked` on the **response** side so
//! large bodies stream incrementally instead of materialising in one
//! `Vec<u8>`. No request-side chunked bodies, no trailers, no upgrade.
//!
//! A response body is a [`Body`]: either [`Body::Full`] (sized,
//! `Content-Length`) or [`Body::Streamed`] (a pull-based [`BodyStream`]
//! producer, chunked framing). The request-side 1 MiB cap stays; there
//! is no response-side cap — that is the point of streaming.

use std::io::{BufRead, Write};

/// Largest accepted **request** body. Anything bigger is refused with
/// 413 rather than buffered — the serving tier fronts read-mostly
/// analytics. Responses are uncapped: large bodies stream chunked.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header section (request line + all headers).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parse failure, mapped by the server onto a 4xx response (or a silent
/// close for `ConnectionClosed`).
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first byte of a request — the peer hung up
    /// between keep-alive requests; not an error worth a response.
    ConnectionClosed,
    /// Read timed out waiting for the next request on a kept-alive
    /// connection.
    IdleTimeout,
    /// Malformed request (bad request line, header, or length).
    Malformed(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// Underlying socket error mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle timeout"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path component, e.g. `/tiles/2/0/1`.
    pub path: String,
    /// Decoded query parameters in document order.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// True when the request used HTTP/1.1 (keep-alive by default).
    pub http11: bool,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a query parameter with `FromStr`, falling back on absence or
    /// garbage.
    pub fn param_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.param(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the connection should stay open after this exchange.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Read one request from a buffered stream.
///
/// Blocks until a full request arrives, the peer closes, or the stream's
/// read timeout fires (surfaced as [`HttpError::IdleTimeout`]).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let mut line = String::new();
    read_crlf_line(r, &mut line, true)?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line".into()));
    }
    let http11 = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        read_crlf_line(r, &mut h, false)?;
        if h.is_empty() {
            break;
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {h:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(HttpError::Io)?;
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    Ok(Request {
        method,
        path: percent_decode(path_raw),
        query: query_raw.map(parse_query).unwrap_or_default(),
        headers,
        body,
        http11,
    })
}

/// Read a CRLF (or bare-LF) terminated line, stripped of the terminator.
/// `at_boundary` marks the first read of a request, where clean EOF means
/// the peer ended the keep-alive session rather than truncated a message.
fn read_crlf_line<R: BufRead>(
    r: &mut R,
    out: &mut String,
    at_boundary: bool,
) -> Result<(), HttpError> {
    let mut buf = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if at_boundary && buf.is_empty() {
                    Err(HttpError::ConnectionClosed)
                } else {
                    Err(HttpError::Malformed("unexpected EOF in line".into()))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_HEADER_BYTES {
                    return Err(HttpError::Malformed("line too long".into()));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return if at_boundary && buf.is_empty() {
                    Err(HttpError::IdleTimeout)
                } else {
                    Err(HttpError::Io(e))
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    *out = String::from_utf8(buf)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))?;
    Ok(())
}

/// Decode `%XX` sequences and `+`-as-space.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a raw query string into decoded key/value pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// A pull-based producer of response-body bytes.
///
/// `next_chunk` returns `Some(chunk)` until the body is exhausted, then
/// `None`. The returned slice borrows the producer's internal buffer and
/// is valid until the next call. Empty chunks are permitted (the writer
/// skips them — an empty chunk would terminate chunked framing early).
/// Errors abort the response mid-stream; with chunked framing the peer
/// observes the truncation (no terminating `0\r\n\r\n`).
pub trait BodyStream: Send {
    /// Produce the next chunk of body bytes, or `None` when done.
    fn next_chunk(&mut self) -> std::io::Result<Option<&[u8]>>;
}

/// A [`BodyStream`] over a fixed sequence of chunks — the simplest
/// producer, used by tests and anywhere the chunking is precomputed.
pub struct ChunkedSlices {
    chunks: Vec<Vec<u8>>,
    next: usize,
}

impl ChunkedSlices {
    /// A stream yielding `chunks` in order.
    pub fn new(chunks: Vec<Vec<u8>>) -> Self {
        ChunkedSlices { chunks, next: 0 }
    }
}

impl BodyStream for ChunkedSlices {
    fn next_chunk(&mut self) -> std::io::Result<Option<&[u8]>> {
        if self.next >= self.chunks.len() {
            return Ok(None);
        }
        self.next += 1;
        Ok(Some(&self.chunks[self.next - 1]))
    }
}

/// A response body: fully materialised (`Content-Length` framing) or an
/// incremental producer (`Transfer-Encoding: chunked` framing).
pub enum Body {
    /// Sized body, written in one piece.
    Full(Vec<u8>),
    /// Incremental body, written chunk by chunk as the producer yields.
    Streamed(Box<dyn BodyStream>),
}

impl Body {
    /// An empty sized body (304s, HEAD-ish replies).
    pub fn empty() -> Body {
        Body::Full(Vec::new())
    }

    /// True for [`Body::Streamed`].
    pub fn is_streamed(&self) -> bool {
        matches!(self, Body::Streamed(_))
    }

    /// The sized bytes of a [`Body::Full`]; `None` for streams.
    pub fn as_full(&self) -> Option<&[u8]> {
        match self {
            Body::Full(b) => Some(b),
            Body::Streamed(_) => None,
        }
    }

    /// Drain the body into one `Vec<u8>` (tests and non-wire callers).
    /// Full bodies move out; streams are pulled to exhaustion.
    pub fn collect(self) -> std::io::Result<Vec<u8>> {
        match self {
            Body::Full(b) => Ok(b),
            Body::Streamed(mut s) => {
                let mut out = Vec::new();
                while let Some(chunk) = s.next_chunk()? {
                    out.extend_from_slice(chunk);
                }
                Ok(out)
            }
        }
    }
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Full(b) => write!(f, "Body::Full({} bytes)", b.len()),
            Body::Streamed(_) => write!(f, "Body::Streamed(..)"),
        }
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Extra headers (`Content-Length` / `Transfer-Encoding`,
    /// `Connection` and `Content-Type` are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, v: &ee_util::json::Json) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: Body::Full(v.emit().into_bytes()),
        }
    }

    /// A JSON error body `{"error": ...}`.
    pub fn error(status: u16, message: &str) -> Response {
        let v = ee_util::json::Json::obj(vec![(
            "error",
            ee_util::json::Json::Str(message.to_string()),
        )]);
        Response::json(status, &v)
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            headers: Vec::new(),
            body: Body::Full(body.into().into_bytes()),
        }
    }

    /// A binary response.
    pub fn octets(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/octet-stream".into(),
            headers: Vec::new(),
            body: Body::Full(body),
        }
    }

    /// A streamed response: the body is produced incrementally by
    /// `stream` and transmitted with chunked framing.
    pub fn streamed(
        status: u16,
        content_type: impl Into<String>,
        stream: Box<dyn BodyStream>,
    ) -> Response {
        Response {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body: Body::Streamed(stream),
        }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialise onto the wire. `keep_alive` controls the `Connection`
    /// header; the caller decides whether to actually reuse the socket.
    /// Streamed bodies are pulled to exhaustion (hence `&mut self`).
    pub fn write_to<W: Write>(&mut self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        self.write_to_observed(w, keep_alive, |_| true)
    }

    /// [`write_to`](Response::write_to) with a per-chunk observer.
    ///
    /// `observe` sees every body chunk before it is written (full bodies
    /// are one chunk) — the server uses it to tee streamed bodies into
    /// the response cache, count bytes sent, and timestamp the first
    /// byte. For **streamed** bodies a `false` return aborts the
    /// response between chunks (the deadline-between-chunks rule: the
    /// peer sees a truncated chunked body, never a stalled worker); for
    /// full bodies the return value is ignored — a sized response that
    /// made it through its handler is always transmitted whole.
    pub fn write_to_observed<W: Write>(
        &mut self,
        w: &mut W,
        keep_alive: bool,
        mut observe: impl FnMut(&[u8]) -> bool,
    ) -> std::io::Result<()> {
        let head = self.head_bytes(keep_alive);
        w.write_all(&head)?;
        match &mut self.body {
            Body::Full(b) => {
                observe(b);
                w.write_all(b)?;
            }
            Body::Streamed(s) => {
                let mut frame = Vec::new();
                while let Some(chunk) = s.next_chunk()? {
                    if chunk.is_empty() {
                        continue; // an empty chunk would mean "end of body"
                    }
                    if !observe(chunk) {
                        w.flush()?;
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "response aborted between chunks",
                        ));
                    }
                    frame.clear();
                    frame_chunk(chunk, &mut frame);
                    w.write_all(&frame)?;
                }
                w.write_all(CHUNK_TERMINATOR)?;
            }
        }
        w.flush()
    }

    /// The serialised status line + headers + blank line, exactly as
    /// [`write_to_observed`](Response::write_to_observed) emits them.
    /// Shared by the blocking writer and the event loop's send buffer so
    /// the two paths are byte-identical by construction.
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let framing = match &self.body {
            Body::Full(b) => format!("content-length: {}", b.len()),
            Body::Streamed(_) => "transfer-encoding: chunked".to_string(),
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n{}\r\ncontent-type: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            framing,
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (n, v) in &self.headers {
            head.push_str(n);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        head.into_bytes()
    }
}

/// The final frame of a chunked body: zero-size chunk + empty trailers.
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Append one chunked-framing frame (`{len:x}\r\n{chunk}\r\n`) to `out`.
/// Empty chunks are skipped — framing one would terminate the body early.
/// Shared by the blocking writer and the event loop's chunk producer.
pub fn frame_chunk(chunk: &[u8], out: &mut Vec<u8>) {
    if chunk.is_empty() {
        return;
    }
    use std::io::Write as _;
    write!(out, "{:x}\r\n", chunk.len()).expect("write into Vec cannot fail");
    out.extend_from_slice(chunk);
    out.extend_from_slice(b"\r\n");
}

/// An incremental request parser for nonblocking sockets: feed it bytes
/// as they arrive, poll it for a complete request. Parsing of a complete
/// message is delegated to [`read_request`] over the accumulated bytes,
/// so the event loop accepts and rejects exactly what the blocking path
/// does.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser with no buffered bytes.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// True when no partial request is buffered — the connection is idle
    /// between requests (idle-timeout territory) rather than mid-message
    /// (slow-loris / read-deadline territory).
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes currently buffered (partial request and/or pipelined next).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Append freshly-read socket bytes; follow with
    /// [`poll_request`](RequestParser::poll_request).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Try to extract one complete request from the buffer. `Ok(None)`
    /// means "need more bytes". Leftover bytes (pipelined requests) stay
    /// buffered for the next call. Errors are terminal for the
    /// connection, same as the blocking reader's.
    pub fn poll_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            // No blank line yet. Cap the raw accumulation: the blocking
            // reader bounds the header section at MAX_HEADER_BYTES of
            // line payload, so 2x raw bytes is unreachable for a legal
            // head and a slow-loris head must not grow without bound.
            if self.buf.len() > 2 * MAX_HEADER_BYTES {
                return Err(HttpError::Malformed("header section too large".into()));
            }
            return Ok(None);
        };
        let content_length = scan_content_length(&self.buf[..head_end]).unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            // Produce the error through the canonical parser so the
            // variant (and any future behaviour) matches the blocking
            // path exactly.
            let mut r = std::io::BufReader::new(&self.buf[..head_end]);
            return match read_request(&mut r) {
                Err(e) => Err(e),
                Ok(_) => Err(HttpError::BodyTooLarge(content_length)),
            };
        }
        let total = head_end + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut r = std::io::BufReader::new(&self.buf[..total]);
        let req = read_request(&mut r)?;
        self.buf.drain(..total);
        Ok(Some(req))
    }
}

/// Index one past the blank line ending a request head, if present.
/// Accepts both CRLF and bare-LF line endings, like [`read_crlf_line`].
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                Some(b'\n') => return Some(i + 2),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// First `Content-Length` value in a raw head, mirroring
/// [`read_request`]'s first-match selection. `None` for absent or
/// unparseable values — the canonical parser then reports the error.
fn scan_content_length(head: &[u8]) -> Option<usize> {
    for line in head.split(|&b| b == b'\n') {
        let line = std::str::from_utf8(line).ok()?;
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

/// An outgoing byte queue for a nonblocking socket: push serialised
/// response bytes in, drain them out as the socket reports writable.
#[derive(Default)]
pub struct SendBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl SendBuf {
    /// An empty send buffer.
    pub fn new() -> SendBuf {
        SendBuf::default()
    }

    /// Queue bytes for transmission.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim the consumed prefix before growing.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unsent bytes still queued.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything pushed has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write as much as the socket will take. `Ok(true)` when the queue
    /// drained, `Ok(false)` when the socket would block with bytes still
    /// pending (re-arm `POLLOUT`). Other errors are terminal.
    pub fn write_some<W: Write>(&mut self, w: &mut W) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// Canonical reason phrase for the status codes this tier emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// A client-side response, as read by [`read_response`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Lower-cased header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open afterwards.
    pub keep_alive: bool,
}

impl ClientResponse {
    /// First value of a header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// The status line + headers of a response, read before any body bytes.
/// Splitting head from body lets the load generator timestamp the first
/// byte (TTFB) separately from total latency.
#[derive(Debug, Clone)]
pub struct ResponseHead {
    /// Status code.
    pub status: u16,
    /// Lower-cased header pairs.
    pub headers: Vec<(String, String)>,
    /// Whether the server will keep the connection open afterwards.
    pub keep_alive: bool,
}

impl ResponseHead {
    /// First value of a header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Read the status line and headers of one response. Returns once the
/// blank line is consumed — the body (if any) is still on the wire;
/// follow with [`read_response_body`].
pub fn read_response_head<R: BufRead>(r: &mut R) -> Result<ResponseHead, HttpError> {
    let mut line = String::new();
    read_crlf_line(r, &mut line, true)?;
    let mut parts = line.split_ascii_whitespace();
    let _version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".into()))?;
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        read_crlf_line(r, &mut h, false)?;
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let keep_alive = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .is_none_or(|(_, v)| !v.eq_ignore_ascii_case("close"));
    Ok(ResponseHead {
        status,
        headers,
        keep_alive,
    })
}

/// Read the body that follows `head`: `Content-Length`-sized, or chunked
/// frames decoded and concatenated when the head carried
/// `Transfer-Encoding: chunked`. Without either framing header the body
/// is taken to be empty (this tier never responds with read-to-EOF
/// bodies).
pub fn read_response_body<R: BufRead>(
    r: &mut R,
    head: &ResponseHead,
) -> Result<Vec<u8>, HttpError> {
    let chunked = head
        .header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    if chunked {
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            read_crlf_line(r, &mut size_line, false)?;
            // Ignore chunk extensions (";...") per RFC 9112 §7.1.1.
            let size_hex = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_hex, 16)
                .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: we send none, so expect the blank line.
                let mut trailer = String::new();
                read_crlf_line(r, &mut trailer, false)?;
                if !trailer.is_empty() {
                    return Err(HttpError::Malformed("unexpected trailer".into()));
                }
                return Ok(body);
            }
            let start = body.len();
            body.resize(start + size, 0);
            r.read_exact(&mut body[start..]).map_err(HttpError::Io)?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf).map_err(HttpError::Io)?;
            if &crlf != b"\r\n" {
                return Err(HttpError::Malformed("chunk not CRLF-terminated".into()));
            }
        }
    }
    let content_length = head
        .header("content-length")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(HttpError::Io)?;
    }
    Ok(body)
}

/// Read one response from a buffered stream (client side: load generator
/// and tests). Decodes both `Content-Length` and chunked framing.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<ClientResponse, HttpError> {
    let head = read_response_head(r)?;
    let body = read_response_body(r, &head)?;
    Ok(ClientResponse {
        status: head.status,
        headers: head.headers,
        body,
        keep_alive: head.keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_line_headers_and_query() {
        let raw = b"GET /query?x0=1.5&y0=2&mode=a%20b HTTP/1.1\r\nHost: x\r\nX-Trace: 7\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("x0"), Some("1.5"));
        assert_eq!(req.param("mode"), Some("a b"));
        assert_eq!(req.param_or("y0", 0.0), 2.0);
        assert_eq!(req.param_or("missing", 9usize), 9);
        assert_eq!(req.header("x-trace"), Some("7"));
        assert!(req.http11);
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(!req.wants_keep_alive());
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(!req.wants_keep_alive());
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn body_via_content_length() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.body, b"hello");
        // Oversized bodies are refused before allocation.
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match read_request(&mut BufReader::new(raw.as_bytes())) {
            Err(HttpError::BodyTooLarge(_)) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn eof_at_boundary_is_connection_closed() {
        let raw = b"";
        match read_request(&mut BufReader::new(&raw[..])) {
            Err(HttpError::ConnectionClosed) => {}
            other => panic!("expected ConnectionClosed, got {other:?}"),
        }
        // EOF mid-message is malformed instead.
        let raw = b"GET / HTTP/1.1\r\nHost";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let mut resp = Response::json(
            200,
            &ee_util::json::Json::obj(vec![("ok", ee_util::json::Json::Bool(true))]),
        )
        .with_header("x-cache", "HIT");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let got = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.header("x-cache"), Some("HIT"));
        assert_eq!(got.header("connection"), Some("keep-alive"));
        assert_eq!(got.body, br#"{"ok":true}"#);
    }

    /// Write `chunks` as a streamed response, return (wire bytes, decoded
    /// client response).
    fn stream_roundtrip(chunks: Vec<Vec<u8>>) -> (Vec<u8>, ClientResponse) {
        let mut resp = Response::streamed(
            200,
            "application/octet-stream",
            Box::new(ChunkedSlices::new(chunks)),
        );
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let got = read_response(&mut BufReader::new(&wire[..])).unwrap();
        (wire, got)
    }

    #[test]
    fn chunked_empty_body_roundtrips() {
        let (wire, got) = stream_roundtrip(vec![]);
        assert_eq!(got.status, 200);
        assert_eq!(got.header("transfer-encoding"), Some("chunked"));
        assert!(got.header("content-length").is_none());
        assert!(got.body.is_empty());
        // The wire carries exactly the last-chunk marker.
        assert!(wire.ends_with(b"\r\n\r\n0\r\n\r\n"));
    }

    #[test]
    fn chunked_one_byte_chunks_roundtrip() {
        let payload = b"streaming, one byte at a time";
        let chunks: Vec<Vec<u8>> = payload.iter().map(|&b| vec![b]).collect();
        let (_, got) = stream_roundtrip(chunks);
        assert_eq!(got.body, payload);
    }

    #[test]
    fn chunked_empty_chunks_are_skipped_not_terminators() {
        let (_, got) = stream_roundtrip(vec![
            Vec::new(),
            b"alpha".to_vec(),
            Vec::new(),
            b"beta".to_vec(),
            Vec::new(),
        ]);
        assert_eq!(got.body, b"alphabeta");
    }

    #[test]
    fn chunked_body_straddles_small_read_buffer() {
        // Chunks larger than the reader's internal buffer force every
        // read_exact path to loop across buffer refills.
        let big: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut resp = Response::streamed(
            200,
            "application/octet-stream",
            Box::new(ChunkedSlices::new(vec![
                big.clone(),
                b"tail".to_vec(),
                big.clone(),
            ])),
        );
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let mut reader = BufReader::with_capacity(7, &wire[..]);
        let got = read_response(&mut reader).unwrap();
        let mut want = big.clone();
        want.extend_from_slice(b"tail");
        want.extend_from_slice(&big);
        assert_eq!(got.body, want);
        assert!(!got.keep_alive);
    }

    #[test]
    fn chunk_extensions_are_ignored_by_decoder() {
        let wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\n\r\n";
        let got = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(got.body, b"hello");
    }

    #[test]
    fn observer_false_aborts_stream_between_chunks() {
        let mut resp = Response::streamed(
            200,
            "application/octet-stream",
            Box::new(ChunkedSlices::new(vec![b"one".to_vec(), b"two".to_vec()])),
        );
        let mut wire = Vec::new();
        let mut seen = 0;
        let err = resp
            .write_to_observed(&mut wire, true, |_| {
                seen += 1;
                seen < 2
            })
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        // First chunk made it out; no terminating 0-chunk followed, so a
        // client sees the truncation.
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("one"));
        assert!(!text.contains("two"));
        assert!(!wire.ends_with(b"0\r\n\r\n"));
    }

    #[test]
    fn body_collect_drains_streams() {
        let body = Body::Streamed(Box::new(ChunkedSlices::new(vec![
            b"a".to_vec(),
            b"bc".to_vec(),
        ])));
        assert!(body.is_streamed());
        assert_eq!(body.collect().unwrap(), b"abc");
        assert_eq!(Body::Full(b"xy".to_vec()).collect().unwrap(), b"xy");
        assert_eq!(Body::empty().as_full(), Some(&b""[..]));
    }

    #[test]
    fn incremental_parser_matches_blocking_reader_byte_at_a_time() {
        let raw: &[u8] =
            b"POST /query?mode=a%20b HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let want = read_request(&mut BufReader::new(raw)).unwrap();
        let mut parser = RequestParser::new();
        let mut got = None;
        for (i, b) in raw.iter().enumerate() {
            parser.feed(&[*b]);
            if let Some(req) = parser.poll_request().unwrap() {
                assert_eq!(i, raw.len() - 1, "parsed before all bytes arrived");
                got = Some(req);
            }
        }
        let got = got.expect("request parsed");
        assert_eq!(got.method, want.method);
        assert_eq!(got.path, want.path);
        assert_eq!(got.query, want.query);
        assert_eq!(got.headers, want.headers);
        assert_eq!(got.body, want.body);
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let a = parser.poll_request().unwrap().unwrap();
        assert_eq!(a.path, "/a");
        assert!(!parser.is_idle());
        let b = parser.poll_request().unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert!(parser.is_idle());
        assert!(parser.poll_request().unwrap().is_none());
    }

    #[test]
    fn incremental_parser_rejects_oversize_heads_and_bodies() {
        // A never-terminated head stops accumulating at the cap.
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; 2 * MAX_HEADER_BYTES + 16];
        parser.feed(&filler);
        assert!(matches!(
            parser.poll_request(),
            Err(HttpError::Malformed(_))
        ));
        // An oversized declared body is refused as soon as the head is
        // complete, without waiting for the body bytes.
        let mut parser = RequestParser::new();
        parser.feed(
            format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        assert!(matches!(
            parser.poll_request(),
            Err(HttpError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn head_bytes_and_frame_chunk_match_blocking_writer() {
        let chunks = vec![b"alpha".to_vec(), Vec::new(), b"beta-gamma".to_vec()];
        let mut resp = Response::streamed(
            200,
            "application/json",
            Box::new(ChunkedSlices::new(chunks.clone())),
        )
        .with_header("etag", "\"abc\"");
        let head = resp.head_bytes(true);
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        assert!(wire.starts_with(&head));
        let mut rebuilt = head;
        for c in &chunks {
            frame_chunk(c, &mut rebuilt);
        }
        rebuilt.extend_from_slice(CHUNK_TERMINATOR);
        assert_eq!(rebuilt, wire);
    }

    /// A writer that accepts a fixed quota of bytes per call, then
    /// reports `WouldBlock` — a nonblocking socket in miniature.
    struct Trickle {
        out: Vec<u8>,
        quota: usize,
        calls: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(2) {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "later"));
            }
            let n = buf.len().min(self.quota);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_buf_resumes_across_would_block() {
        let mut sb = SendBuf::new();
        sb.push(b"hello ");
        sb.push(b"world");
        let mut w = Trickle {
            out: Vec::new(),
            quota: 3,
            calls: 0,
        };
        let mut rounds = 0;
        while !sb.write_some(&mut w).unwrap() {
            rounds += 1;
            assert!(rounds < 100, "never drained");
        }
        assert!(sb.is_empty());
        assert_eq!(w.out, b"hello world");
        assert!(rounds > 0, "Trickle must have exercised WouldBlock");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c%zz%"), "a/b c%zz%");
        let q = parse_query("a=1&b&=x&c=%E2%82%AC");
        assert_eq!(q[0], ("a".into(), "1".into()));
        assert_eq!(q[1], ("b".into(), "".into()));
        assert_eq!(q[3], ("c".into(), "€".into()));
    }
}
