//! A minimal HTTP/1.1 wire implementation: request parsing, response
//! emission, and the tiny client-side reader the load generator and the
//! integration tests share.
//!
//! Deliberately small — exactly the subset the serving tier needs:
//! request line + headers + `Content-Length` bodies, percent-decoded
//! paths and query strings, and keep-alive semantics (HTTP/1.1 persistent
//! by default, `Connection: close` honoured both ways). No chunked
//! transfer encoding, no trailers, no upgrade.

use std::io::{BufRead, Write};

/// Largest accepted request body. Anything bigger is refused with 413
/// rather than buffered — the serving tier fronts read-mostly analytics.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted header section (request line + all headers).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parse failure, mapped by the server onto a 4xx response (or a silent
/// close for `ConnectionClosed`).
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first byte of a request — the peer hung up
    /// between keep-alive requests; not an error worth a response.
    ConnectionClosed,
    /// Read timed out waiting for the next request on a kept-alive
    /// connection.
    IdleTimeout,
    /// Malformed request (bad request line, header, or length).
    Malformed(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// Underlying socket error mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle timeout"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path component, e.g. `/tiles/2/0/1`.
    pub path: String,
    /// Decoded query parameters in document order.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// True when the request used HTTP/1.1 (keep-alive by default).
    pub http11: bool,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a query parameter with `FromStr`, falling back on absence or
    /// garbage.
    pub fn param_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.param(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the connection should stay open after this exchange.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Read one request from a buffered stream.
///
/// Blocks until a full request arrives, the peer closes, or the stream's
/// read timeout fires (surfaced as [`HttpError::IdleTimeout`]).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let mut line = String::new();
    read_crlf_line(r, &mut line, true)?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line".into()));
    }
    let http11 = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        read_crlf_line(r, &mut h, false)?;
        if h.is_empty() {
            break;
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {h:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(HttpError::Io)?;
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    Ok(Request {
        method,
        path: percent_decode(path_raw),
        query: query_raw.map(parse_query).unwrap_or_default(),
        headers,
        body,
        http11,
    })
}

/// Read a CRLF (or bare-LF) terminated line, stripped of the terminator.
/// `at_boundary` marks the first read of a request, where clean EOF means
/// the peer ended the keep-alive session rather than truncated a message.
fn read_crlf_line<R: BufRead>(
    r: &mut R,
    out: &mut String,
    at_boundary: bool,
) -> Result<(), HttpError> {
    let mut buf = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if at_boundary && buf.is_empty() {
                    Err(HttpError::ConnectionClosed)
                } else {
                    Err(HttpError::Malformed("unexpected EOF in line".into()))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_HEADER_BYTES {
                    return Err(HttpError::Malformed("line too long".into()));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return if at_boundary && buf.is_empty() {
                    Err(HttpError::IdleTimeout)
                } else {
                    Err(HttpError::Io(e))
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    *out = String::from_utf8(buf)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))?;
    Ok(())
}

/// Decode `%XX` sequences and `+`-as-space.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a raw query string into decoded key/value pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Extra headers (`Content-Length`, `Connection` and `Content-Type`
    /// are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, v: &ee_util::json::Json) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: v.emit().into_bytes(),
        }
    }

    /// A JSON error body `{"error": ...}`.
    pub fn error(status: u16, message: &str) -> Response {
        let v = ee_util::json::Json::obj(vec![(
            "error",
            ee_util::json::Json::Str(message.to_string()),
        )]);
        Response::json(status, &v)
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A binary response.
    pub fn octets(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/octet-stream".into(),
            headers: Vec::new(),
            body,
        }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialise onto the wire. `keep_alive` controls the `Connection`
    /// header; the caller decides whether to actually reuse the socket.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\ncontent-type: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (n, v) in &self.headers {
            head.push_str(n);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for the status codes this tier emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// A client-side response, as read by [`read_response`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Lower-cased header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open afterwards.
    pub keep_alive: bool,
}

impl ClientResponse {
    /// First value of a header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one response from a buffered stream (client side: load generator
/// and tests).
pub fn read_response<R: BufRead>(r: &mut R) -> Result<ClientResponse, HttpError> {
    let mut line = String::new();
    read_crlf_line(r, &mut line, true)?;
    let mut parts = line.split_ascii_whitespace();
    let _version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".into()))?;
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        read_crlf_line(r, &mut h, false)?;
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(HttpError::Io)?;
    let keep_alive = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .is_none_or(|(_, v)| !v.eq_ignore_ascii_case("close"));
    Ok(ClientResponse {
        status,
        headers,
        body,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_line_headers_and_query() {
        let raw = b"GET /query?x0=1.5&y0=2&mode=a%20b HTTP/1.1\r\nHost: x\r\nX-Trace: 7\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("x0"), Some("1.5"));
        assert_eq!(req.param("mode"), Some("a b"));
        assert_eq!(req.param_or("y0", 0.0), 2.0);
        assert_eq!(req.param_or("missing", 9usize), 9);
        assert_eq!(req.header("x-trace"), Some("7"));
        assert!(req.http11);
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(!req.wants_keep_alive());
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(!req.wants_keep_alive());
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn body_via_content_length() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.body, b"hello");
        // Oversized bodies are refused before allocation.
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match read_request(&mut BufReader::new(raw.as_bytes())) {
            Err(HttpError::BodyTooLarge(_)) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn eof_at_boundary_is_connection_closed() {
        let raw = b"";
        match read_request(&mut BufReader::new(&raw[..])) {
            Err(HttpError::ConnectionClosed) => {}
            other => panic!("expected ConnectionClosed, got {other:?}"),
        }
        // EOF mid-message is malformed instead.
        let raw = b"GET / HTTP/1.1\r\nHost";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let resp = Response::json(
            200,
            &ee_util::json::Json::obj(vec![("ok", ee_util::json::Json::Bool(true))]),
        )
        .with_header("x-cache", "HIT");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let got = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.header("x-cache"), Some("HIT"));
        assert_eq!(got.header("connection"), Some("keep-alive"));
        assert_eq!(got.body, br#"{"ok":true}"#);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c%zz%"), "a/b c%zz%");
        let q = parse_query("a=1&b&=x&c=%E2%82%AC");
        assert_eq!(q[0], ("a".into(), "1".into()));
        assert_eq!(q[1], ("b".into(), "".into()));
        assert_eq!(q[3], ("c".into(), "€".into()));
    }
}
