//! # ee-serve — the serving tier
//!
//! A dependency-free (std-only) multi-threaded HTTP/1.1 server that
//! fronts the workspace's analytics engines, closing the loop from the
//! paper's batch experiments to an interactive access layer: the hot
//! spatial-selection, catalogue-search, tile-overview and sea-ice
//! product paths become network services with caching, admission
//! control, and observable latency.
//!
//! Routes:
//!
//! | Route | Engine | Paper path |
//! |---|---|---|
//! | `GET /query` | `ee-rdf` BGP + spatial filter | E2/E3 selections |
//! | `POST /update` | `ee-rdf` SPARQL UPDATE (durable commit) | live ingest |
//! | `GET /catalogue/search` | `ee-catalogue` classic / semantic | E9 |
//! | `GET /tiles/{level}/{row}/{col}` | `ee-raster` overview pyramid | browse imagery |
//! | `GET /ice/{region}` | `ee-polar` PCDSS bundle | E12 |
//! | `GET /healthz` | — | liveness + data inventory |
//! | `GET /metrics` | — | Prometheus text format |
//!
//! Module map: [`http`] wire parsing (blocking and resumable
//! nonblocking forms), [`router`] request→engine dispatch, [`state`]
//! the engines, [`cache`] a sharded LRU with TTL, [`metrics`] counters
//! and latency histograms, [`server`] the two connection architectures
//! — the default poll-driven event loop (C10K tier) and the
//! thread-per-connection baseline — over one shared resolution core,
//! [`loadgen`] the closed-loop client driving E-s0 and the open-loop
//! nonblocking fleet driving E-c8, [`shard`] the scale-out router tier
//! (`--router`): scatter-gather `/query` over N shard processes with
//! canonical merges, consistent-hash forwarding for `/tiles` and
//! `/ice`, per-shard deadlines with partial results, and hedged
//! requests against slow shards.

pub mod cache;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod server;
pub mod shard;
pub mod state;

pub use server::{start, ServerConfig, ServerHandle, ServerKind};
pub use shard::RouterTier;
pub use state::{AppState, DataConfig};
