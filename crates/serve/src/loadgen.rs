//! Load generators for the serving tier: a closed-loop thread fleet and
//! an open-loop nonblocking fleet.
//!
//! **Closed loop** ([`run`]): `N` client threads each drive real
//! localhost TCP connections against a running server: issue a request,
//! wait for the full response, record the latency, repeat. Closed-loop
//! means offered load adapts to service rate — exactly the client model
//! behind the E-s0 experiment's concurrency sweep.
//!
//! Two connection modes:
//!
//! * [`ConnMode::PerRequest`] — a fresh connection per request. Every
//!   request passes admission control, so this is the mode that probes
//!   the 503 watermark under overload.
//! * [`ConnMode::KeepAlive`] — one persistent connection per client
//!   reused for all its requests; measures steady-state service latency
//!   (and warm-cache behaviour) without per-connection setup noise.
//!
//! **Open loop** ([`run_open_loop`]): one poll-driven thread holds
//! thousands of concurrent nonblocking keep-alive connections and issues
//! requests at a **fixed arrival rate** spread across the fleet —
//! offered load does *not* adapt to service rate, so queueing delay
//! shows up in the latency numbers instead of silently throttling the
//! generator. This is the C10K client model behind E-c8: a mostly-idle
//! fleet (rate ≪ connections) probing how much memory and tail latency
//! each parked connection costs the server.

use crate::http::{read_response_body, read_response_head, ClientResponse, HttpError};
use ee_util::http1::ResponseDecoder;
use ee_util::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How clients manage connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// Fresh connection per request: every request faces admission.
    PerRequest,
    /// One keep-alive connection per client thread.
    KeepAlive,
}

/// A load-generation plan.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Connection management mode.
    pub mode: ConnMode,
    /// Client-side socket timeout.
    pub timeout: Duration,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            clients: 4,
            requests_per_client: 50,
            mode: ConnMode::KeepAlive,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// 2xx responses.
    pub ok: u64,
    /// 503 admission rejections.
    pub rejected: u64,
    /// 504 deadline expiries.
    pub expired: u64,
    /// Other HTTP statuses (4xx bugs in the target list, 5xx…).
    pub other: u64,
    /// Transport-level failures (connect refused, timeout, short read).
    pub errors: u64,
    /// `x-cache: HIT` responses among the 2xx.
    pub cache_hits: u64,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// Latency percentiles over **successful (2xx) requests**, µs.
    pub p50_us: u64,
    /// 95th percentile latency, µs.
    pub p95_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// Mean 2xx latency, µs.
    pub mean_us: u64,
    /// p99 over every *admitted* request (2xx + 504): the bounded-tail
    /// criterion under overload.
    pub admitted_p99_us: u64,
    /// Time-to-first-byte percentiles over 2xx requests, µs: the clock
    /// stops when the response head has been read, before the body
    /// drains. For streamed responses this is the number that chunked
    /// transfer improves — the first tile chunk arrives while the rest
    /// is still being encoded.
    pub ttfb_p50_us: u64,
    /// 95th percentile TTFB, µs.
    pub ttfb_p95_us: u64,
    /// 99th percentile TTFB, µs.
    pub ttfb_p99_us: u64,
}

impl LoadReport {
    /// Completed requests of any status (excludes transport errors).
    pub fn completed(&self) -> u64 {
        self.ok + self.rejected + self.expired + self.other
    }

    /// Successful requests per second over the wall-clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Issue one request and read the response in two stages, returning the
/// response and the time-to-first-byte (head read) in microseconds.
fn issue(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    keep_alive: bool,
) -> Result<(ClientResponse, u64), HttpError> {
    let conn_header = if keep_alive { "keep-alive" } else { "close" };
    let req = format!(
        "GET {target} HTTP/1.1\r\nhost: localhost\r\nconnection: {conn_header}\r\n\r\n"
    );
    let t0 = Instant::now();
    stream.write_all(req.as_bytes()).map_err(HttpError::Io)?;
    stream.flush().map_err(HttpError::Io)?;
    let head = read_response_head(reader)?;
    let ttfb_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let body = read_response_body(reader, &head)?;
    Ok((
        ClientResponse {
            status: head.status,
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        },
        ttfb_us,
    ))
}

/// Run the plan against `addr`, each client cycling through `targets`
/// round-robin (offset by client id so clients don't move in lock-step).
///
/// Panics if `targets` is empty.
pub fn run(addr: SocketAddr, targets: &[String], plan: &LoadPlan) -> LoadReport {
    assert!(!targets.is_empty(), "loadgen needs at least one target");
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let ok_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let admitted_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let ttfb_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    ee_util::par::fan_out(plan.clients.max(1), |client| {
        let mut local_ok: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
        let mut local_admitted: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
        let mut local_ttfb: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
        let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
        for i in 0..plan.requests_per_client {
            let target = &targets[(client + i) % targets.len()];
            if conn.is_none() {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_read_timeout(Some(plan.timeout));
                        let _ = s.set_write_timeout(Some(plan.timeout));
                        let _ = s.set_nodelay(true);
                        match s.try_clone() {
                            Ok(r) => conn = Some((s, BufReader::new(r))),
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            let keep_alive = plan.mode == ConnMode::KeepAlive;
            let (stream, reader) = conn.as_mut().expect("connection just established");
            let start = Instant::now();
            let resp = issue(stream, reader, target, keep_alive);
            let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            match resp {
                Ok((r, ttfb_us)) => {
                    match r.status {
                        200..=299 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if r.header("x-cache").is_some_and(|v| v == "HIT") {
                                cache_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            local_ok.push(us);
                            local_admitted.push(us);
                            local_ttfb.push(ttfb_us);
                        }
                        503 => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        504 => {
                            expired.fetch_add(1, Ordering::Relaxed);
                            local_admitted.push(us);
                        }
                        _ => {
                            other.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The server closes after non-keep-alive exchanges and
                    // after error responses; reconnect next iteration.
                    if !keep_alive || !r.keep_alive {
                        conn = None;
                    }
                }
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    conn = None;
                }
            }
        }
        ok_lat.lock().expect("latency vec poisoned").extend(local_ok);
        admitted_lat
            .lock()
            .expect("latency vec poisoned")
            .extend(local_admitted);
        ttfb_lat
            .lock()
            .expect("latency vec poisoned")
            .extend(local_ttfb);
    });
    let wall = t0.elapsed();

    let mut ok_lat = ok_lat.into_inner().expect("latency vec poisoned");
    ok_lat.sort_unstable();
    let mut admitted_lat = admitted_lat.into_inner().expect("latency vec poisoned");
    admitted_lat.sort_unstable();
    let mut ttfb_lat = ttfb_lat.into_inner().expect("latency vec poisoned");
    ttfb_lat.sort_unstable();
    let mean_us = if ok_lat.is_empty() {
        0
    } else {
        ok_lat.iter().sum::<u64>() / ok_lat.len() as u64
    };
    LoadReport {
        ok: ok.into_inner(),
        rejected: rejected.into_inner(),
        expired: expired.into_inner(),
        other: other.into_inner(),
        errors: errors.into_inner(),
        cache_hits: cache_hits.into_inner(),
        wall,
        p50_us: percentile(&ok_lat, 0.50),
        p95_us: percentile(&ok_lat, 0.95),
        p99_us: percentile(&ok_lat, 0.99),
        mean_us,
        admitted_p99_us: percentile(&admitted_lat, 0.99),
        ttfb_p50_us: percentile(&ttfb_lat, 0.50),
        ttfb_p95_us: percentile(&ttfb_lat, 0.95),
        ttfb_p99_us: percentile(&ttfb_lat, 0.99),
    }
}

// ---------------------------------------------------------------------
// Open-loop nonblocking fleet
// ---------------------------------------------------------------------

/// Plan for an open-loop run: a fixed fleet of keep-alive connections
/// plus a fixed aggregate request arrival rate.
#[derive(Debug, Clone)]
pub struct OpenLoopPlan {
    /// Connections to hold open for the whole run.
    pub conns: usize,
    /// Aggregate request arrivals per second across the fleet.
    pub rate_per_sec: f64,
    /// Measurement window (in-flight requests get a short grace period
    /// to finish afterwards).
    pub duration: Duration,
    /// Connect retry budget while building the fleet.
    pub timeout: Duration,
}

impl Default for OpenLoopPlan {
    fn default() -> Self {
        OpenLoopPlan {
            conns: 100,
            rate_per_sec: 100.0,
            duration: Duration::from_millis(1_000),
            timeout: Duration::from_secs(5),
        }
    }
}

/// Results of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Fleet size the plan asked for.
    pub conns_target: usize,
    /// Connections actually established (fd limits, refused connects).
    pub conns_open: usize,
    /// Connections still alive when the run ended.
    pub conns_alive: usize,
    /// Requests issued.
    pub sent: u64,
    /// 2xx responses.
    pub ok: u64,
    /// Non-2xx responses.
    pub other: u64,
    /// Transport failures (close mid-response, malformed framing).
    pub errors: u64,
    /// Arrival ticks skipped because every connection was busy — a
    /// non-zero value means the fleet saturated (closed-loop behaviour
    /// crept in) and latency numbers understate queueing.
    pub missed_ticks: u64,
    /// Latency percentiles over 2xx requests, µs (measured from the
    /// scheduled arrival tick, so server queueing counts).
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Mean 2xx latency, µs.
    pub mean_us: u64,
    /// Wall-clock of the measurement window including the drain grace.
    pub wall: Duration,
}

/// What one open-loop connection is doing.
enum OpenState {
    /// Parked keep-alive connection, available for the next tick.
    Idle,
    /// Writing a request (nonblocking; resumes on POLLOUT).
    Sending {
        buf: Vec<u8>,
        pos: usize,
        t0: Instant,
    },
    /// Reading a response.
    Receiving { dec: ResponseDecoder, t0: Instant },
    /// Closed (server reap, transport error); stays dead for the run.
    Dead,
}

struct OpenConn {
    stream: TcpStream,
    state: OpenState,
}

fn connect_nonblocking(addr: SocketAddr, budget: Duration) -> Option<TcpStream> {
    let t0 = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                if s.set_nonblocking(true).is_err() {
                    return None;
                }
                return Some(s);
            }
            Err(_) if t0.elapsed() < budget => {
                // Accept backlog full while the fleet ramps: back off.
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return None,
        }
    }
}

/// Run an open-loop fleet against `addr`, requests cycling through
/// `targets`. Single-threaded and poll-driven: the same readiness model
/// the event server uses, applied client-side, so one thread can hold
/// a five-digit connection count.
///
/// Panics if `targets` is empty.
pub fn run_open_loop(
    addr: SocketAddr,
    targets: &[String],
    plan: &OpenLoopPlan,
) -> OpenLoopReport {
    assert!(!targets.is_empty(), "open loop needs at least one target");
    let mut conns: Vec<OpenConn> = Vec::with_capacity(plan.conns);
    for _ in 0..plan.conns {
        let Some(stream) = connect_nonblocking(addr, plan.timeout) else {
            break;
        };
        conns.push(OpenConn {
            stream,
            state: OpenState::Idle,
        });
    }
    let conns_open = conns.len();
    if conns_open == 0 {
        return OpenLoopReport {
            conns_target: plan.conns,
            conns_open: 0,
            conns_alive: 0,
            sent: 0,
            ok: 0,
            other: 0,
            errors: 0,
            missed_ticks: 0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            mean_us: 0,
            wall: Duration::ZERO,
        };
    }

    let interval_s = 1.0 / plan.rate_per_sec.max(1e-6);
    let mut sent = 0u64;
    let mut missed = 0u64;
    let mut ok = 0u64;
    let mut other = 0u64;
    let mut errors = 0u64;
    let mut lat: Vec<u64> = Vec::new();
    let mut next_idle = 0usize;
    let mut pollset: Vec<PollFd> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();
    let mut target_i = 0usize;

    let t0 = Instant::now();
    let grace = Duration::from_millis(1_000);
    loop {
        let now = Instant::now();
        let in_window = now.duration_since(t0) < plan.duration;
        if !in_window {
            // Drain: stop once nothing is in flight or the grace ends.
            let in_flight = conns
                .iter()
                .any(|c| matches!(c.state, OpenState::Sending { .. } | OpenState::Receiving { .. }));
            if !in_flight || now.duration_since(t0) >= plan.duration + grace {
                break;
            }
        }

        // Fire every arrival tick that is due.
        while in_window
            && t0 + Duration::from_secs_f64((sent + missed) as f64 * interval_s) <= Instant::now()
        {
            let due = t0 + Duration::from_secs_f64((sent + missed) as f64 * interval_s);
            // Next idle connection, round-robin from where we stopped.
            let mut picked = None;
            for off in 0..conns.len() {
                let i = (next_idle + off) % conns.len();
                if matches!(conns[i].state, OpenState::Idle) {
                    picked = Some(i);
                    break;
                }
            }
            let Some(i) = picked else {
                missed += 1;
                continue;
            };
            next_idle = (i + 1) % conns.len();
            let target = &targets[target_i % targets.len()];
            target_i += 1;
            let req = format!(
                "GET {target} HTTP/1.1\r\nhost: localhost\r\nconnection: keep-alive\r\n\r\n"
            );
            conns[i].state = OpenState::Sending {
                buf: req.into_bytes(),
                pos: 0,
                t0: due, // measured from the scheduled arrival
            };
            sent += 1;
            drive_send(&mut conns[i], &mut errors);
        }

        // Poll everything with an interest: writers for POLLOUT, readers
        // and parked keep-alive conns for POLLIN (parked conns only to
        // notice server-side closes).
        pollset.clear();
        slots.clear();
        for (i, c) in conns.iter().enumerate() {
            let events = match c.state {
                OpenState::Sending { .. } => POLLOUT,
                OpenState::Receiving { .. } | OpenState::Idle => POLLIN,
                OpenState::Dead => continue,
            };
            use std::os::fd::AsRawFd;
            pollset.push(PollFd::new(c.stream.as_raw_fd(), events));
            slots.push(i);
        }
        if pollset.is_empty() {
            break; // whole fleet is dead
        }
        let next_due = t0 + Duration::from_secs_f64((sent + missed) as f64 * interval_s);
        let timeout_ms = if in_window {
            next_due
                .saturating_duration_since(Instant::now())
                .as_millis()
                .min(50) as i32
        } else {
            20
        };
        let n = poll_fds(&mut pollset, timeout_ms).unwrap_or(0);
        if n == 0 {
            continue;
        }
        for (k, pfd) in pollset.iter().enumerate() {
            if pfd.revents == 0 {
                continue;
            }
            let i = slots[k];
            match &mut conns[i].state {
                OpenState::Sending { .. } => drive_send(&mut conns[i], &mut errors),
                OpenState::Receiving { .. } => {
                    drive_recv(&mut conns[i], &mut ok, &mut other, &mut errors, &mut lat)
                }
                OpenState::Idle => {
                    // Data or EOF on a parked connection = server closed
                    // it (idle reap, shutdown).
                    let mut probe = [0u8; 64];
                    match conns[i].stream.read(&mut probe) {
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        _ => conns[i].state = OpenState::Dead,
                    }
                }
                OpenState::Dead => {}
            }
        }
    }

    let conns_alive = conns
        .iter()
        .filter(|c| !matches!(c.state, OpenState::Dead))
        .count();
    lat.sort_unstable();
    let mean_us = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };
    OpenLoopReport {
        conns_target: plan.conns,
        conns_open,
        conns_alive,
        sent,
        ok,
        other,
        errors,
        missed_ticks: missed,
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
        mean_us,
        wall: t0.elapsed(),
    }
}

fn drive_send(conn: &mut OpenConn, errors: &mut u64) {
    let OpenState::Sending { buf, pos, t0 } = &mut conn.state else {
        return;
    };
    while *pos < buf.len() {
        match conn.stream.write(&buf[*pos..]) {
            Ok(0) => {
                *errors += 1;
                conn.state = OpenState::Dead;
                return;
            }
            Ok(n) => *pos += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                *errors += 1;
                conn.state = OpenState::Dead;
                return;
            }
        }
    }
    let t0 = *t0;
    conn.state = OpenState::Receiving {
        dec: ResponseDecoder::new(),
        t0,
    };
}

fn drive_recv(
    conn: &mut OpenConn,
    ok: &mut u64,
    other: &mut u64,
    errors: &mut u64,
    lat: &mut Vec<u64>,
) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let OpenState::Receiving { dec, t0 } = &mut conn.state else {
            return;
        };
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                *errors += 1;
                conn.state = OpenState::Dead;
                return;
            }
            Ok(n) => match dec.feed(&buf[..n]) {
                Ok(Some(status)) => {
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    if (200..300).contains(&status) {
                        *ok += 1;
                        lat.push(us);
                    } else {
                        *other += 1;
                    }
                    conn.state = OpenState::Idle;
                    return;
                }
                Ok(None) => {}
                Err(_) => {
                    *errors += 1;
                    conn.state = OpenState::Dead;
                    return;
                }
            },
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                *errors += 1;
                conn.state = OpenState::Dead;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.50), 51); // nearest-rank on 0-based index
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn shared_decoder_still_drives_the_open_loop_shapes() {
        // The decoder lives in `ee_util::http1` now (the router's shard
        // pool shares it); this pins the open-loop usage contract.
        let wire =
            b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n3\r\nwor\r\n0\r\n\r\n";
        let mut dec = ResponseDecoder::new();
        assert_eq!(dec.feed(&wire[..40]).unwrap(), None);
        assert_eq!(dec.feed(&wire[40..]).unwrap(), Some(200));
        let mut dec = ResponseDecoder::new();
        assert!(dec
            .feed(b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n")
            .is_err());
    }

    #[test]
    fn report_arithmetic() {
        let r = LoadReport {
            ok: 90,
            rejected: 8,
            expired: 2,
            other: 0,
            errors: 1,
            cache_hits: 40,
            wall: Duration::from_secs(2),
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            mean_us: 120,
            admitted_p99_us: 350,
            ttfb_p50_us: 50,
            ttfb_p95_us: 90,
            ttfb_p99_us: 95,
        };
        assert_eq!(r.completed(), 100);
        assert!((r.throughput() - 45.0).abs() < 1e-9);
    }
}
