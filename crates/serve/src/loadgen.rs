//! Closed-loop load generator for the serving tier.
//!
//! `N` client threads each drive real localhost TCP connections against a
//! running server: issue a request, wait for the full response, record
//! the latency, repeat. Closed-loop means offered load adapts to service
//! rate — exactly the client model behind the E-s0 experiment's
//! concurrency sweep.
//!
//! Two connection modes:
//!
//! * [`ConnMode::PerRequest`] — a fresh connection per request. Every
//!   request passes admission control, so this is the mode that probes
//!   the 503 watermark under overload.
//! * [`ConnMode::KeepAlive`] — one persistent connection per client
//!   reused for all its requests; measures steady-state service latency
//!   (and warm-cache behaviour) without per-connection setup noise.

use crate::http::{read_response_body, read_response_head, ClientResponse, HttpError};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How clients manage connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// Fresh connection per request: every request faces admission.
    PerRequest,
    /// One keep-alive connection per client thread.
    KeepAlive,
}

/// A load-generation plan.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Connection management mode.
    pub mode: ConnMode,
    /// Client-side socket timeout.
    pub timeout: Duration,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            clients: 4,
            requests_per_client: 50,
            mode: ConnMode::KeepAlive,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// 2xx responses.
    pub ok: u64,
    /// 503 admission rejections.
    pub rejected: u64,
    /// 504 deadline expiries.
    pub expired: u64,
    /// Other HTTP statuses (4xx bugs in the target list, 5xx…).
    pub other: u64,
    /// Transport-level failures (connect refused, timeout, short read).
    pub errors: u64,
    /// `x-cache: HIT` responses among the 2xx.
    pub cache_hits: u64,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// Latency percentiles over **successful (2xx) requests**, µs.
    pub p50_us: u64,
    /// 95th percentile latency, µs.
    pub p95_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// Mean 2xx latency, µs.
    pub mean_us: u64,
    /// p99 over every *admitted* request (2xx + 504): the bounded-tail
    /// criterion under overload.
    pub admitted_p99_us: u64,
    /// Time-to-first-byte percentiles over 2xx requests, µs: the clock
    /// stops when the response head has been read, before the body
    /// drains. For streamed responses this is the number that chunked
    /// transfer improves — the first tile chunk arrives while the rest
    /// is still being encoded.
    pub ttfb_p50_us: u64,
    /// 95th percentile TTFB, µs.
    pub ttfb_p95_us: u64,
    /// 99th percentile TTFB, µs.
    pub ttfb_p99_us: u64,
}

impl LoadReport {
    /// Completed requests of any status (excludes transport errors).
    pub fn completed(&self) -> u64 {
        self.ok + self.rejected + self.expired + self.other
    }

    /// Successful requests per second over the wall-clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Issue one request and read the response in two stages, returning the
/// response and the time-to-first-byte (head read) in microseconds.
fn issue(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    keep_alive: bool,
) -> Result<(ClientResponse, u64), HttpError> {
    let conn_header = if keep_alive { "keep-alive" } else { "close" };
    let req = format!(
        "GET {target} HTTP/1.1\r\nhost: localhost\r\nconnection: {conn_header}\r\n\r\n"
    );
    let t0 = Instant::now();
    stream.write_all(req.as_bytes()).map_err(HttpError::Io)?;
    stream.flush().map_err(HttpError::Io)?;
    let head = read_response_head(reader)?;
    let ttfb_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let body = read_response_body(reader, &head)?;
    Ok((
        ClientResponse {
            status: head.status,
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        },
        ttfb_us,
    ))
}

/// Run the plan against `addr`, each client cycling through `targets`
/// round-robin (offset by client id so clients don't move in lock-step).
///
/// Panics if `targets` is empty.
pub fn run(addr: SocketAddr, targets: &[String], plan: &LoadPlan) -> LoadReport {
    assert!(!targets.is_empty(), "loadgen needs at least one target");
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let ok_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let admitted_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let ttfb_lat: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    ee_util::par::fan_out(plan.clients.max(1), |client| {
        let mut local_ok: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
        let mut local_admitted: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
        let mut local_ttfb: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
        let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
        for i in 0..plan.requests_per_client {
            let target = &targets[(client + i) % targets.len()];
            if conn.is_none() {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_read_timeout(Some(plan.timeout));
                        let _ = s.set_write_timeout(Some(plan.timeout));
                        let _ = s.set_nodelay(true);
                        match s.try_clone() {
                            Ok(r) => conn = Some((s, BufReader::new(r))),
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            let keep_alive = plan.mode == ConnMode::KeepAlive;
            let (stream, reader) = conn.as_mut().expect("connection just established");
            let start = Instant::now();
            let resp = issue(stream, reader, target, keep_alive);
            let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            match resp {
                Ok((r, ttfb_us)) => {
                    match r.status {
                        200..=299 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if r.header("x-cache").is_some_and(|v| v == "HIT") {
                                cache_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            local_ok.push(us);
                            local_admitted.push(us);
                            local_ttfb.push(ttfb_us);
                        }
                        503 => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        504 => {
                            expired.fetch_add(1, Ordering::Relaxed);
                            local_admitted.push(us);
                        }
                        _ => {
                            other.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The server closes after non-keep-alive exchanges and
                    // after error responses; reconnect next iteration.
                    if !keep_alive || !r.keep_alive {
                        conn = None;
                    }
                }
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    conn = None;
                }
            }
        }
        ok_lat.lock().expect("latency vec poisoned").extend(local_ok);
        admitted_lat
            .lock()
            .expect("latency vec poisoned")
            .extend(local_admitted);
        ttfb_lat
            .lock()
            .expect("latency vec poisoned")
            .extend(local_ttfb);
    });
    let wall = t0.elapsed();

    let mut ok_lat = ok_lat.into_inner().expect("latency vec poisoned");
    ok_lat.sort_unstable();
    let mut admitted_lat = admitted_lat.into_inner().expect("latency vec poisoned");
    admitted_lat.sort_unstable();
    let mut ttfb_lat = ttfb_lat.into_inner().expect("latency vec poisoned");
    ttfb_lat.sort_unstable();
    let mean_us = if ok_lat.is_empty() {
        0
    } else {
        ok_lat.iter().sum::<u64>() / ok_lat.len() as u64
    };
    LoadReport {
        ok: ok.into_inner(),
        rejected: rejected.into_inner(),
        expired: expired.into_inner(),
        other: other.into_inner(),
        errors: errors.into_inner(),
        cache_hits: cache_hits.into_inner(),
        wall,
        p50_us: percentile(&ok_lat, 0.50),
        p95_us: percentile(&ok_lat, 0.95),
        p99_us: percentile(&ok_lat, 0.99),
        mean_us,
        admitted_p99_us: percentile(&admitted_lat, 0.99),
        ttfb_p50_us: percentile(&ttfb_lat, 0.50),
        ttfb_p95_us: percentile(&ttfb_lat, 0.95),
        ttfb_p99_us: percentile(&ttfb_lat, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.50), 51); // nearest-rank on 0-based index
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn report_arithmetic() {
        let r = LoadReport {
            ok: 90,
            rejected: 8,
            expired: 2,
            other: 0,
            errors: 1,
            cache_hits: 40,
            wall: Duration::from_secs(2),
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            mean_us: 120,
            admitted_p99_us: 350,
            ttfb_p50_us: 50,
            ttfb_p95_us: 90,
            ttfb_p99_us: 95,
        };
        assert_eq!(r.completed(), 100);
        assert!((r.throughput() - 45.0).abs() < 1e-9);
    }
}
