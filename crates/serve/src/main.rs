//! `ee-serve` binary: build the engines, bind, and serve until killed.
//!
//! ```text
//! cargo run -p ee-serve --release              # defaults (127.0.0.1:7207)
//! EE_SERVE_ADDR=0.0.0.0:8080 cargo run -p ee-serve --release
//! EE_SERVE_TINY=1 cargo run -p ee-serve        # small dataset, fast start
//! ```

use ee_serve::{start, AppState, DataConfig, ServerConfig};
use std::sync::Arc;

fn main() {
    let addr =
        std::env::var("EE_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7207".to_string());
    let data = if std::env::var("EE_SERVE_TINY").is_ok() {
        DataConfig::tiny()
    } else {
        DataConfig::default()
    };
    eprintln!(
        "ee-serve: building engines (points={}, products={}, scene={}px, ice={} regions)...",
        data.points,
        data.products,
        data.scene_size,
        ee_serve::state::ICE_REGIONS.len()
    );
    let t0 = std::time::Instant::now();
    let state = Arc::new(AppState::build(data));
    eprintln!("ee-serve: engines ready in {:?}", t0.elapsed());

    let config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let handle = match start(config, state) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ee-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ee-serve: listening on http://{} ({} workers) — try /healthz, /query, /tiles/0/0/0",
        handle.addr, workers
    );
    // Serve forever; the process is stopped by signal.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
