//! `ee-serve` binary: build the engines, bind, and serve until killed.
//!
//! ```text
//! cargo run -p ee-serve --release              # defaults (127.0.0.1:7207)
//! EE_SERVE_ADDR=0.0.0.0:8080 cargo run -p ee-serve --release
//! EE_SERVE_TINY=1 cargo run -p ee-serve        # small dataset, fast start
//! cargo run -p ee-serve --release -- --writable            # accept POST /update
//! EE_SERVE_DATA_DIR=/var/lib/ee cargo run -p ee-serve --release -- --writable
//!
//! # Scale-out: two shards + a router (each in its own process)
//! EE_SERVE_ADDR=127.0.0.1:7301 ee-serve --shard-index 0 --shard-count 2
//! EE_SERVE_ADDR=127.0.0.1:7302 ee-serve --shard-index 1 --shard-count 2
//! EE_SERVE_ADDR=127.0.0.1:7207 ee-serve --router 127.0.0.1:7301,127.0.0.1:7302
//! ```
//!
//! `--writable` (or `EE_SERVE_WRITABLE=1`) enables `POST /update`;
//! without it every update is answered 403. `EE_SERVE_DATA_DIR` makes
//! the point store durable: the first start seeds the directory with a
//! generation-0 snapshot, later starts reopen snapshot + WAL tail, so
//! committed updates survive restarts.
//!
//! Scale-out flags: `--shard-index I --shard-count N` builds only this
//! shard's subject-hash slice of the point store; `--router a,b,c`
//! (or `EE_SERVE_BACKENDS`) turns the process into the scatter-gather
//! router tier over those shard addresses (read-only, response cache
//! off — freshness belongs to the shards). `EE_SERVE_SLOW_EVERY` /
//! `EE_SERVE_SLOW_MS` arm the slow-shard fault injector on `/query`.
//! `EE_SERVE_WORKERS` overrides the resolve-worker count (default: one
//! per CPU, capped at 8) — benches pin it so results don't depend on
//! the machine's core count.
//!
//! On successful bind the process prints `LISTENING <addr>` on stdout —
//! the line a supervising process (the E-f9 harness) parses to learn
//! the ephemeral port.

use ee_serve::{start, AppState, DataConfig, RouterTier, ServerConfig};
use std::sync::Arc;

/// The value following `flag`, from either `--flag value` or
/// `--flag=value`.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn env_u64(name: &str) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr =
        std::env::var("EE_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7207".to_string());
    let mut data = if std::env::var("EE_SERVE_TINY").is_ok() {
        DataConfig::tiny()
    } else {
        DataConfig::default()
    };
    let writable = args.iter().any(|a| a == "--writable")
        || matches!(std::env::var("EE_SERVE_WRITABLE"), Ok(v) if !v.is_empty() && v != "0");

    // Shard assignment: --shard-index I --shard-count N (both or neither).
    let shard_index = arg_value(&args, "--shard-index").map(|v| v.parse::<usize>());
    let shard_count = arg_value(&args, "--shard-count").map(|v| v.parse::<usize>());
    match (shard_index, shard_count) {
        (None, None) => {}
        (Some(Ok(i)), Some(Ok(n))) if i < n && n >= 1 => data.shard = Some((i, n)),
        _ => {
            eprintln!(
                "ee-serve: --shard-index I and --shard-count N must both be given, \
                 parse as integers, and satisfy I < N"
            );
            std::process::exit(2);
        }
    }

    // Router mode: --router a,b,c or EE_SERVE_BACKENDS=a,b,c.
    let backends_raw = arg_value(&args, "--router")
        .or_else(|| std::env::var("EE_SERVE_BACKENDS").ok().filter(|v| !v.is_empty()));
    let backends: Option<Vec<std::net::SocketAddr>> = match &backends_raw {
        None => None,
        Some(list) => {
            let parsed: Result<Vec<_>, _> =
                list.split(',').map(|a| a.trim().parse()).collect();
            match parsed {
                Ok(v) if !v.is_empty() => Some(v),
                _ => {
                    eprintln!("ee-serve: --router takes a comma-separated shard address list");
                    std::process::exit(2);
                }
            }
        }
    };
    if backends.is_some() && data.shard.is_some() {
        eprintln!("ee-serve: a process is either a shard or the router, not both");
        std::process::exit(2);
    }

    eprintln!(
        "ee-serve: building engines (points={}, products={}, scene={}px, ice={} regions{})...",
        data.points,
        data.products,
        data.scene_size,
        ee_serve::state::ICE_REGIONS.len(),
        match data.shard {
            Some((i, n)) => format!(", shard {i}/{n}"),
            None => String::new(),
        }
    );
    let t0 = std::time::Instant::now();
    let mut state = match std::env::var("EE_SERVE_DATA_DIR") {
        Ok(dir) if !dir.is_empty() => {
            match AppState::build_durable(data, std::path::Path::new(&dir)) {
                Ok(s) => {
                    eprintln!(
                        "ee-serve: durable store in {dir} (generation {})",
                        s.generation()
                    );
                    s
                }
                Err(e) => {
                    eprintln!("ee-serve: cannot open data dir {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => AppState::build(data),
    };
    state.writable = writable;
    state.slow_every = env_u64("EE_SERVE_SLOW_EVERY");
    state.slow_ms = env_u64("EE_SERVE_SLOW_MS");
    if state.slow_every > 0 {
        eprintln!(
            "ee-serve: slow-shard injector armed (every {} queries sleep {} ms)",
            state.slow_every, state.slow_ms
        );
    }
    let router = backends.is_some();
    if let Some(addrs) = backends {
        state.router = Some(RouterTier::new(&addrs, Default::default()));
    }
    let state = Arc::new(state);
    eprintln!("ee-serve: engines ready in {:?}", t0.elapsed());

    let mut config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    let workers_override = env_u64("EE_SERVE_WORKERS");
    if workers_override > 0 {
        config.workers = workers_override as usize;
    }
    if router {
        // The router must not serve yesterday's shard answers: its
        // response cache cannot see shard-side freshness, so it runs
        // uncached (the shards keep their own caches).
        config.cache_capacity_per_shard = 0;
    }
    let workers = config.workers;
    let handle = match start(config, state) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ee-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // Machine-parsable bind announcement (the E-f9 harness reads this).
    println!("LISTENING {}", handle.addr);
    eprintln!(
        "ee-serve: listening on http://{} ({} workers{}{}) — try /healthz, /query, /tiles/0/0/0",
        handle.addr,
        workers,
        if writable { ", writable" } else { "" },
        if router { ", router" } else { "" }
    );
    // Serve forever; the process is stopped by signal.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
