//! `ee-serve` binary: build the engines, bind, and serve until killed.
//!
//! ```text
//! cargo run -p ee-serve --release              # defaults (127.0.0.1:7207)
//! EE_SERVE_ADDR=0.0.0.0:8080 cargo run -p ee-serve --release
//! EE_SERVE_TINY=1 cargo run -p ee-serve        # small dataset, fast start
//! cargo run -p ee-serve --release -- --writable            # accept POST /update
//! EE_SERVE_DATA_DIR=/var/lib/ee cargo run -p ee-serve --release -- --writable
//! ```
//!
//! `--writable` (or `EE_SERVE_WRITABLE=1`) enables `POST /update`;
//! without it every update is answered 403. `EE_SERVE_DATA_DIR` makes
//! the point store durable: the first start seeds the directory with a
//! generation-0 snapshot, later starts reopen snapshot + WAL tail, so
//! committed updates survive restarts.

use ee_serve::{start, AppState, DataConfig, ServerConfig};
use std::sync::Arc;

fn main() {
    let addr =
        std::env::var("EE_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7207".to_string());
    let data = if std::env::var("EE_SERVE_TINY").is_ok() {
        DataConfig::tiny()
    } else {
        DataConfig::default()
    };
    let writable = std::env::args().any(|a| a == "--writable")
        || matches!(std::env::var("EE_SERVE_WRITABLE"), Ok(v) if !v.is_empty() && v != "0");
    eprintln!(
        "ee-serve: building engines (points={}, products={}, scene={}px, ice={} regions)...",
        data.points,
        data.products,
        data.scene_size,
        ee_serve::state::ICE_REGIONS.len()
    );
    let t0 = std::time::Instant::now();
    let mut state = match std::env::var("EE_SERVE_DATA_DIR") {
        Ok(dir) if !dir.is_empty() => {
            match AppState::build_durable(data, std::path::Path::new(&dir)) {
                Ok(s) => {
                    eprintln!(
                        "ee-serve: durable store in {dir} (generation {})",
                        s.generation()
                    );
                    s
                }
                Err(e) => {
                    eprintln!("ee-serve: cannot open data dir {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => AppState::build(data),
    };
    state.writable = writable;
    let state = Arc::new(state);
    eprintln!("ee-serve: engines ready in {:?}", t0.elapsed());

    let config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let handle = match start(config, state) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ee-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ee-serve: listening on http://{} ({} workers{}) — try /healthz, /query, /tiles/0/0/0",
        handle.addr,
        workers,
        if writable { ", writable" } else { "" }
    );
    // Serve forever; the process is stopped by signal.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
