//! Serving-tier metrics: atomic counters, queue-depth gauges and
//! log-scaled latency histograms, exported in Prometheus text format at
//! `/metrics`.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — the
//! counters are statistics, not synchronisation), so recording on the
//! request hot path costs a handful of uncontended atomic adds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count: powers of two of microseconds, 1 µs … ~33 s,
/// plus an overflow bucket.
pub const BUCKETS: usize = 26;

/// A fixed-bucket latency histogram over microseconds.
///
/// Bucket `i` counts samples with `value_us < 2^(i+1)` (and ≥ `2^i` for
/// i > 0); the last bucket absorbs everything larger. Quantiles are
/// answered with the bucket upper bound — a ≤2× overestimate, which is
/// the right direction to err for tail-latency reporting.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        ((64 - us.max(1).leading_zeros()) as usize - 1).min(BUCKETS - 1)
    }

    /// Upper bound (µs) of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << (i + 1)
    }

    /// Record one latency sample.
    pub fn record_us(&self, us: u64) {
        self.counts[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Approximate quantile `q` in [0,1], as the upper bound of the
    /// bucket where the cumulative count crosses `q·total`. 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.counts[i].load(Ordering::Relaxed);
            if cum >= target {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }

    /// Snapshot of per-bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }
}

/// Route classes tracked separately in the metrics (path templates, not
/// concrete paths, so cardinality stays fixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `/query` — RDF BGP selection.
    Query,
    /// `POST /update` — SPARQL UPDATE against the point store.
    Update,
    /// `/catalogue/search`.
    Catalogue,
    /// `/tiles/{level}/{row}/{col}`.
    Tiles,
    /// `/ice/{region}`.
    Ice,
    /// `/healthz`.
    Healthz,
    /// `/metrics`.
    Metrics,
    /// `/debug/*` (test-only routes).
    Debug,
    /// Anything unrecognised (404s).
    Other,
}

/// All routes, for iteration.
pub const ROUTES: [Route; 9] = [
    Route::Query,
    Route::Update,
    Route::Catalogue,
    Route::Tiles,
    Route::Ice,
    Route::Healthz,
    Route::Metrics,
    Route::Debug,
    Route::Other,
];

impl Route {
    /// Stable label used in metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            Route::Query => "query",
            Route::Update => "update",
            Route::Catalogue => "catalogue",
            Route::Tiles => "tiles",
            Route::Ice => "ice",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Debug => "debug",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        ROUTES.iter().position(|r| *r == self).expect("in ROUTES")
    }
}

/// Append one Prometheus histogram family to `out`: a `# HELP`/`# TYPE`
/// header, then per-series cumulative buckets plus `_sum`/`_count` lines
/// labelled `{label_name="<series>"}`. Series with no samples are
/// skipped (their label would otherwise add dead cardinality), and empty
/// buckets are elided except the final `+Inf`-equivalent one, matching
/// what [`Metrics::render_prometheus`] always emitted.
pub fn render_histogram_family<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    label_name: &str,
    series: impl IntoIterator<Item = (&'a str, &'a Histogram)>,
) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} histogram\n"
    ));
    for (label, h) in series {
        if h.count() == 0 {
            continue;
        }
        let snap = h.snapshot();
        let mut cum = 0u64;
        for (i, c) in snap.iter().enumerate() {
            cum += c;
            if *c > 0 || i == BUCKETS - 1 {
                out.push_str(&format!(
                    "{name}_bucket{{{label_name}=\"{label}\",le=\"{}\"}} {cum}\n",
                    Histogram::bucket_bound(i),
                ));
            }
        }
        out.push_str(&format!(
            "{name}_sum{{{label_name}=\"{label}\"}} {}\n\
             {name}_count{{{label_name}=\"{label}\"}} {}\n",
            h.sum_us(),
            h.count()
        ));
    }
}

/// All serving-tier metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections admitted past the accept queue.
    pub admitted: AtomicU64,
    /// Connections rejected with 503 at the watermark.
    pub rejected: AtomicU64,
    /// Requests that exceeded their deadline (504).
    pub deadline_expired: AtomicU64,
    /// Requests answered (any status).
    pub handled: AtomicU64,
    /// Malformed requests answered 4xx.
    pub bad_requests: AtomicU64,
    /// Requests shed with 503 at the per-connection pipelining cap.
    pub pipeline_capped: AtomicU64,
    /// Conditional requests answered 304 Not Modified (`If-None-Match`
    /// matched the response's ETag, so the body was elided).
    pub not_modified: AtomicU64,
    /// Current accept-queue depth.
    pub queue_depth: AtomicU64,
    /// High-water mark of the accept queue.
    pub queue_peak: AtomicU64,
    /// Body bytes written to peers (chunk framing overhead excluded).
    pub bytes_sent: AtomicU64,
    /// Streamed bodies that outgrew the cache's per-entry byte cap and
    /// were served uncached.
    pub stream_uncacheable: AtomicU64,
    /// `accept(2)` failures (fd exhaustion and friends) — each one also
    /// costs the acceptor a short backoff sleep.
    pub accept_errors: AtomicU64,
    /// Keep-alive connections reaped by the idle timeout.
    pub idle_reaped: AtomicU64,
    /// Connections currently open in the event loop.
    pub open_connections: AtomicU64,
    /// High-water mark of open event-loop connections.
    pub open_peak: AtomicU64,
    per_route_shed: [AtomicU64; ROUTES.len()],
    per_route_requests: [AtomicU64; ROUTES.len()],
    per_route_latency: [Histogram; ROUTES.len()],
    per_route_ttfb: [Histogram; ROUTES.len()],
}

impl Metrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed request on `route` with its latency.
    pub fn record(&self, route: Route, latency_us: u64) {
        self.per_route_requests[route.index()].fetch_add(1, Ordering::Relaxed);
        self.per_route_latency[route.index()].record_us(latency_us);
        self.handled.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests seen on a route.
    pub fn route_requests(&self, route: Route) -> u64 {
        self.per_route_requests[route.index()].load(Ordering::Relaxed)
    }

    /// Latency histogram of a route.
    pub fn route_latency(&self, route: Route) -> &Histogram {
        &self.per_route_latency[route.index()]
    }

    /// Record time-to-first-byte for a request on `route` (measured from
    /// request start to the first body chunk hitting the socket).
    pub fn record_ttfb(&self, route: Route, ttfb_us: u64) {
        self.per_route_ttfb[route.index()].record_us(ttfb_us);
    }

    /// Time-to-first-byte histogram of a route.
    pub fn route_ttfb(&self, route: Route) -> &Histogram {
        &self.per_route_ttfb[route.index()]
    }

    /// Count body bytes written to a peer.
    pub fn add_bytes_sent(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Update the queue-depth gauge (called with the depth after a
    /// push/pop) and track the peak.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Count a request shed with 503 because its route's in-flight quota
    /// was exhausted.
    pub fn record_route_shed(&self, route: Route) {
        self.per_route_shed[route.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed on a route by its quota.
    pub fn route_shed(&self, route: Route) -> u64 {
        self.per_route_shed[route.index()].load(Ordering::Relaxed)
    }

    /// A connection opened in the event loop: bump the gauge + peak.
    pub fn conn_opened(&self) {
        let now = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.open_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// A connection closed in the event loop.
    pub fn conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Render everything in Prometheus text exposition format. Cache and
    /// plan-cache statistics come from the caller so the metrics type
    /// stays decoupled from the cache types.
    pub fn render_prometheus(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_len: usize,
        plan_stats: (u64, u64, usize),
    ) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "# HELP ee_serve_open_connections Connections currently open in the event loop\n\
             # TYPE ee_serve_open_connections gauge\nee_serve_open_connections {}\n",
            self.open_connections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "# HELP ee_serve_open_connections_peak High-water mark of open connections\n\
             # TYPE ee_serve_open_connections_peak gauge\nee_serve_open_connections_peak {}\n",
            self.open_peak.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ee_serve_route_shed_total Requests shed 503 by per-route quotas\n\
             # TYPE ee_serve_route_shed_total counter\n",
        );
        for r in ROUTES {
            out.push_str(&format!(
                "ee_serve_route_shed_total{{route=\"{}\"}} {}\n",
                r.label(),
                self.route_shed(r)
            ));
        }
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            "ee_serve_connections_admitted_total",
            "Connections admitted past the accept queue",
            self.admitted.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_connections_rejected_total",
            "Connections rejected with 503 at the admission watermark",
            self.rejected.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_deadline_expired_total",
            "Requests past their deadline (504)",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_requests_total",
            "Requests answered",
            self.handled.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_bad_requests_total",
            "Malformed requests answered 4xx",
            self.bad_requests.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_pipeline_capped_total",
            "Requests shed with 503 at the per-connection pipelining cap",
            self.pipeline_capped.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_not_modified_total",
            "Conditional requests answered 304 Not Modified",
            self.not_modified.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_bytes_sent_total",
            "Response body bytes written to peers",
            self.bytes_sent.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_stream_uncacheable_total",
            "Streamed bodies too large for the response cache",
            self.stream_uncacheable.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_accept_errors_total",
            "accept(2) failures (fd exhaustion and friends)",
            self.accept_errors.load(Ordering::Relaxed),
        );
        counter(
            "ee_serve_idle_reaped_total",
            "Keep-alive connections reaped by the idle timeout",
            self.idle_reaped.load(Ordering::Relaxed),
        );
        counter("ee_serve_cache_hits_total", "Response cache hits", cache_hits);
        counter(
            "ee_serve_cache_misses_total",
            "Response cache misses",
            cache_misses,
        );
        let hit_rate = if cache_hits + cache_misses == 0 {
            0.0
        } else {
            cache_hits as f64 / (cache_hits + cache_misses) as f64
        };
        out.push_str(&format!(
            "# HELP ee_serve_cache_hit_rate Response cache hit rate\n\
             # TYPE ee_serve_cache_hit_rate gauge\nee_serve_cache_hit_rate {hit_rate}\n"
        ));
        out.push_str(&format!(
            "# HELP ee_serve_cache_entries Response cache entries held\n\
             # TYPE ee_serve_cache_entries gauge\nee_serve_cache_entries {cache_len}\n"
        ));
        let (plan_hits, plan_misses, plan_len) = plan_stats;
        out.push_str(&format!(
            "# HELP ee_serve_plan_cache_hits_total Prepared-plan cache hits on /query\n\
             # TYPE ee_serve_plan_cache_hits_total counter\n\
             ee_serve_plan_cache_hits_total {plan_hits}\n"
        ));
        out.push_str(&format!(
            "# HELP ee_serve_plan_cache_misses_total Prepared-plan cache misses on /query\n\
             # TYPE ee_serve_plan_cache_misses_total counter\n\
             ee_serve_plan_cache_misses_total {plan_misses}\n"
        ));
        out.push_str(&format!(
            "# HELP ee_serve_plan_cache_entries Prepared plans held\n\
             # TYPE ee_serve_plan_cache_entries gauge\nee_serve_plan_cache_entries {plan_len}\n"
        ));
        out.push_str(&format!(
            "# HELP ee_serve_queue_depth Accept queue depth\n\
             # TYPE ee_serve_queue_depth gauge\nee_serve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "# HELP ee_serve_queue_peak Accept queue high-water mark\n\
             # TYPE ee_serve_queue_peak gauge\nee_serve_queue_peak {}\n",
            self.queue_peak.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ee_serve_route_requests_total Requests per route\n\
             # TYPE ee_serve_route_requests_total counter\n",
        );
        for r in ROUTES {
            out.push_str(&format!(
                "ee_serve_route_requests_total{{route=\"{}\"}} {}\n",
                r.label(),
                self.route_requests(r)
            ));
        }
        render_histogram_family(
            &mut out,
            "ee_serve_latency_us",
            "Request latency histogram (µs)",
            "route",
            ROUTES.iter().map(|&r| (r.label(), self.route_latency(r))),
        );
        render_histogram_family(
            &mut out,
            "ee_serve_ttfb_us",
            "Time to first body byte histogram (µs)",
            "route",
            ROUTES.iter().map(|&r| (r.label(), self.route_ttfb(r))),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.5);
        assert!((32..=64).contains(&p50), "p50 bucket bound {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 10_000, "p99 {p99} must cover the outlier");
        assert!(h.mean_us() > 0.0);
        assert_eq!(h.quantile_us(0.0).max(1), h.quantile_us(0.0));
        let empty = Histogram::new();
        assert_eq!(empty.quantile_us(0.99), 0);
    }

    #[test]
    fn metrics_record_and_render() {
        let m = Metrics::new();
        m.record(Route::Query, 120);
        m.record(Route::Query, 80);
        m.record(Route::Tiles, 40);
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        assert_eq!(m.route_requests(Route::Query), 2);
        assert_eq!(m.handled.load(Ordering::Relaxed), 3);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 3);
        m.not_modified.fetch_add(2, Ordering::Relaxed);
        m.add_bytes_sent(4096);
        m.stream_uncacheable.fetch_add(1, Ordering::Relaxed);
        m.record_ttfb(Route::Tiles, 15);
        assert_eq!(m.route_ttfb(Route::Tiles).count(), 1);
        m.accept_errors.fetch_add(3, Ordering::Relaxed);
        m.record_route_shed(Route::Query);
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.idle_reaped.fetch_add(1, Ordering::Relaxed);
        m.pipeline_capped.fetch_add(2, Ordering::Relaxed);
        let text = m.render_prometheus(5, 10, 7, (4, 2, 2));
        assert!(text.contains("ee_serve_accept_errors_total 3"));
        assert!(text.contains("ee_serve_pipeline_capped_total 2"));
        assert!(text.contains("ee_serve_route_shed_total{route=\"query\"} 1"));
        assert!(text.contains("ee_serve_open_connections 1"));
        assert!(text.contains("ee_serve_open_connections_peak 2"));
        assert!(text.contains("ee_serve_idle_reaped_total 1"));
        assert!(text.contains("ee_serve_bytes_sent_total 4096"));
        assert!(text.contains("ee_serve_stream_uncacheable_total 1"));
        assert!(text.contains("ee_serve_ttfb_us_count{route=\"tiles\"} 1"));
        assert!(text.contains("ee_serve_route_requests_total{route=\"query\"} 2"));
        assert!(text.contains("ee_serve_cache_hit_rate 0.333"));
        assert!(text.contains("ee_serve_not_modified_total 2"));
        assert!(text.contains("ee_serve_plan_cache_hits_total 4"));
        assert!(text.contains("ee_serve_plan_cache_misses_total 2"));
        assert!(text.contains("ee_serve_plan_cache_entries 2"));
        assert!(text.contains("ee_serve_queue_depth 1"));
        assert!(text.contains("ee_serve_latency_us_count{route=\"query\"} 2"));
        // Prometheus text format: every non-comment line is `name value`
        // or `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line {line:?}");
        }
    }
}
