//! Route table and handlers: maps parsed requests onto the engines in
//! [`AppState`] and produces [`Response`]s.
//!
//! Routes:
//!
//! | route                       | engine                         | verb     |
//! |-----------------------------|--------------------------------|----------|
//! | `/query`                    | `ee-rdf` BGP selection (E2/E3) | GET/POST |
//! | `/update`                   | `ee-rdf` SPARQL UPDATE commit  | POST     |
//! | `/catalogue/search`         | `ee-catalogue` (E9)            | GET      |
//! | `/tiles/{level}/{row}/{col}`| `ee-raster` pyramid            | GET      |
//! | `/ice/{region}`             | `ee-polar` PCDSS bundle (E12)  | GET      |
//! | `/healthz`                  | liveness + engine inventory    | GET      |
//! | `/debug/sleep`              | deadline testing (opt-in)      | GET      |
//!
//! `POST /query` takes the raw SPARQL text as the request body; both
//! verbs execute through [`AppState::prepared_query`], so a repeated
//! query hits the prepared-plan cache regardless of how it arrives.
//! `POST /update` takes SPARQL UPDATE text (INSERT DATA / DELETE DATA /
//! DELETE WHERE) and commits it through the durable store — 403 unless
//! the server runs `--writable`, 400 on a parse error.
//!
//! Tile and query responses carry a strong `etag` that mixes in the
//! store's **head commit id** — a hash-chained name for the entire
//! history, so equal tags provably mean byte-identical stores — and a
//! committed update rolls every client-held validator at once; the
//! server layer answers `If-None-Match` revalidations with 304.
//!
//! `/query`, `/tiles` and `/ice` additionally accept `?asOf=<hexid>`
//! (and `/query` the SPARQL `AS OF <hexid>` clause): the response is
//! computed against the store as of that commit, its ETag embeds the
//! requested id, and — because a commit id is immutable — the response
//! is cached **pinned** (no TTL, survives the post-commit sweep).
//! Unknown ids 404, malformed ones 400.
//!
//! (`/metrics` is answered by the server itself, which owns the metrics
//! and cache objects.)

use crate::http::{BodyStream, Request, Response};
use crate::metrics::Route;
use crate::state::{AppState, ICE_REGIONS};
use ee_geo::Envelope;
use ee_polar::pcdss::encode_bundle;
use ee_rdf::term::Term;
use ee_util::json::Json;
use std::sync::Arc;
use std::time::Instant;

/// What a dispatch produced: a response, or proof that the per-request
/// deadline expired mid-handler (the server turns this into a 504).
pub enum Outcome {
    /// Normal response.
    Ready(Response),
    /// The handler observed the deadline pass and aborted.
    DeadlineExceeded,
}

/// Classify a path onto a route (used for metrics even when the handler
/// then 404s).
pub fn classify(path: &str) -> Route {
    let mut segs = path.split('/').filter(|s| !s.is_empty());
    match segs.next() {
        Some("query") => Route::Query,
        Some("update") => Route::Update,
        Some("catalogue") => Route::Catalogue,
        Some("tiles") => Route::Tiles,
        Some("ice") => Route::Ice,
        Some("healthz") => Route::Healthz,
        Some("metrics") => Route::Metrics,
        Some("debug") => Route::Debug,
        _ => Route::Other,
    }
}

/// Canonical cache key for a request, or `None` when the request must
/// not be served from (or stored into) the response cache.
///
/// The key canonicalises the query string — parameters sorted by name
/// (stable for equal names) — so `?a=1&b=2` and `?b=2&a=1` share an
/// entry. Only GETs on the four engine routes are cacheable; health,
/// metrics and debug endpoints always reflect live state (they never
/// get a key, so they bypass the generation stamping below entirely).
///
/// Keys for the store-derived routes (`/query`, `/tiles`) embed a
/// **commit id** — the requested `?asOf=` id when present, else the
/// head `commit`: an entry cached at head H can never be served once a
/// commit moves the head, because every later lookup uses a different
/// key, while a versioned entry's key never changes (its id names an
/// immutable history — the server pins such entries past TTL and
/// sweeps). `/catalogue/search` keys embed the ranked-index
/// `search_generation` instead, so a committed `searchText` document
/// can never be shadowed by a stale cached ranking. Ice responses are
/// not store-derived and stay on pure TTL freshness — unless pinned to
/// a commit by `?asOf=`.
pub fn cache_key(req: &Request, commit: u64, search_generation: u64) -> Option<String> {
    if req.method != "GET" {
        return None;
    }
    let route = classify(&req.path);
    match route {
        Route::Query | Route::Catalogue | Route::Tiles | Route::Ice => {
            let mut params = req.query.clone();
            params.sort_by(|a, b| a.0.cmp(&b.0));
            let canon: Vec<String> =
                params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let as_of = as_of_param(req).ok().flatten();
            let stamp = match route {
                Route::Query | Route::Tiles => {
                    format!("|c{:016x}", as_of.unwrap_or(commit))
                }
                Route::Catalogue => format!("|s{search_generation}"),
                _ => match as_of {
                    Some(id) => format!("|c{id:016x}"),
                    None => String::new(),
                },
            };
            Some(format!("GET|{}|{}{stamp}", req.path, canon.join("&")))
        }
        _ => None,
    }
}

/// The `?asOf=` commit id of a request: `Ok(None)` when absent,
/// `Err(400)` when present but not valid hex. Whether the id names a
/// real commit is checked later, against the store's history.
pub(crate) fn as_of_param(req: &Request) -> Result<Option<u64>, Response> {
    match req.param("asOf") {
        None => Ok(None),
        Some(v) => u64::from_str_radix(v, 16).map(Some).map_err(|_| {
            Response::error(
                400,
                "asOf must be a hex commit id (as reported by x-commit)",
            )
        }),
    }
}

/// Whether this request is a versioned (`?asOf=`) read of a cacheable
/// route. The server caches such responses **pinned**: their key embeds
/// an immutable commit id, so they never go stale — no TTL, and they
/// survive the post-commit sweep.
pub fn versioned_read(req: &Request) -> bool {
    matches!(as_of_param(req), Ok(Some(_)))
        && matches!(classify(&req.path), Route::Query | Route::Tiles | Route::Ice)
}

/// Cheap pre-parse scan for the `AS OF` clause (case-insensitive token
/// pair). False positives only cost one real parse, never a wrong
/// route.
pub(crate) fn mentions_as_of(sparql: &str) -> bool {
    let mut prev_was_as = false;
    for tok in sparql.split_whitespace() {
        if prev_was_as && tok.eq_ignore_ascii_case("OF") {
            return true;
        }
        prev_was_as = tok.eq_ignore_ascii_case("AS");
    }
    false
}

/// Dispatch a request to its handler. Takes the shared `Arc` so streamed
/// response bodies can co-own the state past the handler's return.
pub fn dispatch(
    state: &Arc<AppState>,
    req: &Request,
    deadline: Instant,
    debug_routes: bool,
) -> Outcome {
    // Router tier: scatter /query, forward /tiles and /ice to their
    // ring owners, refuse /update. Everything it declines (catalogue,
    // healthz is intercepted, debug, 404s) falls through to the local
    // engines below.
    if let Some(tier) = &state.router {
        if let Some(resp) = crate::shard::route(state, tier, req) {
            return Outcome::Ready(resp);
        }
    }
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    if req.method == "POST" && segs.as_slice() == ["query"] {
        return Outcome::Ready(handle_query_post(state, req));
    }
    if req.method == "POST" && segs.as_slice() == ["update"] {
        return Outcome::Ready(handle_update(state, req));
    }
    if req.method != "GET" {
        return Outcome::Ready(Response::error(
            405,
            "only GET is served (and POST /query, POST /update)",
        ));
    }
    match segs.as_slice() {
        ["query"] => Outcome::Ready(handle_query(state, req)),
        ["catalogue", "search"] => Outcome::Ready(handle_catalogue(state, req)),
        ["tiles", level, row, col] => Outcome::Ready(handle_tile(state, req, level, row, col)),
        ["ice", region] => Outcome::Ready(handle_ice(state, req, region)),
        ["healthz"] => Outcome::Ready(handle_healthz(state)),
        ["debug", "sleep"] if debug_routes => debug_sleep(req, deadline),
        ["debug", "stream"] if debug_routes => Outcome::Ready(debug_stream(req)),
        _ => Outcome::Ready(Response::error(404, "no such route")),
    }
}

/// `/query` — rectangular selections (or raw SPARQL) over the point
/// store. Parameters: `sparql` (raw query) or `x0`,`y0`,`side`
/// (selection window, E2 shape); `limit` caps materialised rows.
fn handle_query(state: &Arc<AppState>, req: &Request) -> Response {
    match crate::shard::query_of(req) {
        Ok((sparql, limit)) => run_query(state, req, &sparql, limit),
        Err(resp) => resp,
    }
}

/// `POST /query` — the request body is the raw SPARQL text. Executes
/// through the same prepared-plan path as GET.
fn handle_query_post(state: &Arc<AppState>, req: &Request) -> Response {
    match crate::shard::query_of(req) {
        Ok((sparql, limit)) => run_query(state, req, &sparql, limit),
        Err(resp) => resp,
    }
}

/// `POST /update` — the request body is SPARQL UPDATE text, committed
/// through [`AppState::commit_update`] (evaluate → WAL fsync → apply →
/// generation bump). Refused with 403 on read-only servers, 400 on
/// parse errors. A 200 answer means the commit is durable (when the
/// store has a data directory) and reports the resulting generation
/// plus the effective triple counts.
fn handle_update(state: &Arc<AppState>, req: &Request) -> Response {
    if !state.writable {
        return Response::error(403, "server is read-only; start with --writable");
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body must be UTF-8 SPARQL UPDATE text");
    };
    if text.trim().is_empty() {
        return Response::error(400, "empty body; POST the SPARQL UPDATE text");
    }
    let update = match ee_rdf::parser::parse_update(text) {
        Ok(u) => u,
        Err(e) => return Response::error(400, &format!("update failed: {e}")),
    };
    match state.commit_update(&update) {
        Ok(stats) => Response::json(
            200,
            &Json::obj(vec![
                ("generation", Json::Num(stats.generation as f64)),
                ("inserted", Json::Num(stats.inserted as f64)),
                ("deleted", Json::Num(stats.deleted as f64)),
            ]),
        ),
        Err(e) => Response::error(500, &format!("commit failed: {e}")),
    }
}

/// Shared GET/POST tail: prepared-plan execution, serialised batch by
/// batch. The joins run here (planning errors surface as a sized 400);
/// on success the response body is a [`QueryStream`] that materialises
/// and serialises one `ee_rdf` batch per chunk, so the first bytes of a
/// large result hit the wire before the last row exists. The `count`
/// field counts **all** result rows (`rows` is capped at `limit`) and is
/// emitted last — its value is only known once the stream has drained.
///
/// A versioned read — `?asOf=` or the SPARQL `AS OF <hexid>` clause —
/// takes the collect path instead: the whole answer is computed against
/// a [`ee_rdf::store::StoreView`] under one store guard (snapshot
/// consistency beats streaming for historical reads), its plan is built
/// fresh per view (never cached), and the ETag embeds the requested
/// commit id rather than the head.
fn run_query(state: &Arc<AppState>, req: &Request, sparql: &str, limit: usize) -> Response {
    state.maybe_inject_slowdown();
    let param = match as_of_param(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let clause = if mentions_as_of(sparql) {
        match ee_rdf::parser::parse_query(sparql) {
            Ok(q) => q.as_of,
            Err(e) => return Response::error(400, &format!("query failed: {e}")),
        }
    } else {
        None
    };
    let as_of = match (param, clause) {
        (Some(a), Some(b)) if a != b => {
            return Response::error(400, "asOf= and AS OF name different commit ids")
        }
        (a, b) => a.or(b),
    };
    let canon = sparql.split_whitespace().collect::<Vec<_>>().join(" ");
    if let Some(commit) = as_of {
        // Resolve the overlay *before* any read guard is taken — a miss
        // rewinds under the exclusive lock.
        let Some(novelty) = state.novelty_for(commit) else {
            return Response::error(404, &format!("unknown commit id {commit:016x}"));
        };
        return match state.versioned_query(sparql, &novelty) {
            Ok(sols) => {
                let total = sols.rows.len();
                let rows: Vec<Json> = sols
                    .rows
                    .iter()
                    .take(limit)
                    .map(|row| Json::Arr(row.iter().map(|t| term_json(t.as_ref())).collect()))
                    .collect();
                let body = Json::obj(vec![
                    (
                        "vars",
                        Json::Arr(sols.vars.iter().map(|v| Json::Str(v.clone())).collect()),
                    ),
                    ("rows", Json::Arr(rows)),
                    ("count", Json::Num(total as f64)),
                ]);
                let etag = etag_of(format!("query|{canon}|{limit}|c{commit:016x}").as_bytes());
                Response::json(200, &body)
                    .with_header("etag", etag)
                    .with_header("x-commit", format!("{commit:016x}"))
            }
            Err(e) => Response::error(400, &format!("query failed: {e}")),
        };
    }
    let head = state.head_commit();
    match state.prepared_query_stream(sparql) {
        Ok(core) => {
            // Strong validator without buffering the (streamed) body:
            // the result is a function of the canonical query text, the
            // row cap, and the head commit id — computable up front, and
            // provably stable while the head doesn't move (equal commit
            // ids mean byte-identical stores, via the hash chain).
            let etag = etag_of(format!("query|{canon}|{limit}|c{head:016x}").as_bytes());
            Response::streamed(
                200,
                "application/json",
                Box::new(QueryStream {
                    state: Arc::clone(state),
                    core,
                    limit,
                    emitted: 0,
                    count: 0,
                    stage: QueryStage::Head,
                    buf: Vec::new(),
                }),
            )
            .with_header("etag", etag)
            .with_header("x-commit", format!("{head:016x}"))
        }
        Err(e) => Response::error(400, &format!("query failed: {e}")),
    }
}

/// Where a [`QueryStream`] is in its JSON framing.
enum QueryStage {
    /// `{"vars":[...],"rows":[` not yet emitted.
    Head,
    /// Emitting row batches.
    Rows,
    /// Everything emitted.
    Done,
}

/// A [`BodyStream`] serialising query results batch by batch: holds the
/// state `Arc` (the stream outlives the handler) plus the borrow-free
/// [`ee_rdf::exec::StreamCore`], and feeds each materialised batch
/// through the same per-term JSON mapping the collect path used.
struct QueryStream {
    state: Arc<AppState>,
    core: ee_rdf::exec::StreamCore,
    limit: usize,
    emitted: usize,
    count: usize,
    stage: QueryStage,
    buf: Vec<u8>,
}

impl BodyStream for QueryStream {
    fn next_chunk(&mut self) -> std::io::Result<Option<&[u8]>> {
        self.buf.clear();
        match self.stage {
            QueryStage::Head => {
                let vars = Json::Arr(
                    self.core
                        .vars()
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                );
                self.buf
                    .extend_from_slice(format!("{{\"vars\":{},\"rows\":[", vars.emit()).as_bytes());
                self.stage = QueryStage::Rows;
                Ok(Some(&self.buf))
            }
            // The read lock is taken per batch, not for the whole
            // stream: a slow download never starves a writer, and
            // indexed-mode cursors re-seek past concurrent mutations
            // (the serve store always runs `IndexMode::Full`).
            QueryStage::Rows => match self.core.next_batch(&self.state.store()) {
                Some(batch) => {
                    let mut out = String::new();
                    for row in &batch {
                        self.count += 1;
                        if self.emitted < self.limit {
                            if self.emitted > 0 {
                                out.push(',');
                            }
                            let row_json =
                                Json::Arr(row.iter().map(|t| term_json(t.as_ref())).collect());
                            out.push_str(&row_json.emit());
                            self.emitted += 1;
                        }
                    }
                    // May be empty when every row is past `limit` (still
                    // counting); the chunked writer skips empty chunks.
                    self.buf.extend_from_slice(out.as_bytes());
                    Ok(Some(&self.buf))
                }
                None => {
                    self.buf.extend_from_slice(
                        format!("],\"count\":{}}}", Json::Num(self.count as f64).emit())
                            .as_bytes(),
                    );
                    self.stage = QueryStage::Done;
                    Ok(Some(&self.buf))
                }
            },
            QueryStage::Done => Ok(None),
        }
    }
}

fn term_json(t: Option<&Term>) -> Json {
    match t {
        None => Json::Null,
        Some(Term::Iri(iri)) => Json::Str(iri.clone()),
        Some(Term::Literal { lexical, .. }) => Json::Str(lexical.clone()),
    }
}

/// `/catalogue/search` — product search. Parameters: `mode=classic|
/// semantic|ranked`. The classic and semantic arms take an AOI
/// (`minx,miny,maxx,maxy`) and, for classic, `limit` (result cap); the
/// ranked arm takes free text `q` (required) and `k` (result cap,
/// default 10) and answers with BM25 score-ordered products. Handler
/// latency is recorded per mode, so `/metrics` exposes classic vs
/// ranked p50 side by side.
fn handle_catalogue(state: &AppState, req: &Request) -> Response {
    let t0 = Instant::now();
    let mode = req.param("mode").unwrap_or("classic");
    let resp = catalogue_by_mode(state, req, mode);
    if resp.status == 200 {
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        state.record_catalogue_mode(mode, us);
    }
    resp
}

/// The mode dispatch of `/catalogue/search` (split out so the wrapper
/// can time every arm uniformly).
fn catalogue_by_mode(state: &AppState, req: &Request, mode: &str) -> Response {
    if mode == "ranked" {
        let Some(q) = req.param("q").filter(|q| !q.trim().is_empty()) else {
            return Response::error(400, "mode=ranked needs a non-empty q= query");
        };
        let k = req.param_or("k", 10usize).min(1000);
        let hits = state.ranked_search(q, k);
        let results: Vec<Json> = hits
            .iter()
            .map(|hit| match &hit.doc {
                crate::state::RankedDoc::Product(p) => Json::obj(vec![
                    ("score", Json::Num(hit.score)),
                    ("product", p.to_json()),
                ]),
                crate::state::RankedDoc::Live { subject, text } => Json::obj(vec![
                    ("score", Json::Num(hit.score)),
                    (
                        "document",
                        Json::obj(vec![
                            ("subject", Json::Str(subject.clone())),
                            ("text", Json::Str(text.clone())),
                        ]),
                    ),
                ]),
            })
            .collect();
        return Json::obj(vec![
            ("mode", Json::Str("ranked".into())),
            ("query", Json::Str(q.to_string())),
            ("count", Json::Num(results.len() as f64)),
            ("indexed", Json::Num(state.ranked_indexed() as f64)),
            ("results", Json::Arr(results)),
        ])
        .pipe_json();
    }
    let minx: f64 = req.param_or("minx", 10.0);
    let miny: f64 = req.param_or("miny", 10.0);
    let maxx = req.param_or("maxx", minx + 2.0);
    let maxy = req.param_or("maxy", miny + 2.0);
    if !(minx.is_finite() && miny.is_finite() && maxx > minx && maxy > miny) {
        return Response::error(400, "need finite minx,miny < maxx,maxy");
    }
    let aoi = Envelope::new(minx, miny, maxx, maxy);
    match mode {
        "classic" => match state.classic_search(aoi) {
            Ok(hits) => {
                let limit = req.param_or("limit", 50usize);
                let ids: Vec<Json> =
                    hits.iter().take(limit).map(|p| p.to_json()).collect();
                Json::obj(vec![
                    ("mode", Json::Str("classic".into())),
                    ("count", Json::Num(hits.len() as f64)),
                    ("products", Json::Arr(ids)),
                ])
                .pipe_json()
            }
            Err(e) => Response::error(400, &format!("search failed: {e}")),
        },
        "semantic" => {
            let wkt = format!(
                "POLYGON (({minx} {miny}, {maxx} {miny}, {maxx} {maxy}, {minx} {maxy}, {minx} {miny}))"
            );
            let q = format!(
                "PREFIX eo: <http://extremeearth.eu/ont/eo#> \
                 SELECT (COUNT(?p) AS ?n) WHERE {{ ?p eo:footprint ?f . \
                 FILTER(geof:sfIntersects(?f, \"{wkt}\"^^geo:wktLiteral)) }}"
            );
            match state.semantic.query(&q) {
                Ok(sol) => {
                    let n = match sol.scalar() {
                        Some(Term::Literal { lexical, .. }) => {
                            lexical.parse::<f64>().unwrap_or(0.0)
                        }
                        _ => 0.0,
                    };
                    Json::obj(vec![
                        ("mode", Json::Str("semantic".into())),
                        ("count", Json::Num(n)),
                        ("triples_held", Json::Num(state.semantic.len() as f64)),
                    ])
                    .pipe_json()
                }
                Err(e) => Response::error(400, &format!("semantic search failed: {e}")),
            }
        }
        other => Response::error(400, &format!("unknown mode {other:?}")),
    }
}

/// `/tiles/{level}/{row}/{col}` — a codec-encoded tile window of the
/// overview pyramid, **streamed**: the body is an
/// [`ee_raster::codec::EncodeChunks`] producer transmitted chunked, so a
/// tile bigger than memory-comfortable never materialises server-side.
/// The strong ETag still has to be in the headers before the first body
/// byte, so the tile is hashed in a sink-only encode pass first (two
/// encode passes trade CPU for never holding the body; revalidations
/// that end in 304 skip the payload pass entirely). Grid geometry comes
/// back in `x-tile-*` headers.
fn handle_tile(state: &AppState, req: &Request, level: &str, row: &str, col: &str) -> Response {
    let commit = match as_of_param(req) {
        Ok(None) => state.head_commit(),
        Ok(Some(id)) => {
            if !state.commit_known(id) {
                return Response::error(404, &format!("unknown commit id {id:016x}"));
            }
            id
        }
        Err(resp) => return resp,
    };
    let (Ok(level), Ok(row), Ok(col)) = (
        level.parse::<usize>(),
        row.parse::<usize>(),
        col.parse::<usize>(),
    ) else {
        return Response::error(400, "tile coordinates must be non-negative integers");
    };
    let Some(raster) = state.pyramid.get(level) else {
        return Response::error(
            404,
            &format!("level {level} outside pyramid of {}", state.pyramid.len()),
        );
    };
    let ts = state.tile_size;
    let (col0, row0) = (col * ts, row * ts);
    if col0 >= raster.cols() || row0 >= raster.rows() {
        return Response::error(404, "tile outside level extent");
    }
    let w = ts.min(raster.cols() - col0);
    let h = ts.min(raster.rows() - row0);
    let window = raster.window(col0, row0, w, h).expect("bounds checked");
    // Hash pass: stream the encoding through the FNV sink (no buffer).
    // The commit id (requested `asOf` or the head) seeds the hash so
    // every committed update rolls all tile validators at once, matching
    // the commit-stamped cache keys — while a versioned tile's validator
    // is pinned to its immutable id forever.
    let mut sink = FnvSink::new();
    sink.update(&commit.to_le_bytes());
    ee_raster::codec::encode_into(&window, &mut sink).expect("hash sink cannot fail");
    let etag = sink.etag();
    Response::streamed(
        200,
        "application/octet-stream",
        Box::new(TileStream(ee_raster::codec::EncodeChunks::new(window))),
    )
    .with_header("x-tile-cols", w.to_string())
    .with_header("x-tile-rows", h.to_string())
    .with_header("x-pyramid-levels", state.pyramid.len().to_string())
    .with_header("x-commit", format!("{commit:016x}"))
    .with_header("etag", etag)
}

/// A [`BodyStream`] over an incremental tile encoding (owns the window).
struct TileStream(ee_raster::codec::EncodeChunks<f32>);

impl BodyStream for TileStream {
    fn next_chunk(&mut self) -> std::io::Result<Option<&[u8]>> {
        Ok(self.0.next_chunk())
    }
}

/// An incremental FNV-1a hasher that doubles as a `Write` sink, so a
/// body can be ETagged by streaming it through without buffering.
pub struct FnvSink(u64);

impl FnvSink {
    /// Start from the FNV-1a offset basis.
    pub fn new() -> FnvSink {
        FnvSink(0xcbf2_9ce4_8422_2325)
    }

    /// Fold more bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The quoted strong-ETag form of the current hash.
    pub fn etag(&self) -> String {
        format!("\"{:016x}\"", self.0)
    }
}

impl Default for FnvSink {
    fn default() -> Self {
        Self::new()
    }
}

impl std::io::Write for FnvSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Strong ETag for a fully materialised body: quoted FNV-1a hex over the
/// bytes. Deterministic, so revalidation works across restarts and
/// replicas; identical to streaming the same bytes through [`FnvSink`].
pub fn etag_of(body: &[u8]) -> String {
    let mut sink = FnvSink::new();
    sink.update(body);
    sink.etag()
}

/// RFC 7232 `If-None-Match` evaluation against a response ETag: the
/// header is either `*` or a comma-separated list of entity-tags, each
/// optionally `W/`-prefixed. 304 revalidation uses weak comparison, so
/// the `W/` prefix is ignored on both sides.
pub fn if_none_match_matches(header: &str, etag: &str) -> bool {
    fn opaque(tag: &str) -> &str {
        tag.strip_prefix("W/").unwrap_or(tag)
    }
    let target = opaque(etag);
    header
        .split(',')
        .map(str::trim)
        .any(|tag| tag == "*" || opaque(tag) == target)
}

/// `/ice/{region}` — the PCDSS product bundle for a region, encoded
/// within `?budget=` bytes (default 1 MB). The body concatenates the
/// three length-prefixed codec segments (concentration, stage, leads) in
/// the order PCDSS ships them. The strong ETag hashes the body; a
/// `?asOf=` request additionally seeds it with the (validated) commit
/// id, so versioned ice responses revalidate and cache-pin like every
/// other versioned read.
fn handle_ice(state: &AppState, req: &Request, region: &str) -> Response {
    let as_of = match as_of_param(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Some(id) = as_of {
        if !state.commit_known(id) {
            return Response::error(404, &format!("unknown commit id {id:016x}"));
        }
    }
    let Some(products) = state.ice_region(region) else {
        return Response::error(
            404,
            &format!("unknown region {region:?}; known: {ICE_REGIONS:?}"),
        );
    };
    let budget = req.param_or("budget", 1_000_000usize);
    match encode_bundle(products, budget) {
        Ok(bundle) => {
            let mut body = Vec::with_capacity(bundle.bytes() + 12);
            for seg in [&bundle.concentration, &bundle.stage, &bundle.leads] {
                body.extend_from_slice(&(seg.len() as u32).to_le_bytes());
                body.extend_from_slice(seg);
            }
            let mut sink = FnvSink::new();
            if let Some(id) = as_of {
                sink.update(&id.to_le_bytes());
            }
            sink.update(&body);
            let mut resp = Response::octets(200, body)
                .with_header("x-downsample", bundle.downsample.to_string())
                .with_header("x-bundle-bytes", bundle.bytes().to_string())
                .with_header("etag", sink.etag());
            if let Some(id) = as_of {
                resp = resp.with_header("x-commit", format!("{id:016x}"));
            }
            resp
        }
        Err(e) => Response::error(400, &format!("budget unsatisfiable: {e}")),
    }
}

/// `/healthz` — liveness, uptime, and the engine inventory. Never
/// cached (no [`cache_key`]), so `points` and `generation` always
/// reflect the live store even immediately after a commit.
fn handle_healthz(state: &AppState) -> Response {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
        ("writable", Json::Bool(state.writable)),
        ("generation", Json::Num(state.generation() as f64)),
        ("commit", Json::Str(format!("{:016x}", state.head_commit()))),
        ("points", Json::Num(state.store().len() as f64)),
        ("products", Json::Num(state.classic.len() as f64)),
        ("pyramid_levels", Json::Num(state.pyramid.len() as f64)),
        (
            "ice_regions",
            Json::Arr(
                state
                    .ice
                    .iter()
                    .map(|(n, _)| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
    ])
    .pipe_json()
}

/// `/debug/sleep?ms=N` — hold a worker for `ms`, checking the deadline
/// every slice. Exists so deadline enforcement is testable end-to-end.
fn debug_sleep(req: &Request, deadline: Instant) -> Outcome {
    let ms = req.param_or("ms", 10u64).min(60_000);
    let until = Instant::now() + std::time::Duration::from_millis(ms);
    while Instant::now() < until {
        if Instant::now() >= deadline {
            return Outcome::DeadlineExceeded;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    Outcome::Ready(Response::json(
        200,
        &Json::obj(vec![("slept_ms", Json::Num(ms as f64))]),
    ))
}

/// `/debug/stream?chunks=N&bytes=B&ms=M` — a streamed body of `N`
/// chunks of `B` bytes each, pausing `M` ms before every chunk. Exists
/// so chunked framing and the deadline-between-chunks abort are testable
/// end-to-end: with a tight deadline and a non-zero pause, the server
/// must truncate the stream instead of pinning a worker.
fn debug_stream(req: &Request) -> Response {
    let chunks = req.param_or("chunks", 4usize).min(10_000);
    let bytes = req.param_or("bytes", 1024usize).clamp(1, 1 << 20);
    let ms = req.param_or("ms", 0u64).min(60_000);
    struct SlowChunks {
        left: usize,
        chunk: Vec<u8>,
        pause: std::time::Duration,
    }
    impl BodyStream for SlowChunks {
        fn next_chunk(&mut self) -> std::io::Result<Option<&[u8]>> {
            if self.left == 0 {
                return Ok(None);
            }
            self.left -= 1;
            if !self.pause.is_zero() {
                std::thread::sleep(self.pause);
            }
            Ok(Some(&self.chunk))
        }
    }
    Response::streamed(
        200,
        "application/octet-stream",
        Box::new(SlowChunks {
            left: chunks,
            chunk: vec![0x5A; bytes],
            pause: std::time::Duration::from_millis(ms),
        }),
    )
}

/// Small helper: turn a [`Json`] into a 200 response.
trait PipeJson {
    fn pipe_json(self) -> Response;
}

impl PipeJson for Json {
    fn pipe_json(self) -> Response {
        Response::json(200, &self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_request;
    use crate::state::DataConfig;
    use std::io::BufReader;
    use std::sync::OnceLock;

    fn state() -> &'static Arc<AppState> {
        static STATE: OnceLock<Arc<AppState>> = OnceLock::new();
        STATE.get_or_init(|| Arc::new(AppState::build(DataConfig::tiny())))
    }

    /// Drain a response body (full or streamed) into bytes.
    fn body_of(resp: Response) -> Vec<u8> {
        resp.body.collect().expect("body drains")
    }

    fn get(target: &str) -> Request {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    fn far_deadline() -> Instant {
        Instant::now() + std::time::Duration::from_secs(30)
    }

    fn ready(o: Outcome) -> Response {
        match o {
            Outcome::Ready(r) => r,
            Outcome::DeadlineExceeded => panic!("unexpected deadline"),
        }
    }

    #[test]
    fn cache_key_canonicalises_query_order() {
        let a = cache_key(&get("/query?x0=1&y0=2"), 0, 0).unwrap();
        let b = cache_key(&get("/query?y0=2&x0=1"), 0, 0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, cache_key(&get("/query?x0=1&y0=3"), 0, 0).unwrap());
        assert!(cache_key(&get("/healthz"), 0, 0).is_none());
        assert!(cache_key(&get("/metrics"), 0, 0).is_none());
        let mut post = get("/query?x0=1");
        post.method = "POST".into();
        assert!(cache_key(&post, 0, 0).is_none());
    }

    #[test]
    fn cache_key_stamps_store_derived_routes_with_commit_id() {
        // Store-derived routes change key when the head commit moves…
        for target in ["/query?x0=1&y0=2", "/tiles/0/0/0"] {
            let c0 = cache_key(&get(target), 7, 0).unwrap();
            let c1 = cache_key(&get(target), 8, 0).unwrap();
            assert_ne!(c0, c1, "{target} must be commit-stamped");
        }
        // …catalogue keys follow the ranked-index generation (not the
        // store commit — a searchText commit must never be shadowed by a
        // stale cached ranking)…
        let cat = "/catalogue/search?minx=1";
        assert_eq!(
            cache_key(&get(cat), 7, 3).unwrap(),
            cache_key(&get(cat), 8, 3).unwrap(),
            "catalogue keys ignore the store commit"
        );
        assert_ne!(
            cache_key(&get(cat), 7, 3).unwrap(),
            cache_key(&get(cat), 7, 4).unwrap(),
            "catalogue keys follow the search generation"
        );
        // …and ice stays on TTL freshness (not store-derived).
        assert_eq!(
            cache_key(&get("/ice/fram-strait"), 7, 0).unwrap(),
            cache_key(&get("/ice/fram-strait"), 8, 0).unwrap()
        );
    }

    #[test]
    fn cache_key_pins_versioned_reads_to_their_commit_id() {
        // An `asOf` key embeds the requested id, not the moving head —
        // so the entry stays addressable across commits and can be
        // pinned.
        for target in [
            "/query?x0=1&asOf=00000000000000ab",
            "/tiles/0/0/0?asOf=00000000000000ab",
            "/ice/fram-strait?asOf=00000000000000ab",
        ] {
            let k7 = cache_key(&get(target), 7, 0).unwrap();
            let k8 = cache_key(&get(target), 8, 0).unwrap();
            assert_eq!(k7, k8, "{target} key must not follow the head");
            assert!(k7.ends_with("|c00000000000000ab"), "got {k7}");
            assert!(versioned_read(&get(target)), "{target}");
        }
        assert!(!versioned_read(&get("/query?x0=1")));
        assert!(!versioned_read(&get("/catalogue/search?asOf=ab")));
        // Malformed hex: not a versioned read (the handler 400s).
        assert!(!versioned_read(&get("/query?asOf=zzz")));
    }

    fn post(target: &str, body: &str) -> Request {
        let raw = format!(
            "POST {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn update_route_requires_writable() {
        // The shared read-only state 403s every update.
        let resp = ready(dispatch(
            state(),
            &post("/update", "INSERT DATA { <http://e/x> <http://e/p> <http://e/o> }"),
            far_deadline(),
            false,
        ));
        assert_eq!(resp.status, 403);
    }

    #[test]
    fn update_route_commits_and_reports_generation() {
        let mut s = AppState::build(DataConfig::tiny());
        s.writable = true;
        let s = Arc::new(s);
        let before = s.store().len();
        let resp = ready(dispatch(
            &s,
            &post(
                "/update",
                "INSERT DATA { <http://e/x> <http://e/p> <http://e/o> . \
                 <http://e/y> <http://e/p> \"lit\" }",
            ),
            far_deadline(),
            false,
        ));
        assert_eq!(resp.status, 200);
        let v = ee_util::json::parse(std::str::from_utf8(&body_of(resp)).unwrap()).unwrap();
        assert_eq!(v.get("generation").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("inserted").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("deleted").and_then(Json::as_f64), Some(0.0));
        assert_eq!(s.store().len(), before + 2);
        assert_eq!(s.generation(), 1);
        // The written triple is immediately visible through /query.
        let q = "SELECT ?o WHERE { <http://e/x> <http://e/p> ?o }";
        let resp = ready(dispatch(
            &s,
            &get(&format!("/query?sparql={}", q.replace(' ', "%20"))),
            far_deadline(),
            false,
        ));
        let v = ee_util::json::parse(std::str::from_utf8(&body_of(resp)).unwrap()).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_f64), Some(1.0));
        // DELETE WHERE takes it back out.
        let resp = ready(dispatch(
            &s,
            &post("/update", "DELETE WHERE { <http://e/x> ?p ?o }"),
            far_deadline(),
            false,
        ));
        assert_eq!(resp.status, 200);
        let v = ee_util::json::parse(std::str::from_utf8(&body_of(resp)).unwrap()).unwrap();
        assert_eq!(v.get("deleted").and_then(Json::as_f64), Some(1.0));
        assert_eq!(s.generation(), 2);
        // Parse errors and empty bodies are 400, not 500.
        assert_eq!(
            ready(dispatch(&s, &post("/update", "DROP ALL"), far_deadline(), false)).status,
            400
        );
        assert_eq!(
            ready(dispatch(&s, &post("/update", ""), far_deadline(), false)).status,
            400
        );
    }

    #[test]
    fn query_and_tile_etags_roll_with_the_generation() {
        let mut s = AppState::build(DataConfig::tiny());
        s.writable = true;
        let s = Arc::new(s);
        let tag = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "etag")
                .map(|(_, v)| v.clone())
                .expect("response has etag")
        };
        let q0 = ready(dispatch(&s, &get("/query?x0=10&y0=10&side=20"), far_deadline(), false));
        let t0 = ready(dispatch(&s, &get("/tiles/0/0/0"), far_deadline(), false));
        // Same generation: tags are stable.
        let q0b = ready(dispatch(&s, &get("/query?x0=10&y0=10&side=20"), far_deadline(), false));
        assert_eq!(tag(&q0), tag(&q0b));
        ready(dispatch(
            &s,
            &post("/update", "INSERT DATA { <http://e/z> <http://e/p> <http://e/o> }"),
            far_deadline(),
            false,
        ));
        let q1 = ready(dispatch(&s, &get("/query?x0=10&y0=10&side=20"), far_deadline(), false));
        let t1 = ready(dispatch(&s, &get("/tiles/0/0/0"), far_deadline(), false));
        assert_ne!(tag(&q0), tag(&q1), "query etag rolls on commit");
        assert_ne!(tag(&t0), tag(&t1), "tile etag rolls on commit");
    }

    #[test]
    fn as_of_queries_read_historical_commits() {
        let mut s = AppState::build(DataConfig::tiny());
        s.writable = true;
        let s = Arc::new(s);
        let header = |r: &Response, name: &str| {
            r.headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        let count_of = |r: Response| {
            ee_util::json::parse(std::str::from_utf8(&body_of(r)).unwrap())
                .unwrap()
                .get("count")
                .and_then(Json::as_f64)
                .unwrap()
        };
        ready(dispatch(
            &s,
            &post("/update", "INSERT DATA { <http://e/v> <http://e/p> \"v1\" }"),
            far_deadline(),
            false,
        ));
        let c1 = s.head_commit();
        ready(dispatch(
            &s,
            &post("/update", "INSERT DATA { <http://e/v> <http://e/p> \"v2\" }"),
            far_deadline(),
            false,
        ));
        assert_ne!(c1, s.head_commit());
        let q = "SELECT ?o WHERE { <http://e/v> <http://e/p> ?o }".replace(' ', "%20");
        // Head sees both versions, the pinned read sees only v1.
        let head = ready(dispatch(&s, &get(&format!("/query?sparql={q}")), far_deadline(), false));
        assert_eq!(
            header(&head, "x-commit").as_deref(),
            Some(format!("{:016x}", s.head_commit()).as_str())
        );
        assert_eq!(count_of(head), 2.0);
        let pinned = ready(dispatch(
            &s,
            &get(&format!("/query?sparql={q}&asOf={c1:016x}")),
            far_deadline(),
            false,
        ));
        assert_eq!(pinned.status, 200);
        assert_eq!(header(&pinned, "x-commit").as_deref(), Some(format!("{c1:016x}").as_str()));
        assert!(header(&pinned, "etag").is_some());
        assert_eq!(count_of(pinned), 1.0);
        // The SPARQL `AS OF` clause names the same view.
        let clause = format!(
            "SELECT ?o WHERE {{ <http://e/v> <http://e/p> ?o }} AS OF <{c1:016x}>"
        )
        .replace(' ', "%20");
        let via_clause = ready(dispatch(&s, &get(&format!("/query?sparql={clause}")), far_deadline(), false));
        assert_eq!(via_clause.status, 200);
        assert_eq!(count_of(via_clause), 1.0);
        // Param/clause conflict, malformed hex, and unknown ids fail loudly.
        let conflict = ready(dispatch(
            &s,
            &get(&format!("/query?sparql={clause}&asOf={:016x}", s.head_commit())),
            far_deadline(),
            false,
        ));
        assert_eq!(conflict.status, 400);
        assert_eq!(
            ready(dispatch(&s, &get(&format!("/query?sparql={q}&asOf=zz")), far_deadline(), false)).status,
            400
        );
        assert_eq!(
            ready(dispatch(
                &s,
                &get(&format!("/query?sparql={q}&asOf=00000000000000ff")),
                far_deadline(),
                false,
            ))
            .status,
            404
        );
        // Tiles and ice accept the same pin: stable bytes + commit echo.
        let t = ready(dispatch(&s, &get(&format!("/tiles/0/0/0?asOf={c1:016x}")), far_deadline(), false));
        assert_eq!(t.status, 200);
        assert_eq!(header(&t, "x-commit").as_deref(), Some(format!("{c1:016x}").as_str()));
        assert_eq!(
            ready(dispatch(&s, &get("/tiles/0/0/0?asOf=00000000000000ff"), far_deadline(), false)).status,
            404
        );
        let ice = ready(dispatch(&s, &get(&format!("/ice/fram-strait?asOf={c1:016x}")), far_deadline(), false));
        assert_eq!(ice.status, 200);
        assert_eq!(header(&ice, "x-commit").as_deref(), Some(format!("{c1:016x}").as_str()));
    }

    #[test]
    fn query_route_returns_solutions() {
        let resp = ready(dispatch(state(), &get("/query?x0=10&y0=10&side=20"), far_deadline(), false));
        assert_eq!(resp.status, 200);
        assert!(resp.body.is_streamed(), "query bodies stream");
        let body = body_of(resp);
        let v = ee_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v.get("count").and_then(Json::as_f64).unwrap() >= 1.0);
        // Raw SPARQL arm and the 400 path.
        let resp = ready(dispatch(state(), &get("/query?sparql=nonsense"), far_deadline(), false));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn catalogue_route_classic_and_semantic_agree() {
        let target = "/catalogue/search?minx=5&miny=5&maxx=12&maxy=12";
        let classic = ready(dispatch(state(), &get(target), far_deadline(), false));
        assert_eq!(classic.status, 200);
        let classic_body = body_of(classic);
        let cv = ee_util::json::parse(std::str::from_utf8(&classic_body).unwrap()).unwrap();
        let semantic = ready(dispatch(
            state(),
            &get(&format!("{target}&mode=semantic")),
            far_deadline(),
            false,
        ));
        let semantic_body = body_of(semantic);
        let sv = ee_util::json::parse(std::str::from_utf8(&semantic_body).unwrap()).unwrap();
        assert_eq!(
            cv.get("count").and_then(Json::as_f64),
            sv.get("count").and_then(Json::as_f64),
            "both catalogue arms count the same products"
        );
    }

    #[test]
    fn catalogue_route_ranked_mode_orders_by_score() {
        let resp = ready(dispatch(
            state(),
            &get("/catalogue/search?mode=ranked&q=sentinel-2%20surface%20reflectance%20clear&k=5"),
            far_deadline(),
            false,
        ));
        assert_eq!(resp.status, 200);
        let v = ee_util::json::parse(std::str::from_utf8(&body_of(resp)).unwrap()).unwrap();
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("ranked"));
        let results = v.get("results").and_then(Json::as_arr).unwrap();
        assert!(!results.is_empty() && results.len() <= 5);
        let scores: Vec<f64> = results
            .iter()
            .map(|r| r.get("score").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "scores descend: {scores:?}"
        );
        // Every hit matches the query's strongest constraint: the
        // level-2a surface-reflectance vocabulary only appears on MSIL2A.
        for r in results {
            let pt = r
                .get("product")
                .and_then(|p| p.get("product_type"))
                .and_then(Json::as_str)
                .unwrap();
            assert_eq!(pt, "MSIL2A", "surface-reflectance terms rank MSIL2A first");
        }
        // Missing or empty q is a 400, not a panic or an empty 200.
        for target in [
            "/catalogue/search?mode=ranked",
            "/catalogue/search?mode=ranked&q=%20",
        ] {
            assert_eq!(ready(dispatch(state(), &get(target), far_deadline(), false)).status, 400);
        }
        // Unknown modes still 400.
        assert_eq!(
            ready(dispatch(state(), &get("/catalogue/search?mode=psychic"), far_deadline(), false)).status,
            400
        );
    }

    #[test]
    fn catalogue_modes_record_latency_metrics() {
        let s = Arc::new(AppState::build(DataConfig::tiny()));
        let classic = ready(dispatch(
            &s,
            &get("/catalogue/search?minx=5&miny=5&maxx=12&maxy=12"),
            far_deadline(),
            false,
        ));
        assert_eq!(classic.status, 200);
        let ranked = ready(dispatch(
            &s,
            &get("/catalogue/search?mode=ranked&q=radar"),
            far_deadline(),
            false,
        ));
        assert_eq!(ranked.status, 200);
        assert_eq!(s.catalogue_mode_latency("classic").unwrap().count(), 1);
        assert_eq!(s.catalogue_mode_latency("ranked").unwrap().count(), 1);
        assert_eq!(s.catalogue_mode_latency("semantic").unwrap().count(), 0);
        // The 400 arm records nothing.
        let bad = ready(dispatch(&s, &get("/catalogue/search?mode=ranked"), far_deadline(), false));
        assert_eq!(bad.status, 400);
        assert_eq!(s.catalogue_mode_latency("ranked").unwrap().count(), 1);
        let section = s.render_prometheus_section();
        assert!(section.contains("ee_serve_catalogue_mode_requests_total{mode=\"classic\"} 1"));
        assert!(section.contains("ee_serve_catalogue_mode_requests_total{mode=\"ranked\"} 1"));
        assert!(section.contains("ee_serve_catalogue_mode_latency_us_count{mode=\"ranked\"} 1"));
    }

    #[test]
    fn tile_route_serves_decodable_windows() {
        let resp = ready(dispatch(state(), &get("/tiles/0/0/0"), far_deadline(), false));
        assert_eq!(resp.status, 200);
        assert!(resp.body.is_streamed(), "tile bodies stream");
        let tile: ee_raster::Raster<f32> = ee_raster::codec::decode(&body_of(resp)).unwrap();
        assert_eq!(tile.shape(), (32, 32));
        // Edge tile is clipped, deep level is small, out of range 404s.
        let deep = ready(dispatch(state(), &get("/tiles/5/0/0"), far_deadline(), false));
        assert_eq!(deep.status, 200);
        assert_eq!(ready(dispatch(state(), &get("/tiles/99/0/0"), far_deadline(), false)).status, 404);
        assert_eq!(ready(dispatch(state(), &get("/tiles/0/99/0"), far_deadline(), false)).status, 404);
        assert_eq!(ready(dispatch(state(), &get("/tiles/0/x/0"), far_deadline(), false)).status, 400);
    }

    #[test]
    fn ice_route_respects_budget() {
        let full = ready(dispatch(state(), &get("/ice/fram-strait"), far_deadline(), false));
        assert_eq!(full.status, 200);
        assert_eq!(full.headers.iter().find(|(n, _)| n == "x-downsample").unwrap().1, "1");
        let full_bytes: usize = full
            .headers
            .iter()
            .find(|(n, _)| n == "x-bundle-bytes")
            .unwrap()
            .1
            .parse()
            .unwrap();
        // Any budget below the full-resolution size forces ≥1 halving.
        let tight = ready(dispatch(
            state(),
            &get(&format!("/ice/fram-strait?budget={}", full_bytes - 1)),
            far_deadline(),
            false,
        ));
        assert_eq!(tight.status, 200);
        let ds: usize = tight
            .headers
            .iter()
            .find(|(n, _)| n == "x-downsample")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(ds > 1, "tight budget forces downsampling");
        assert!(body_of(tight).len() < body_of(full).len());
        assert_eq!(
            ready(dispatch(state(), &get("/ice/atlantis"), far_deadline(), false)).status,
            404
        );
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let h = ready(dispatch(state(), &get("/healthz"), far_deadline(), false));
        assert_eq!(h.status, 200);
        assert_eq!(ready(dispatch(state(), &get("/nope"), far_deadline(), false)).status, 404);
        // Debug routes 404 unless enabled.
        assert_eq!(
            ready(dispatch(state(), &get("/debug/sleep?ms=1"), far_deadline(), false)).status,
            404
        );
        // POST is served only on /query; everything else stays 405.
        let mut post = get("/healthz");
        post.method = "POST".into();
        assert_eq!(ready(dispatch(state(), &post, far_deadline(), false)).status, 405);
    }

    #[test]
    fn post_query_executes_sparql_body() {
        let sparql = "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g }";
        let raw = format!(
            "POST /query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{sparql}",
            sparql.len()
        );
        let req = read_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        let resp = ready(dispatch(state(), &req, far_deadline(), false));
        assert_eq!(resp.status, 200);
        let body = body_of(resp);
        let v = ee_util::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v.get("count").and_then(Json::as_f64).unwrap() >= 1.0);
        // Malformed SPARQL and empty bodies are 400, not 500.
        let raw = "POST /query HTTP/1.1\r\ncontent-length: 8\r\n\r\nnonsense";
        let req = read_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(ready(dispatch(state(), &req, far_deadline(), false)).status, 400);
        let raw = "POST /query HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
        let req = read_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(ready(dispatch(state(), &req, far_deadline(), false)).status, 400);
    }

    #[test]
    fn get_and_post_query_share_the_plan_cache() {
        // A fresh state so cache counters start at zero.
        let s = Arc::new(AppState::build(DataConfig::tiny()));
        let sparql = "PREFIX e: <http://e/>  SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g }";
        let via_get = ready(dispatch(
            &s,
            &get(&format!("/query?sparql={}", sparql.replace(' ', "%20"))),
            far_deadline(),
            false,
        ));
        assert_eq!(via_get.status, 200);
        // POST the same query with different whitespace: canonicalisation
        // makes it the same plan-cache entry.
        let body = sparql.replace("  ", " \n ");
        let raw = format!(
            "POST /query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = read_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        let via_post = ready(dispatch(&s, &req, far_deadline(), false));
        assert_eq!(via_post.status, 200);
        assert_eq!(body_of(via_get), body_of(via_post), "same answer both verbs");
        let (hits, misses, entries) = s.plan_cache_stats();
        assert_eq!((hits, misses, entries), (1, 1, 1), "one plan, reused");
    }

    #[test]
    fn tile_responses_carry_a_deterministic_etag() {
        let a = ready(dispatch(state(), &get("/tiles/0/0/0"), far_deadline(), false));
        let b = ready(dispatch(state(), &get("/tiles/0/0/0"), far_deadline(), false));
        let tag = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "etag")
                .map(|(_, v)| v.clone())
                .expect("tile has etag")
        };
        assert_eq!(tag(&a), tag(&b), "same tile, same tag");
        assert!(tag(&a).starts_with('"') && tag(&a).ends_with('"'));
        let c = ready(dispatch(state(), &get("/tiles/1/0/0"), far_deadline(), false));
        assert_ne!(tag(&a), tag(&c), "different tile, different tag");
        assert_eq!(etag_of(b"x"), etag_of(b"x"));
        assert_ne!(etag_of(b"x"), etag_of(b"y"));
    }

    #[test]
    fn if_none_match_handles_lists_and_wildcard() {
        let tag = "\"abc123\"";
        // Single exact tag and the * form.
        assert!(if_none_match_matches("\"abc123\"", tag));
        assert!(if_none_match_matches("*", tag));
        assert!(!if_none_match_matches("\"zzz\"", tag));
        // Comma-separated lists, with and without surrounding whitespace.
        assert!(if_none_match_matches("\"zzz\", \"abc123\"", tag));
        assert!(if_none_match_matches("\"abc123\",\"zzz\"", tag));
        assert!(if_none_match_matches("\"a\" , \"b\",\"abc123\"", tag));
        assert!(!if_none_match_matches("\"a\", \"b\", \"c\"", tag));
        // Weak validators compare equal to their strong counterparts.
        assert!(if_none_match_matches("W/\"abc123\"", tag));
        assert!(if_none_match_matches("\"zzz\", W/\"abc123\"", tag));
        assert!(if_none_match_matches("\"abc123\"", "W/\"abc123\""));
        // A list containing * anywhere still matches.
        assert!(if_none_match_matches("\"zzz\", *", tag));
    }

    #[test]
    fn debug_sleep_honours_deadline() {
        let past = Instant::now();
        match dispatch(state(), &get("/debug/sleep?ms=500"), past, true) {
            Outcome::DeadlineExceeded => {}
            Outcome::Ready(r) => panic!("expected deadline, got {}", r.status),
        }
        let ok = ready(dispatch(state(), &get("/debug/sleep?ms=2"), far_deadline(), true));
        assert_eq!(ok.status, 200);
    }
}
