//! The server: two interchangeable connection architectures over one
//! shared request-resolution core.
//!
//! **Event-driven (default, [`ServerKind::Event`])** — the C10K tier:
//!
//! ```text
//!   acceptor ──► shard inboxes ──► N event-loop shards (poll(2))
//!                                     │  nonblocking sockets, one
//!                                     │  EventConn state machine each:
//!                                     │  Reading → Dispatched →
//!                                     │  StreamingBody → KeepAliveIdle
//!                                     ▼
//!                               job queue ──► M worker threads
//!                                     ▲            (resolve / pull
//!                                     └── ready ◄─ body chunks)
//!                                         queue + wake pipe
//! ```
//!
//! A connection is a small state struct, not a thread: the shard polls
//! its sockets, feeds bytes to a resumable [`RequestParser`], and hands
//! complete requests to the worker pool. Heavy route work (plan/execute,
//! tile encode) runs on workers; streamed bodies are pulled in bounded
//! batches **only while the socket drains**, so a stalled reader parks
//! its `BodyStream` in the shard (O(batch) memory) instead of pinning a
//! worker. Admission control is layered: a max-connections cap at
//! accept, the dispatch-queue watermark, and per-route in-flight quotas
//! — each shedding with a graceful 503 + `Retry-After`. Idle keep-alive
//! connections and stuck partial request heads (slow loris) are reaped
//! on timers.
//!
//! **Thread-per-connection ([`ServerKind::Threaded`])** — the
//! pre-event-loop architecture, kept as the E-c8 baseline: acceptor →
//! bounded `VecDeque<Conn>` → fixed workers, each owning a blocking
//! connection end-to-end. It saturates at `workers` concurrent
//! connections by construction.
//!
//! Both paths answer requests through the same [`resolve`] function and
//! serialise with the same [`Response::head_bytes`] / [`frame_chunk`]
//! helpers, so their wire bytes are identical by construction (and
//! asserted in `tests/event.rs`).

use crate::cache::{CachedBody, ShardedLru};
use crate::http::{
    frame_chunk, read_request, Body, BodyStream, HttpError, Request, RequestParser, Response,
    SendBuf, CHUNK_TERMINATOR,
};
use crate::metrics::{Metrics, Route, ROUTES};
use crate::router::{cache_key, classify, dispatch, Outcome};
use crate::state::AppState;
use ee_util::poll::{poll_fds, PollFd, WakePipe, Waker, POLLIN, POLLOUT};
use std::collections::VecDeque;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Connection architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// Nonblocking sockets on poll-based event-loop shards; connections
    /// are state machines, heavy work runs on the worker pool.
    Event,
    /// Thread-per-connection over the fixed worker pool (the pre-C10K
    /// architecture, kept as the measured baseline).
    Threaded,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection architecture (event-driven by default).
    pub kind: ServerKind,
    /// Worker threads. Event mode: the pool running route work and body
    /// chunk production. Threaded mode: connection-serving threads.
    pub workers: usize,
    /// Event-loop shards (event mode only), each owning a poll set.
    pub event_shards: usize,
    /// Hard cap on concurrently open connections (event mode); accepts
    /// beyond it are answered 503 and closed.
    pub max_connections: usize,
    /// Admission watermark. Threaded: accepts are 503-rejected while the
    /// connection queue holds this many. Event: requests are 503-shed
    /// while this many dispatched jobs await a worker.
    pub queue_watermark: usize,
    /// Default per-route in-flight request quota (event mode); a route
    /// at its quota sheds further requests with 503 without costing the
    /// connection.
    pub route_quota: usize,
    /// Per-route overrides of [`route_quota`](ServerConfig::route_quota).
    pub route_quota_overrides: Vec<(Route, usize)>,
    /// Per-request deadline (first request: measured from admission, so
    /// queue wait counts; later keep-alive requests: from read).
    pub deadline: Duration,
    /// Idle timeout for keep-alive connections.
    pub idle_timeout: Duration,
    /// Requests served on one connection before it is recycled.
    pub max_requests_per_conn: usize,
    /// HTTP/1.1 pipelining depth cap (event mode): consecutive requests
    /// dispatched while more request bytes sit buffered behind them.
    /// A client streaming requests faster than it drains responses is
    /// answered 503 and closed once it exceeds this depth (counted in
    /// `ee_serve_pipeline_capped_total`).
    pub max_pipeline_depth: usize,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// Response-cache entries per shard.
    pub cache_capacity_per_shard: usize,
    /// Response-cache TTL.
    pub cache_ttl: Duration,
    /// Largest response body the cache stores per entry. Streamed bodies
    /// are teed into the cache only up to this size; anything bigger
    /// streams through uncached (counted in
    /// `ee_serve_stream_uncacheable_total`).
    pub cache_max_body_bytes: usize,
    /// `Retry-After` seconds advertised on 503.
    pub retry_after_secs: u64,
    /// Per-write socket timeout (threaded mode; also used for the
    /// blocking 503 writes at accept time in both modes).
    pub write_timeout: Duration,
    /// Enable `/debug/*` routes (tests and experiments only).
    pub debug_routes: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            kind: ServerKind::Event,
            workers: ee_util::par::available_threads().min(8),
            event_shards: ee_util::par::available_threads().clamp(1, 4),
            max_connections: 8_192,
            queue_watermark: 64,
            route_quota: 512,
            route_quota_overrides: Vec::new(),
            deadline: Duration::from_millis(2_000),
            idle_timeout: Duration::from_millis(5_000),
            max_requests_per_conn: 10_000,
            max_pipeline_depth: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 512,
            cache_ttl: Duration::from_secs(60),
            cache_max_body_bytes: 256 * 1024,
            retry_after_secs: 1,
            write_timeout: Duration::from_millis(200),
            debug_routes: false,
        }
    }
}

impl ServerConfig {
    /// The in-flight quota for `route` (event mode).
    pub fn quota_for(&self, route: Route) -> usize {
        self.route_quota_overrides
            .iter()
            .find(|(r, _)| *r == route)
            .map(|(_, q)| *q)
            .unwrap_or(self.route_quota)
    }
}

/// An admitted connection waiting for (or being served by) a worker
/// (threaded mode).
struct Conn {
    stream: TcpStream,
    admitted: Instant,
}

/// A connection's identity across the shard/worker boundary: slab slot
/// plus a per-shard sequence number, so a completion for a connection
/// that died (and whose slot was reused) is recognised as stale.
type Token = (usize, u64);

/// A streamed response in flight: the pull-based body plus everything
/// the chunk producer needs. Travels shard → worker → shard; while the
/// socket is backed up it parks in the shard, holding O(batch) state.
struct StreamCtx {
    body: Box<dyn BodyStream>,
    tee: Option<StreamTee>,
    deadline: Instant,
    route: Route,
    t0: Instant,
    first_chunk: bool,
}

/// Work for the event-mode worker pool.
enum Job {
    /// Resolve a parsed request into response bytes.
    Resolve {
        shard: usize,
        token: Token,
        req: Box<Request>,
        deadline: Instant,
        keep_alive: bool,
    },
    /// Pull the next bounded batch of body chunks.
    NextChunk {
        shard: usize,
        token: Token,
        ctx: StreamCtx,
    },
}

/// How a streamed body continues after a chunk batch.
enum StreamNext {
    /// More chunks remain; the context comes back to the shard.
    More(StreamCtx),
    /// Clean end: the terminator was emitted (and any tee inserted).
    Finished,
    /// Error or deadline expiry: the chunked body is truncated on the
    /// wire and the connection must close.
    Abort,
}

/// A worker's result, routed back to the owning shard.
enum Done {
    /// A complete serialised response (head + sized body).
    Full { bytes: Vec<u8> },
    /// Streamed-response bytes (head and/or framed chunks) plus how the
    /// stream continues.
    Stream { bytes: Vec<u8>, next: StreamNext },
}

struct Completion {
    token: Token,
    done: Done,
}

/// Per-shard mailboxes: fresh sockets from the acceptor, completions
/// from workers, and the waker that interrupts the shard's poll.
struct ShardHandle {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<VecDeque<Completion>>,
    waker: Waker,
}

struct Shared {
    config: ServerConfig,
    state: Arc<AppState>,
    metrics: Metrics,
    cache: ShardedLru,
    // Threaded-mode connection queue.
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    // Event-mode job queue and shard mailboxes.
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    shards: Vec<ShardHandle>,
    route_inflight: [AtomicU64; ROUTES.len()],
    stop: AtomicBool,
}

impl Shared {
    fn push_job(&self, job: Job) {
        let mut q = self.jobs.lock().expect("jobs poisoned");
        q.push_back(job);
        self.metrics.set_queue_depth(q.len() as u64);
        drop(q);
        self.jobs_cv.notify_one();
    }

    fn route_index(route: Route) -> usize {
        ROUTES.iter().position(|r| *r == route).expect("in ROUTES")
    }

    /// Try to take one in-flight slot on `route`; `false` means the
    /// quota is exhausted and the request must be shed.
    fn acquire_route(&self, route: Route) -> bool {
        let i = Self::route_index(route);
        let prev = self.route_inflight[i].fetch_add(1, Ordering::AcqRel);
        if prev as usize >= self.config.quota_for(route) {
            self.route_inflight[i].fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    fn release_route(&self, route: Route) {
        self.route_inflight[Self::route_index(route)].fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// The bound address (resolved ephemeral port).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Serving-tier metrics (live).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Response cache statistics (live).
    pub fn cache(&self) -> &ShardedLru {
        &self.shared.cache
    }

    /// Stop accepting, wake the workers and shards, and join every
    /// thread. Idempotent in effect; consumes the handle.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        self.shared.jobs_cv.notify_all();
        for s in &self.shared.shards {
            s.waker.wake();
        }
        for t in self.threads {
            let _ = t.join();
        }
        // Close anything still queued.
        self.shared.queue.lock().expect("queue poisoned").clear();
        self.shared.jobs.lock().expect("jobs poisoned").clear();
    }
}

/// Start a server on `config.addr` fronting `state`.
pub fn start(config: ServerConfig, state: Arc<AppState>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let kind = config.kind;
    if kind == ServerKind::Event {
        // Two fds per loopback connection (plus listener, pipes, data
        // files): make sure the fleet fits.
        let _ = ee_util::poll::raise_nofile_limit(config.max_connections as u64 * 2 + 512);
    }

    // Shard mailboxes (and their wake pipes) exist before the Shared so
    // workers can address them; the pipes themselves move into the shard
    // threads below.
    let shard_count = if kind == ServerKind::Event {
        config.event_shards.max(1)
    } else {
        0
    };
    let mut pipes = Vec::with_capacity(shard_count);
    let mut handles = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let pipe = WakePipe::new()?;
        handles.push(ShardHandle {
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(VecDeque::new()),
            waker: pipe.waker()?,
        });
        pipes.push(pipe);
    }

    let shared = Arc::new(Shared {
        cache: ShardedLru::with_max_entry_bytes(
            config.cache_shards,
            config.cache_capacity_per_shard,
            config.cache_ttl,
            config.cache_max_body_bytes,
        ),
        metrics: Metrics::new(),
        state,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        jobs: Mutex::new(VecDeque::new()),
        jobs_cv: Condvar::new(),
        shards: handles,
        route_inflight: Default::default(),
        stop: AtomicBool::new(false),
        config,
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ee-serve-accept".into())
                .spawn(move || match kind {
                    ServerKind::Event => event_accept_loop(&listener, &shared),
                    ServerKind::Threaded => accept_loop(&listener, &shared),
                })?,
        );
    }
    for (i, pipe) in pipes.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ee-serve-shard-{i}"))
                .spawn(move || Shard::new(&shared, i, pipe).run())?,
        );
    }
    for w in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ee-serve-worker-{w}"))
                .spawn(move || match kind {
                    ServerKind::Event => event_worker_loop(&shared),
                    ServerKind::Threaded => worker_loop(&shared),
                })?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Classify an `accept(2)` failure: fd exhaustion (`EMFILE`/`ENFILE`)
/// earns a longer backoff than transient per-connection errors.
fn accept_backoff(e: &std::io::Error) -> Duration {
    match e.raw_os_error() {
        Some(23) | Some(24) => Duration::from_millis(50), // ENFILE / EMFILE
        _ => Duration::from_millis(5),
    }
}

/// Answer a just-accepted connection 503 and close it (used by both
/// architectures for accept-time shedding).
fn shed_at_accept(shared: &Shared, stream: TcpStream, msg: &str) {
    shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut resp = Response::error(503, msg)
        .with_header("retry-after", shared.config.retry_after_secs.to_string());
    let mut s = stream;
    let _ = resp.write_to(&mut s, false);
}

// ---------------------------------------------------------------------
// Threaded architecture (baseline)
// ---------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // fd exhaustion (or a transient error): back off instead
                // of spinning on a hot failing accept.
                shared.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(accept_backoff(&e));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let depth = {
            let q = shared.queue.lock().expect("queue poisoned");
            q.len()
        };
        if depth >= shared.config.queue_watermark {
            // Overload: shed in O(1) with an explicit retry hint.
            shed_at_accept(shared, stream, "admission queue full");
            continue;
        }
        shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        let mut q = shared.queue.lock().expect("queue poisoned");
        q.push_back(Conn {
            stream,
            admitted: Instant::now(),
        });
        shared.metrics.set_queue_depth(q.len() as u64);
        drop(q);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = q.pop_front() {
                    shared.metrics.set_queue_depth(q.len() as u64);
                    break c;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue poisoned");
                q = guard;
            }
        };
        serve_connection(shared, conn);
    }
}

/// Serve one admitted connection to completion (close, error, idle
/// timeout, or request budget).
fn serve_connection(shared: &Shared, conn: Conn) {
    let Conn { stream, admitted } = conn;
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // The first request's deadline starts at admission: time spent in the
    // accept queue counts against it.
    let mut deadline = admitted + shared.config.deadline;
    for served in 0..shared.config.max_requests_per_conn {
        if served > 0 {
            deadline = Instant::now() + shared.config.deadline;
        }
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed) | Err(HttpError::IdleTimeout) => return,
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge(_)) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(413, "body too large").write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Malformed(m)) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(400, &m).write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = req.wants_keep_alive() && served + 1 < shared.config.max_requests_per_conn;

        let Resolved {
            mut response,
            route,
            t0,
            mut stream_tee,
        } = resolve(shared, &req, deadline);

        // The observer runs once per body chunk *before* it hits the wire:
        // it records time-to-first-byte and bytes sent, tees cacheable
        // streamed bodies, and re-checks the deadline between chunks (a
        // `false` return aborts only streamed bodies — full bodies keep
        // their pre-dispatch 504 semantics).
        let streamed = response.body.is_streamed();
        let max_tee = shared.cache.max_entry_bytes();
        let mut first_chunk = true;
        let write_res = response.write_to_observed(&mut writer, keep_alive, |chunk| {
            if first_chunk {
                first_chunk = false;
                let ttfb_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                shared.metrics.record_ttfb(route, ttfb_us);
            }
            shared.metrics.add_bytes_sent(chunk.len() as u64);
            if let Some(tee) = stream_tee.as_mut() {
                tee.absorb(chunk, max_tee, &shared.metrics);
            }
            !streamed || Instant::now() < deadline
        });
        if write_res.is_err() {
            if streamed && Instant::now() >= deadline {
                shared
                    .metrics
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
            }
            // A truncated chunked body poisons the connection; close it.
            return;
        }
        if let Some(tee) = stream_tee.take() {
            tee.insert_if_complete(&shared.cache);
        }
        if !keep_alive {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Shared request resolution
// ---------------------------------------------------------------------

/// Everything both architectures need to transmit a resolved request:
/// the response itself, its route and start time (TTFB accounting), and
/// the pending cache tee for cacheable streamed misses.
struct Resolved {
    response: Response,
    route: Route,
    t0: Instant,
    stream_tee: Option<StreamTee>,
}

/// Answer one parsed request: deadline check, `/metrics` special case,
/// response-cache hit/miss, engine dispatch, post-commit cache sweep,
/// conditional-request (`If-None-Match`) elision, and per-route latency
/// accounting. Used verbatim by the threaded path (followed by a
/// blocking observed write) and by event-mode workers (followed by
/// serialisation into the connection's send queue).
fn resolve(shared: &Shared, req: &Request, deadline: Instant) -> Resolved {
    let route = classify(&req.path);
    let t0 = Instant::now();

    // When a cacheable miss returns a *streamed* body there is nothing
    // to store up front; the write path tees the chunks into this buffer
    // and the entry is inserted only after the body completes.
    let mut stream_tee: Option<StreamTee> = None;

    let mut response = if Instant::now() >= deadline {
        // Expired while queued (or while the previous exchange ran).
        shared
            .metrics
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        Response::error(504, "deadline exceeded before handling")
    } else if route == Route::Metrics {
        // Served here because it needs the metrics + cache objects.
        Response::text(
            200,
            shared.metrics.render_prometheus(
                shared.cache.hits(),
                shared.cache.misses(),
                shared.cache.len(),
                shared.state.plan_cache_stats(),
            ) + &shared.state.render_prometheus_section(),
        )
    } else {
        // Keys embed the head commit id (store-derived routes) or the
        // ranked-search index generation (catalogue), so entries cached
        // before a commit or reindex are unreachable after it.
        let key = cache_key(
            req,
            shared.state.head_commit(),
            shared.state.search_generation(),
        );
        let cacheable = key.is_some();
        // Versioned (`asOf`) responses are immutable: pin them so the
        // update sweep and TTL expiry leave them alone.
        let pinned = cacheable && crate::router::versioned_read(req);
        let cached = key.as_ref().and_then(|k| shared.cache.get(k));
        match cached {
            Some(hit) => {
                let mut headers = hit.headers.clone();
                headers.push(("x-cache".into(), "HIT".into()));
                Response {
                    status: hit.status,
                    content_type: hit.content_type.clone(),
                    headers,
                    body: Body::Full(hit.body.clone()),
                }
            }
            None => match dispatch(&shared.state, req, deadline, shared.config.debug_routes) {
                Outcome::DeadlineExceeded => {
                    shared
                        .metrics
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    Response::error(504, "deadline exceeded in handler")
                }
                Outcome::Ready(mut resp) => {
                    if resp.status == 200 {
                        if let Some(k) = key {
                            // Full bodies can be cached before the
                            // write; streamed ones are teed during it
                            // (headers snapshotted *before* the
                            // x-cache marker so replays re-mark).
                            if let Some(full) = resp.body.as_full() {
                                let entry = Arc::new(CachedBody {
                                    status: resp.status,
                                    content_type: resp.content_type.clone(),
                                    headers: resp.headers.clone(),
                                    body: full.to_vec(),
                                });
                                if pinned {
                                    shared.cache.put_pinned(k, entry);
                                } else {
                                    shared.cache.put(k, entry);
                                }
                            } else {
                                stream_tee = Some(StreamTee {
                                    key: k,
                                    status: resp.status,
                                    content_type: resp.content_type.clone(),
                                    headers: resp.headers.clone(),
                                    buf: Vec::new(),
                                    overflowed: false,
                                    pinned,
                                });
                            }
                        }
                    }
                    if cacheable {
                        resp.headers.push(("x-cache".into(), "MISS".into()));
                    }
                    resp
                }
            },
        }
    };

    // A committed update: sweep the unpinned response cache. The
    // commit-stamped keys already guarantee staleness can't be served;
    // the sweep reclaims the dead entries' memory now and feeds
    // `ee_serve_invalidated_total{kind="responses"}`. Pinned versioned
    // entries survive — their commit ids are immutable history.
    if route == Route::Update && response.status == 200 {
        let swept = shared.cache.sweep_unpinned() as u64;
        shared.state.note_invalidated_responses(swept);
    }

    // Conditional requests: when the client's If-None-Match equals
    // the response's ETag the body is elided with a 304. Applied
    // after cache resolution so both hits and misses revalidate.
    if response.status == 200 {
        if let (Some(inm), Some(tag)) = (
            req.header("if-none-match"),
            response
                .headers
                .iter()
                .find(|(n, _)| n == "etag")
                .map(|(_, v)| v.clone()),
        ) {
            if crate::router::if_none_match_matches(inm, &tag) {
                shared.metrics.not_modified.fetch_add(1, Ordering::Relaxed);
                response.status = 304;
                response.body = Body::empty();
                // The elided stream never produces chunks; don't cache
                // an empty body under the resource's key.
                stream_tee = None;
            }
        }
    }

    let latency_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared.metrics.record(route, latency_us);

    Resolved {
        response,
        route,
        t0,
        stream_tee,
    }
}

/// Pending cache insert for a streamed cacheable miss: metadata captured
/// at dispatch time plus the chunk bytes accumulated during the write.
/// `overflowed` flips once the body exceeds the cache's per-entry cap;
/// the buffer is dropped and the entry never inserted.
struct StreamTee {
    key: String,
    status: u16,
    content_type: String,
    headers: Vec<(String, String)>,
    buf: Vec<u8>,
    overflowed: bool,
    /// Versioned (`asOf`) response: insert with `put_pinned` so the
    /// entry is exempt from TTL expiry and update sweeps.
    pinned: bool,
}

impl StreamTee {
    /// Accumulate one body chunk, flipping to overflowed (and counting
    /// the stream uncacheable) when the per-entry cap is crossed.
    fn absorb(&mut self, chunk: &[u8], max_tee: usize, metrics: &Metrics) {
        if self.overflowed {
            return;
        }
        if self.buf.len() + chunk.len() > max_tee {
            self.overflowed = true;
            self.buf = Vec::new();
            metrics.stream_uncacheable.fetch_add(1, Ordering::Relaxed);
        } else {
            self.buf.extend_from_slice(chunk);
        }
    }

    /// Insert the accumulated entry after a complete body (no-op if it
    /// overflowed the cap).
    fn insert_if_complete(self, cache: &ShardedLru) {
        if !self.overflowed {
            let entry = Arc::new(CachedBody {
                status: self.status,
                content_type: self.content_type,
                headers: self.headers,
                body: self.buf,
            });
            if self.pinned {
                cache.put_pinned(self.key, entry);
            } else {
                cache.put(self.key, entry);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Event-driven architecture
// ---------------------------------------------------------------------

/// Target size of one framed chunk batch a worker produces per
/// `NextChunk` job — the unit of memory a stalled client can hold.
const CHUNK_BATCH_BYTES: usize = 64 * 1024;

/// A stream parked in the shard resumes (next `NextChunk` job) once the
/// connection's send queue drains to this few bytes.
const STREAM_RESUME_BYTES: usize = 16 * 1024;

/// Bytes read from one socket per readiness event before yielding to
/// the next (fairness under pipelined load).
const READ_QUANTUM: usize = 64 * 1024;

/// How often the shard sweeps for idle / stuck-head connections.
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);

fn event_accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut next_shard = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // EMFILE/ENFILE (or a transient failure): count it and
                // back off instead of tight-looping on a hot error.
                shared.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(accept_backoff(&e));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if shared.metrics.open_connections.load(Ordering::Relaxed)
            >= shared.config.max_connections as u64
        {
            shed_at_accept(shared, stream, "connection limit reached");
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        shared.metrics.conn_opened();
        let shard = &shared.shards[next_shard];
        next_shard = (next_shard + 1) % shared.shards.len();
        shard.inbox.lock().expect("inbox poisoned").push(stream);
        shard.waker.wake();
    }
}

fn event_worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.jobs.lock().expect("jobs poisoned");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    shared.metrics.set_queue_depth(q.len() as u64);
                    break j;
                }
                let (guard, _) = shared
                    .jobs_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("jobs poisoned");
                q = guard;
            }
        };
        let (shard, completion) = match job {
            Job::Resolve {
                shard,
                token,
                req,
                deadline,
                keep_alive,
            } => {
                let done = run_resolve(shared, &req, deadline, keep_alive);
                (shard, Completion { token, done })
            }
            Job::NextChunk { shard, token, ctx } => {
                let (bytes, next) = produce_chunks(shared, ctx);
                (
                    shard,
                    Completion {
                        token,
                        done: Done::Stream { bytes, next },
                    },
                )
            }
        };
        let mailbox = &shared.shards[shard];
        mailbox
            .completions
            .lock()
            .expect("completions poisoned")
            .push_back(completion);
        mailbox.waker.wake();
    }
}

/// Worker-side request handling: resolve, then serialise. Full bodies
/// become one complete byte run; streamed bodies yield their head plus
/// the first chunk batch, with the context returned for continuation.
fn run_resolve(shared: &Shared, req: &Request, deadline: Instant, keep_alive: bool) -> Done {
    let Resolved {
        response,
        route,
        t0,
        stream_tee,
    } = resolve(shared, req, deadline);
    let mut bytes = response.head_bytes(keep_alive);
    match response.body {
        Body::Full(b) => {
            let ttfb_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            shared.metrics.record_ttfb(route, ttfb_us);
            shared.metrics.add_bytes_sent(b.len() as u64);
            bytes.extend_from_slice(&b);
            Done::Full { bytes }
        }
        Body::Streamed(body) => {
            let ctx = StreamCtx {
                body,
                tee: stream_tee,
                deadline,
                route,
                t0,
                first_chunk: true,
            };
            let (chunks, next) = produce_chunks(shared, ctx);
            bytes.extend_from_slice(&chunks);
            Done::Stream { bytes, next }
        }
    }
}

/// Pull body chunks until the batch budget fills, the stream ends, or
/// the deadline expires — the event-mode equivalent of the threaded
/// path's per-chunk write observer (TTFB, bytes-sent, cache tee, and
/// deadline-between-chunks abort semantics are identical).
fn produce_chunks(shared: &Shared, mut ctx: StreamCtx) -> (Vec<u8>, StreamNext) {
    let mut out = Vec::new();
    let max_tee = shared.cache.max_entry_bytes();
    loop {
        if Instant::now() >= ctx.deadline {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            return (out, StreamNext::Abort);
        }
        match ctx.body.next_chunk() {
            Err(_) => return (out, StreamNext::Abort),
            Ok(None) => {
                out.extend_from_slice(CHUNK_TERMINATOR);
                if let Some(tee) = ctx.tee.take() {
                    tee.insert_if_complete(&shared.cache);
                }
                return (out, StreamNext::Finished);
            }
            Ok(Some(chunk)) => {
                if chunk.is_empty() {
                    continue; // an empty chunk would mean "end of body"
                }
                if ctx.first_chunk {
                    ctx.first_chunk = false;
                    let ttfb_us = ctx.t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    shared.metrics.record_ttfb(ctx.route, ttfb_us);
                }
                shared.metrics.add_bytes_sent(chunk.len() as u64);
                if let Some(tee) = ctx.tee.as_mut() {
                    tee.absorb(chunk, max_tee, &shared.metrics);
                }
                frame_chunk(chunk, &mut out);
                if out.len() >= CHUNK_BATCH_BYTES {
                    return (out, StreamNext::More(ctx));
                }
            }
        }
    }
}

/// Where a connection's state machine stands.
enum Phase {
    /// Between requests (or reading one): the shard may dispatch the
    /// next complete request.
    Idle,
    /// A `Resolve` job is at the workers.
    Busy,
    /// A streamed body is parked here, waiting for the send queue to
    /// drain before the next chunk batch is requested.
    StreamWait(StreamCtx),
    /// A `NextChunk` job is at the workers.
    StreamBusy,
}

/// One nonblocking connection owned by an event-loop shard.
struct EventConn {
    stream: TcpStream,
    seq: u64,
    parser: RequestParser,
    send: SendBuf,
    phase: Phase,
    /// Keep-alive decision for the response currently in flight.
    keep_alive: bool,
    /// Route holding one of this connection's in-flight quota slots.
    inflight_route: Option<Route>,
    last_activity: Instant,
    /// Set while a partial request sits in the parser: the slow-loris
    /// budget. Cleared on dispatch or when the parser drains.
    read_deadline: Option<Instant>,
    served: usize,
    /// Consecutive requests dispatched while further request bytes were
    /// already buffered behind them; resets whenever the parser drains.
    pipeline_depth: usize,
    /// Peer half-closed its write side (EOF on read).
    eof: bool,
    /// Close once the send queue drains (response bodies flushed).
    close_after_flush: bool,
}

struct Shard<'a> {
    shared: &'a Shared,
    id: usize,
    wake: WakePipe,
    conns: Vec<Option<EventConn>>,
    free: Vec<usize>,
    next_seq: u64,
}

impl<'a> Shard<'a> {
    fn new(shared: &'a Shared, id: usize, wake: WakePipe) -> Shard<'a> {
        Shard {
            shared,
            id,
            wake,
            conns: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    fn run(mut self) {
        let mut pollset: Vec<PollFd> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return; // conns drop → sockets close
            }
            self.drain_inbox();
            self.drain_completions();

            pollset.clear();
            slots.clear();
            pollset.push(PollFd::new(self.wake.poll_fd(), POLLIN));
            slots.push(usize::MAX);
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(c) = conn else { continue };
                let mut events = 0i16;
                if !c.eof {
                    events |= POLLIN;
                }
                if !c.send.is_empty() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    pollset.push(PollFd::new(raw_fd(&c.stream), events));
                    slots.push(slot);
                }
            }
            let n = match poll_fds(&mut pollset, SWEEP_INTERVAL.as_millis() as i32) {
                Ok(n) => n,
                Err(_) => continue,
            };
            if n > 0 {
                if pollset[0].ready(POLLIN) {
                    self.wake.drain();
                }
                for i in 1..pollset.len() {
                    let pfd = pollset[i];
                    if pfd.revents == 0 {
                        continue;
                    }
                    let slot = slots[i];
                    if pfd.ready(POLLIN) {
                        self.handle_readable(slot);
                    }
                    if self.conns[slot].is_some() && pfd.ready(POLLOUT) {
                        self.handle_writable(slot);
                    }
                    if let Some(c) = &self.conns[slot] {
                        // Error/hangup with nothing actionable above:
                        // the peer is gone.
                        if pfd.failed() && c.send.is_empty() && !pfd.ready(POLLIN) {
                            self.close(slot);
                        }
                    }
                }
            }
            let now = Instant::now();
            if now.duration_since(last_sweep) >= SWEEP_INTERVAL {
                last_sweep = now;
                self.sweep(now);
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(s) = self.free.pop() {
            s
        } else {
            self.conns.push(None);
            self.conns.len() - 1
        }
    }

    fn drain_inbox(&mut self) {
        let fresh = {
            let mut inbox = self.shared.shards[self.id]
                .inbox
                .lock()
                .expect("inbox poisoned");
            std::mem::take(&mut *inbox)
        };
        for stream in fresh {
            let slot = self.alloc_slot();
            self.next_seq += 1;
            let now = Instant::now();
            self.conns[slot] = Some(EventConn {
                stream,
                seq: self.next_seq,
                parser: RequestParser::new(),
                send: SendBuf::new(),
                phase: Phase::Idle,
                keep_alive: true,
                inflight_route: None,
                last_activity: now,
                read_deadline: None,
                served: 0,
                pipeline_depth: 0,
                eof: false,
                close_after_flush: false,
            });
            // The client may already have sent its request.
            self.handle_readable(slot);
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = {
                let mut q = self.shared.shards[self.id]
                    .completions
                    .lock()
                    .expect("completions poisoned");
                q.pop_front()
            };
            let Some(c) = completion else { return };
            self.apply_completion(c);
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        let (slot, seq) = completion.token;
        let live = matches!(&self.conns[slot], Some(c) if c.seq == seq);
        if !live {
            // The connection died while the job ran; dropping the
            // completion drops any stream context (and its engine
            // cursors) with it. The quota slot was released at close.
            return;
        }
        {
            let conn = self.conns[slot].as_mut().expect("live checked");
            conn.last_activity = Instant::now();
            match completion.done {
                Done::Full { bytes } => {
                    conn.send.push(&bytes);
                    if let Some(route) = conn.inflight_route.take() {
                        self.shared.release_route(route);
                    }
                    conn.phase = Phase::Idle;
                    if !conn.keep_alive {
                        conn.close_after_flush = true;
                    }
                }
                Done::Stream { bytes, next } => {
                    conn.send.push(&bytes);
                    match next {
                        StreamNext::More(ctx) => {
                            conn.phase = Phase::StreamWait(ctx);
                        }
                        StreamNext::Finished => {
                            if let Some(route) = conn.inflight_route.take() {
                                self.shared.release_route(route);
                            }
                            conn.phase = Phase::Idle;
                            if !conn.keep_alive {
                                conn.close_after_flush = true;
                            }
                        }
                        StreamNext::Abort => {
                            // Truncated chunked body: flush what was
                            // produced, then close — never reuse.
                            if let Some(route) = conn.inflight_route.take() {
                                self.shared.release_route(route);
                            }
                            conn.phase = Phase::Idle;
                            conn.keep_alive = false;
                            conn.close_after_flush = true;
                        }
                    }
                }
            }
        }
        // Push bytes out (and pump / dispatch / close as the new state
        // allows) without waiting for the next poll round.
        self.flush(slot);
    }

    /// Drive the send queue; on drain, advance whatever the connection
    /// was waiting on (next chunk batch, next pipelined request, close).
    fn flush(&mut self, slot: usize) {
        let drained = {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let EventConn { stream, send, .. } = conn;
            match send.write_some(stream) {
                Ok(d) => d,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        };
        if !drained {
            return; // POLLOUT re-arms on the next loop iteration
        }
        let conn = self.conns[slot].as_mut().expect("checked above");
        if matches!(conn.phase, Phase::StreamWait(_))
            && conn.send.pending() <= STREAM_RESUME_BYTES
        {
            let Phase::StreamWait(ctx) =
                std::mem::replace(&mut conn.phase, Phase::StreamBusy)
            else {
                unreachable!()
            };
            let token = (slot, conn.seq);
            self.shared.push_job(Job::NextChunk {
                shard: self.id,
                token,
                ctx,
            });
            return;
        }
        if matches!(conn.phase, Phase::Idle) {
            if conn.close_after_flush {
                self.close(slot);
                return;
            }
            if conn.eof && conn.parser.is_idle() {
                self.close(slot);
                return;
            }
            self.try_dispatch(slot);
        }
    }

    fn handle_readable(&mut self, slot: usize) {
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0usize;
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    if matches!(conn.phase, Phase::Idle)
                        && conn.parser.is_idle()
                        && conn.send.is_empty()
                    {
                        self.close(slot);
                    } else {
                        // Finish the response in flight, then close.
                        conn.close_after_flush = true;
                    }
                    return;
                }
                Ok(n) => {
                    let was_idle = conn.parser.is_idle();
                    conn.parser.feed(&buf[..n]);
                    conn.last_activity = Instant::now();
                    if was_idle {
                        conn.read_deadline =
                            Some(Instant::now() + self.shared.config.deadline);
                    }
                    total += n;
                    if total >= READ_QUANTUM {
                        break;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        let can_dispatch = matches!(
            self.conns[slot].as_ref().map(|c| &c.phase),
            Some(Phase::Idle)
        );
        if can_dispatch {
            self.try_dispatch(slot);
        }
    }

    fn handle_writable(&mut self, slot: usize) {
        self.flush(slot);
    }

    /// Parse-and-dispatch loop while the connection is idle: sheds at
    /// the dispatch watermark and per-route quotas, hands everything
    /// else to the worker pool, and answers parse errors directly.
    fn try_dispatch(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if !matches!(conn.phase, Phase::Idle) || conn.close_after_flush {
                return;
            }
            let parsed = conn.parser.poll_request();
            let req = match parsed {
                Ok(Some(r)) => r,
                Ok(None) => {
                    if conn.parser.is_idle() {
                        conn.read_deadline = None;
                    }
                    return;
                }
                Err(e) => {
                    self.shared
                        .metrics
                        .bad_requests
                        .fetch_add(1, Ordering::Relaxed);
                    let (status, msg) = match e {
                        HttpError::BodyTooLarge(_) => (413, "body too large".to_string()),
                        HttpError::Malformed(m) => (400, m),
                        // The incremental parser never reports these.
                        HttpError::ConnectionClosed
                        | HttpError::IdleTimeout
                        | HttpError::Io(_) => (400, "bad request".to_string()),
                    };
                    let bytes = serialize_error(status, &msg, false, None);
                    conn.send.push(&bytes);
                    conn.keep_alive = false;
                    conn.close_after_flush = true;
                    self.flush(slot);
                    return;
                }
            };
            // Pipelining cap: every request dispatched while the parser
            // still holds buffered bytes deepens the backlog this
            // connection asks the server to carry. A well-behaved client
            // drains responses and the parser goes idle between
            // requests, resetting the depth; one that streams requests
            // blind is shed with 503 and closed once it exceeds the cap
            // (its remaining buffered requests are dropped with it).
            if conn.parser.is_idle() {
                conn.pipeline_depth = 0;
            } else {
                conn.pipeline_depth += 1;
                if conn.pipeline_depth > self.shared.config.max_pipeline_depth {
                    self.shared
                        .metrics
                        .pipeline_capped
                        .fetch_add(1, Ordering::Relaxed);
                    let bytes = serialize_error(
                        503,
                        "pipeline depth exceeded",
                        false,
                        Some(self.shared.config.retry_after_secs),
                    );
                    conn.send.push(&bytes);
                    conn.keep_alive = false;
                    conn.close_after_flush = true;
                    self.flush(slot);
                    return;
                }
            }

            // Deadline from when this request's bytes started arriving
            // (the stamp the reader left in `read_deadline`), not from
            // accept: a keep-alive connection may sit parked for minutes
            // before its first request, and that idle time is the
            // client's to spend, not service time. Requests parsed while
            // an earlier one was in flight keep their arrival stamp, so
            // head-of-line queueing does count against the budget.
            let deadline = conn
                .read_deadline
                .take()
                .unwrap_or_else(|| Instant::now() + self.shared.config.deadline);
            conn.served += 1;
            let keep_alive = req.wants_keep_alive()
                && conn.served < self.shared.config.max_requests_per_conn;

            // Dispatch-queue watermark: the event-mode face of the old
            // accept-queue admission control.
            let depth = self.shared.jobs.lock().expect("jobs poisoned").len();
            if depth >= self.shared.config.queue_watermark {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                let bytes = serialize_error(
                    503,
                    "admission queue full",
                    false,
                    Some(self.shared.config.retry_after_secs),
                );
                conn.send.push(&bytes);
                conn.keep_alive = false;
                conn.close_after_flush = true;
                self.flush(slot);
                return;
            }

            // Per-route quota: shed the request, keep the connection.
            let route = classify(&req.path);
            if !self.shared.acquire_route(route) {
                self.shared.metrics.record_route_shed(route);
                let bytes = serialize_error(
                    503,
                    "route quota exhausted",
                    keep_alive,
                    Some(self.shared.config.retry_after_secs),
                );
                conn.send.push(&bytes);
                if !keep_alive {
                    conn.keep_alive = false;
                    conn.close_after_flush = true;
                }
                self.flush(slot);
                continue; // still idle: a pipelined request may follow
            }

            conn.inflight_route = Some(route);
            conn.keep_alive = keep_alive;
            conn.phase = Phase::Busy;
            let token = (slot, conn.seq);
            self.shared.push_job(Job::Resolve {
                shard: self.id,
                token,
                req: Box::new(req),
                deadline,
                keep_alive,
            });
            return;
        }
    }

    /// Timer pass: reap idle keep-alive connections and stuck partial
    /// request heads (slow loris).
    fn sweep(&mut self, now: Instant) {
        let idle_timeout = self.shared.config.idle_timeout;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if let Some(rd) = conn.read_deadline {
                if now >= rd {
                    // A request head (or body) stalled mid-read past the
                    // request deadline: answer 408 and close.
                    self.shared
                        .metrics
                        .bad_requests
                        .fetch_add(1, Ordering::Relaxed);
                    let bytes = serialize_error(408, "request read timed out", false, None);
                    conn.send.push(&bytes);
                    conn.keep_alive = false;
                    conn.close_after_flush = true;
                    conn.read_deadline = None;
                    self.flush(slot);
                    continue;
                }
            }
            let idle = matches!(conn.phase, Phase::Idle)
                && conn.parser.is_idle()
                && conn.send.is_empty()
                && !conn.close_after_flush;
            if idle && now.duration_since(conn.last_activity) >= idle_timeout {
                self.shared
                    .metrics
                    .idle_reaped
                    .fetch_add(1, Ordering::Relaxed);
                self.close(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            if let Some(route) = conn.inflight_route {
                self.shared.release_route(route);
            }
            self.shared.metrics.conn_closed();
            self.free.push(slot);
            // conn (stream, parser buffers, parked stream ctx) drops here.
        }
    }
}

/// Serialise a full error response (head + sized body) for direct
/// enqueueing by a shard.
fn serialize_error(status: u16, msg: &str, keep_alive: bool, retry_after: Option<u64>) -> Vec<u8> {
    let mut resp = Response::error(status, msg);
    if let Some(ra) = retry_after {
        resp = resp.with_header("retry-after", ra.to_string());
    }
    let mut bytes = resp.head_bytes(keep_alive);
    bytes.extend_from_slice(resp.body.as_full().expect("error bodies are sized"));
    bytes
}

fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(test)]
mod tests {
    // The server is exercised end-to-end over real sockets in
    // `tests/server.rs` (both kinds) and `tests/event.rs` (event-loop
    // specifics); unit tests here stay within module seams.
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_watermark > 0);
        assert!(c.deadline > Duration::ZERO);
        assert!(c.cache_shards > 0);
        assert_eq!(c.kind, ServerKind::Event);
        assert!(c.event_shards >= 1);
        assert!(c.max_connections > 0);
        assert!(c.route_quota > 0);
    }

    #[test]
    fn route_quota_overrides_apply() {
        let c = ServerConfig {
            route_quota: 100,
            route_quota_overrides: vec![(Route::Query, 2), (Route::Tiles, 7)],
            ..ServerConfig::default()
        };
        assert_eq!(c.quota_for(Route::Query), 2);
        assert_eq!(c.quota_for(Route::Tiles), 7);
        assert_eq!(c.quota_for(Route::Ice), 100);
    }

    #[test]
    fn serialized_errors_match_the_blocking_writer() {
        let mut resp = Response::error(503, "x").with_header("retry-after", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        assert_eq!(serialize_error(503, "x", false, Some(1)), wire);
    }
}
