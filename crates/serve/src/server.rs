//! The server: accept loop, bounded admission queue, fixed worker pool,
//! per-request deadlines, and graceful overload.
//!
//! Threading model (no async runtime — `std::net` + the same scoped-pool
//! spirit as `ee_util::par`, but with long-lived workers):
//!
//! ```text
//!   acceptor thread ──► bounded VecDeque<Conn> ──► N worker threads
//!        │                    (Mutex + Condvar)          │
//!        └─ depth ≥ watermark ⇒ immediate 503            └─ full keep-alive
//!           + Retry-After, connection closed                conversation per
//!                                                          dequeued connection
//! ```
//!
//! Admission control happens **per connection** at accept time: once the
//! queue is at the watermark the acceptor answers `503 Service
//! Unavailable` with `Retry-After` and closes, so overload sheds load in
//! O(1) instead of stacking sockets until memory or latency collapses.
//! Admitted connections carry their admission instant; every request on
//! the connection gets a deadline (queue wait counts against the first),
//! and a request that cannot finish in time is answered `504`.
//!
//! Responses to cacheable GETs are stored in the sharded LRU
//! ([`crate::cache`]) under a canonical key; hits are replayed without
//! touching the engines and marked `x-cache: HIT`.

use crate::cache::{CachedBody, ShardedLru};
use crate::http::{read_request, Body, HttpError, Response};
use crate::metrics::Metrics;
use crate::router::{cache_key, classify, dispatch, Outcome};
use crate::state::AppState;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Admission watermark: accepts are 503-rejected while the queue
    /// holds this many connections.
    pub queue_watermark: usize,
    /// Per-request deadline (first request: measured from admission, so
    /// queue wait counts; later keep-alive requests: from read).
    pub deadline: Duration,
    /// Idle timeout for keep-alive connections.
    pub idle_timeout: Duration,
    /// Requests served on one connection before it is recycled.
    pub max_requests_per_conn: usize,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// Response-cache entries per shard.
    pub cache_capacity_per_shard: usize,
    /// Response-cache TTL.
    pub cache_ttl: Duration,
    /// Largest response body the cache stores per entry. Streamed bodies
    /// are teed into the cache only up to this size; anything bigger
    /// streams through uncached (counted in
    /// `ee_serve_stream_uncacheable_total`).
    pub cache_max_body_bytes: usize,
    /// `Retry-After` seconds advertised on 503.
    pub retry_after_secs: u64,
    /// Per-write socket timeout. Streamed responses issue many writes —
    /// one per chunk — and each write gets this budget, so the knob
    /// bounds how long one slow consumer can hold a worker per chunk
    /// without capping total transfer time for a healthy one. Also used
    /// when answering 503 at the admission watermark.
    pub write_timeout: Duration,
    /// Enable `/debug/*` routes (tests and experiments only).
    pub debug_routes: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: ee_util::par::available_threads().min(8),
            queue_watermark: 64,
            deadline: Duration::from_millis(2_000),
            idle_timeout: Duration::from_millis(5_000),
            max_requests_per_conn: 10_000,
            cache_shards: 8,
            cache_capacity_per_shard: 512,
            cache_ttl: Duration::from_secs(60),
            cache_max_body_bytes: 256 * 1024,
            retry_after_secs: 1,
            write_timeout: Duration::from_millis(200),
            debug_routes: false,
        }
    }
}

/// An admitted connection waiting for (or being served by) a worker.
struct Conn {
    stream: TcpStream,
    admitted: Instant,
}

struct Shared {
    config: ServerConfig,
    state: Arc<AppState>,
    metrics: Metrics,
    cache: ShardedLru,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    stop: AtomicBool,
}

/// A running server; dropping it does **not** stop the threads — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// The bound address (resolved ephemeral port).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Serving-tier metrics (live).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Response cache statistics (live).
    pub fn cache(&self) -> &ShardedLru {
        &self.shared.cache
    }

    /// Stop accepting, wake the workers, and join every thread. Idempotent
    /// in effect; consumes the handle.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
        // Close anything still queued.
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .clear();
    }
}

/// Start a server on `config.addr` fronting `state`.
pub fn start(config: ServerConfig, state: Arc<AppState>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: ShardedLru::with_max_entry_bytes(
            config.cache_shards,
            config.cache_capacity_per_shard,
            config.cache_ttl,
            config.cache_max_body_bytes,
        ),
        metrics: Metrics::new(),
        state,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        stop: AtomicBool::new(false),
        config,
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ee-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    for w in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ee-serve-worker-{w}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let depth = {
            let q = shared.queue.lock().expect("queue poisoned");
            q.len()
        };
        if depth >= shared.config.queue_watermark {
            // Overload: shed in O(1) with an explicit retry hint.
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            let mut resp = Response::error(503, "admission queue full")
                .with_header("retry-after", shared.config.retry_after_secs.to_string());
            let mut s = stream;
            let _ = resp.write_to(&mut s, false);
            continue;
        }
        shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        let mut q = shared.queue.lock().expect("queue poisoned");
        q.push_back(Conn {
            stream,
            admitted: Instant::now(),
        });
        shared.metrics.set_queue_depth(q.len() as u64);
        drop(q);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = q.pop_front() {
                    shared.metrics.set_queue_depth(q.len() as u64);
                    break c;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue poisoned");
                q = guard;
            }
        };
        serve_connection(shared, conn);
    }
}

/// Serve one admitted connection to completion (close, error, idle
/// timeout, or request budget).
fn serve_connection(shared: &Shared, conn: Conn) {
    let Conn { stream, admitted } = conn;
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // The first request's deadline starts at admission: time spent in the
    // accept queue counts against it.
    let mut deadline = admitted + shared.config.deadline;
    for served in 0..shared.config.max_requests_per_conn {
        if served > 0 {
            deadline = Instant::now() + shared.config.deadline;
        }
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed) | Err(HttpError::IdleTimeout) => return,
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge(_)) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(413, "body too large").write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Malformed(m)) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(400, &m).write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = req.wants_keep_alive() && served + 1 < shared.config.max_requests_per_conn;
        let route = classify(&req.path);
        let t0 = Instant::now();

        // When a cacheable miss returns a *streamed* body there is nothing
        // to store up front; the write observer below tees the chunks into
        // this buffer and the entry is inserted only after a clean write.
        let mut stream_tee: Option<StreamTee> = None;

        let mut response = if Instant::now() >= deadline {
            // Expired while queued (or while the previous exchange ran).
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            Response::error(504, "deadline exceeded before handling")
        } else if route == crate::metrics::Route::Metrics {
            // Served here because it needs the metrics + cache objects.
            Response::text(
                200,
                shared.metrics.render_prometheus(
                    shared.cache.hits(),
                    shared.cache.misses(),
                    shared.cache.len(),
                    shared.state.plan_cache_stats(),
                ) + &shared.state.render_prometheus_section(),
            )
        } else {
            // Keys embed the store generation (for store-derived
            // routes), so entries cached before a commit are
            // unreachable after it.
            let key = cache_key(&req, shared.state.generation());
            let cacheable = key.is_some();
            let cached = key.as_ref().and_then(|k| shared.cache.get(k));
            match cached {
                Some(hit) => {
                    let mut headers = hit.headers.clone();
                    headers.push(("x-cache".into(), "HIT".into()));
                    Response {
                        status: hit.status,
                        content_type: hit.content_type.clone(),
                        headers,
                        body: Body::Full(hit.body.clone()),
                    }
                }
                None => {
                    match dispatch(&shared.state, &req, deadline, shared.config.debug_routes) {
                        Outcome::DeadlineExceeded => {
                            shared
                                .metrics
                                .deadline_expired
                                .fetch_add(1, Ordering::Relaxed);
                            Response::error(504, "deadline exceeded in handler")
                        }
                        Outcome::Ready(mut resp) => {
                            if resp.status == 200 {
                                if let Some(k) = key {
                                    // Full bodies can be cached before the
                                    // write; streamed ones are teed during it
                                    // (headers snapshotted *before* the
                                    // x-cache marker so replays re-mark).
                                    if let Some(full) = resp.body.as_full() {
                                        shared.cache.put(
                                            k,
                                            Arc::new(CachedBody {
                                                status: resp.status,
                                                content_type: resp.content_type.clone(),
                                                headers: resp.headers.clone(),
                                                body: full.to_vec(),
                                            }),
                                        );
                                    } else {
                                        stream_tee = Some(StreamTee {
                                            key: k,
                                            status: resp.status,
                                            content_type: resp.content_type.clone(),
                                            headers: resp.headers.clone(),
                                            buf: Vec::new(),
                                            overflowed: false,
                                        });
                                    }
                                }
                            }
                            if cacheable {
                                resp.headers.push(("x-cache".into(), "MISS".into()));
                            }
                            resp
                        }
                    }
                }
            }
        };

        // A committed update: sweep the whole response cache. The
        // generation-stamped keys already guarantee staleness can't be
        // served; the sweep reclaims the dead entries' memory now and
        // feeds `ee_serve_invalidated_total{kind="responses"}`.
        if route == crate::metrics::Route::Update && response.status == 200 {
            let swept = shared.cache.clear() as u64;
            shared.state.note_invalidated_responses(swept);
        }

        // Conditional requests: when the client's If-None-Match equals
        // the response's ETag the body is elided with a 304. Applied
        // after cache resolution so both hits and misses revalidate.
        if response.status == 200 {
            if let (Some(inm), Some(tag)) = (
                req.header("if-none-match"),
                response
                    .headers
                    .iter()
                    .find(|(n, _)| n == "etag")
                    .map(|(_, v)| v.clone()),
            ) {
                if crate::router::if_none_match_matches(inm, &tag) {
                    shared.metrics.not_modified.fetch_add(1, Ordering::Relaxed);
                    response.status = 304;
                    response.body = Body::empty();
                    // The elided stream never produces chunks; don't cache
                    // an empty body under the resource's key.
                    stream_tee = None;
                }
            }
        }

        let latency_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        shared.metrics.record(route, latency_us);

        // The observer runs once per body chunk *before* it hits the wire:
        // it records time-to-first-byte and bytes sent, tees cacheable
        // streamed bodies, and re-checks the deadline between chunks (a
        // `false` return aborts only streamed bodies — full bodies keep
        // their pre-dispatch 504 semantics).
        let streamed = response.body.is_streamed();
        let max_tee = shared.cache.max_entry_bytes();
        let mut first_chunk = true;
        let write_res = response.write_to_observed(&mut writer, keep_alive, |chunk| {
            if first_chunk {
                first_chunk = false;
                let ttfb_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                shared.metrics.record_ttfb(route, ttfb_us);
            }
            shared.metrics.add_bytes_sent(chunk.len() as u64);
            if let Some(tee) = stream_tee.as_mut() {
                if !tee.overflowed {
                    if tee.buf.len() + chunk.len() > max_tee {
                        tee.overflowed = true;
                        tee.buf = Vec::new();
                        shared
                            .metrics
                            .stream_uncacheable
                            .fetch_add(1, Ordering::Relaxed);
                    } else {
                        tee.buf.extend_from_slice(chunk);
                    }
                }
            }
            !streamed || Instant::now() < deadline
        });
        if write_res.is_err() {
            if streamed && Instant::now() >= deadline {
                shared
                    .metrics
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
            }
            // A truncated chunked body poisons the connection; close it.
            return;
        }
        if let Some(tee) = stream_tee.take() {
            if !tee.overflowed {
                shared.cache.put(
                    tee.key,
                    Arc::new(CachedBody {
                        status: tee.status,
                        content_type: tee.content_type,
                        headers: tee.headers,
                        body: tee.buf,
                    }),
                );
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// Pending cache insert for a streamed cacheable miss: metadata captured
/// at dispatch time plus the chunk bytes accumulated by the write
/// observer. `overflowed` flips once the body exceeds the cache's
/// per-entry cap; the buffer is dropped and the entry never inserted.
struct StreamTee {
    key: String,
    status: u16,
    content_type: String,
    headers: Vec<(String, String)>,
    buf: Vec<u8>,
    overflowed: bool,
}

#[cfg(test)]
mod tests {
    // The server is exercised end-to-end over real sockets in
    // `tests/server.rs`; unit tests here stay within module seams.
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_watermark > 0);
        assert!(c.deadline > Duration::ZERO);
        assert!(c.cache_shards > 0);
    }
}
