//! The router tier: one `ee-serve --router` process fronting N shard
//! processes, each holding one subject-hash slice of the logical
//! dataset.
//!
//! Request handling per route:
//!
//! * `/query` — **scatter-gather**: the query's merge strategy is chosen
//!   from its shape ([`ee_rdf::merge::strategy_for`]), the shard set
//!   from its subjects ([`ee_federation::select_shards`] — constant
//!   subjects visit only their ring owners), then the same request goes
//!   to every target shard through the [`ShardPool`]'s poll-driven
//!   connection pool. Responses merge canonically (counts sum, rows
//!   concatenate in sorted order) and stream out through the existing
//!   `Body::Streamed` path. A shard that misses its deadline yields a
//!   **partial** result: the merged body gains `"incomplete":true` and
//!   the response an `x-ee-incomplete: 1` header — never a hang;
//! * `/tiles/…`, `/ice/…` — **forwarded** to the consistent-hash owner
//!   of the path, so each shard's response cache only ever warms its
//!   own slice of the tile pyramid (space-partitioned serving);
//! * `/update` — refused with 403: the router tier is read-only by
//!   contract (writes go to a shard's own endpoint);
//! * `/healthz` — answered by the router itself with its backend
//!   inventory;
//! * everything else (catalogue, metrics, debug) falls through to the
//!   local engines — the catalogue is replicated, not partitioned.
//!
//! Metrics: `ee_route_shard_latency_us{shard}` histograms,
//! `ee_route_hedged_total`, `ee_route_partial_total`,
//! `ee_route_retried_total`, rendered into the `/metrics` output next
//! to the engine counters.

use crate::http::{ChunkedSlices, Request, Response};
use crate::metrics::{render_histogram_family, Histogram};
use crate::state::AppState;
use ee_federation::remote::{ScatterConfig, ShardBackend, ShardPool};
use ee_rdf::merge::{self, QueryResult};
use ee_util::json::Json;
use ee_util::ring::HashRing;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Router-tier state: the shard pool, the consistent-hash ring placing
/// paths onto shards, and the router metrics.
pub struct RouterTier {
    pool: ShardPool,
    ring: HashRing,
    shard_latency: Vec<Histogram>,
    hedged: AtomicU64,
    partial: AtomicU64,
    retried: AtomicU64,
}

impl RouterTier {
    /// A router over shard processes at `addrs` (shard index = position).
    pub fn new(addrs: &[SocketAddr], config: ScatterConfig) -> RouterTier {
        assert!(!addrs.is_empty(), "router needs at least one shard");
        let backends = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| ShardBackend {
                name: format!("shard-{i}"),
                addr,
            })
            .collect();
        RouterTier {
            pool: ShardPool::new(backends, config),
            ring: HashRing::new(addrs.len()),
            shard_latency: addrs.iter().map(|_| Histogram::new()).collect(),
            hedged: AtomicU64::new(0),
            partial: AtomicU64::new(0),
            retried: AtomicU64::new(0),
        }
    }

    /// Number of shard backends.
    pub fn shard_count(&self) -> usize {
        self.pool.backends().len()
    }

    /// Hedged duplicate requests launched so far.
    pub fn hedged_total(&self) -> u64 {
        self.hedged.load(Ordering::Relaxed)
    }

    /// Scatter rounds that returned a partial result.
    pub fn partial_total(&self) -> u64 {
        self.partial.load(Ordering::Relaxed)
    }

    /// Stale pooled connections retried on a fresh connect.
    pub fn retried_total(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }

    /// Record one scatter round's outcome into the router metrics.
    fn note(&self, report: &ee_federation::ScatterReport) {
        for part in report.parts.iter().flatten() {
            let us = part.latency.as_micros().min(u128::from(u64::MAX)) as u64;
            self.shard_latency[part.shard].record_us(us);
        }
        self.hedged.fetch_add(report.hedged, Ordering::Relaxed);
        self.retried.fetch_add(report.retried, Ordering::Relaxed);
        if report.incomplete {
            self.partial.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The router slice of `/metrics` (appended to the state section).
    pub fn render_prometheus_section(&self) -> String {
        let mut out = String::with_capacity(512);
        let labels: Vec<String> = (0..self.shard_latency.len()).map(|i| i.to_string()).collect();
        render_histogram_family(
            &mut out,
            "ee_route_shard_latency_us",
            "Per-shard scatter latency as seen by the router (µs)",
            "shard",
            labels
                .iter()
                .zip(&self.shard_latency)
                .map(|(l, h)| (l.as_str(), h)),
        );
        out.push_str(&format!(
            "# HELP ee_route_hedged_total Hedged duplicate shard requests launched\n\
             # TYPE ee_route_hedged_total counter\nee_route_hedged_total {}\n",
            self.hedged_total()
        ));
        out.push_str(&format!(
            "# HELP ee_route_partial_total Scatter rounds answered with a partial result\n\
             # TYPE ee_route_partial_total counter\nee_route_partial_total {}\n",
            self.partial_total()
        ));
        out.push_str(&format!(
            "# HELP ee_route_retried_total Stale pooled shard connections retried fresh\n\
             # TYPE ee_route_retried_total counter\nee_route_retried_total {}\n",
            self.retried_total()
        ));
        out
    }
}

/// Router-mode dispatch: `Some(response)` when the router handles the
/// request itself (scatter, forward, refuse), `None` to fall through to
/// the local engines.
pub(crate) fn route(state: &Arc<AppState>, tier: &RouterTier, req: &Request) -> Option<Response> {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET" | "POST", ["query"]) => Some(scatter_query(tier, req)),
        ("POST", ["update"]) => Some(Response::error(
            403,
            "the router tier is read-only; send updates to a shard endpoint",
        )),
        ("GET", ["tiles", _, _, _]) | ("GET", ["ice", _]) => Some(forward(tier, req)),
        ("GET", ["healthz"]) => Some(router_healthz(state, tier)),
        _ => None,
    }
}

/// The SPARQL text + row cap a `/query` request asks for — shared with
/// the single-store handlers in [`crate::router`].
pub(crate) fn query_of(req: &Request) -> Result<(String, usize), Response> {
    let limit = req.param_or("limit", 1000usize);
    if req.method == "POST" {
        let Ok(sparql) = std::str::from_utf8(&req.body) else {
            return Err(Response::error(400, "body must be UTF-8 SPARQL text"));
        };
        if sparql.trim().is_empty() {
            return Err(Response::error(400, "empty body; POST the SPARQL query text"));
        }
        return Ok((sparql.to_string(), limit));
    }
    let sparql = match req.param("sparql") {
        Some(q) => q.to_string(),
        None => {
            let x0 = req.param_or("x0", crate::state::REGION * 0.45);
            let y0 = req.param_or("y0", crate::state::REGION * 0.45);
            let side = req.param_or("side", crate::state::REGION / 10.0);
            if !(x0.is_finite() && y0.is_finite() && side.is_finite() && side > 0.0) {
                return Err(Response::error(400, "x0/y0/side must be finite, side > 0"));
            }
            crate::state::selection_sparql(x0, y0, side)
        }
    };
    Ok((sparql, limit))
}

/// `/query` through the shard fleet: strategy → targets → scatter →
/// canonical merge → streamed body.
fn scatter_query(tier: &RouterTier, req: &Request) -> Response {
    let (sparql, limit) = match query_of(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Commit ids are per-shard (each shard grows its own hash chain),
    // so a versioned read has no fleet-wide meaning here.
    if req.param("asOf").is_some() || crate::router::mentions_as_of(&sparql) {
        return Response::error(
            400,
            "versioned reads (asOf / AS OF) are not routable; query a shard endpoint directly",
        );
    }
    let strategy = match merge::strategy_for(&sparql) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("query failed: {e}")),
    };
    let targets = match ee_federation::select_shards(&sparql, tier.shard_count()) {
        Ok(t) => t,
        Err(e) => return Response::error(400, &format!("query failed: {e}")),
    };
    // Shards run the query without its LIMIT clause (the merge is the
    // only place the cap applies — see `ee_rdf::merge::scatter_text`).
    let scattered = merge::scatter_text(&sparql);
    let wire = format!(
        "POST /query?limit={limit} HTTP/1.1\r\nhost: ee-router\r\ncontent-length: {}\r\n\r\n{scattered}",
        scattered.len()
    );
    let report = tier.pool.scatter(wire.as_bytes(), &targets);
    tier.note(&report);
    let answered: Vec<&ee_federation::ShardPart> = report.parts.iter().flatten().collect();
    if answered.is_empty() {
        return Response::error(503, "no shard answered before the deadline")
            .with_header("x-ee-incomplete", "1");
    }
    // A shard-level error (bad query, shed request) wins over merging:
    // every shard runs the same text, so the first error is the answer.
    if let Some(bad) = answered.iter().find(|p| p.status != 200) {
        return Response {
            status: bad.status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: crate::http::Body::Full(bad.body.clone()),
        };
    }
    let mut results = Vec::with_capacity(answered.len());
    for part in &answered {
        let body = match std::str::from_utf8(&part.body) {
            Ok(b) => b,
            Err(_) => return Response::error(502, "shard returned a non-UTF-8 body"),
        };
        match QueryResult::parse(body) {
            Ok(r) => results.push(r),
            Err(e) => return Response::error(502, &format!("bad shard response: {e}")),
        }
    }
    let merged = match merge::merge(&results, &strategy, limit) {
        Ok(m) => m,
        Err(e) => return Response::error(502, &format!("merge failed: {e}")),
    };
    let mut body = merged.emit();
    if report.incomplete {
        body.truncate(body.len() - 1);
        body.push_str(",\"incomplete\":true}");
    }
    // Stream the merged body out through the chunked path in bounded
    // slices, like every other large body this tier produces.
    let chunks: Vec<Vec<u8>> = body
        .as_bytes()
        .chunks(16 * 1024)
        .map(|c| c.to_vec())
        .collect();
    let resp = Response::streamed(200, "application/json", Box::new(ChunkedSlices::new(chunks)))
        .with_header("x-ee-shards", targets.len().to_string());
    if report.incomplete {
        resp.with_header("x-ee-incomplete", "1")
    } else {
        resp
    }
}

/// Forward one request to the consistent-hash owner of its path
/// (`/tiles`, `/ice`): the ring keeps each path's traffic — and each
/// shard's response-cache warmth — on a single shard.
fn forward(tier: &RouterTier, req: &Request) -> Response {
    let owner = tier.ring.shard_of(&req.path);
    let query = if req.query.is_empty() {
        String::new()
    } else {
        let params: Vec<String> = req
            .query
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("?{}", params.join("&"))
    };
    let wire = format!(
        "GET {}{query} HTTP/1.1\r\nhost: ee-router\r\n\r\n",
        req.path
    );
    let report = tier.pool.scatter(wire.as_bytes(), &[owner]);
    tier.note(&report);
    let Some(part) = report.parts.first().and_then(|p| p.as_ref()) else {
        return Response::error(503, "owning shard did not answer before the deadline")
            .with_header("x-ee-incomplete", "1")
            .with_header("x-ee-shard", owner.to_string());
    };
    // Rebuild the response from the decoded exchange, carrying through
    // the entity headers that matter to clients (the pool lower-cased
    // the names already).
    let content_type = part
        .headers
        .iter()
        .find(|(n, _)| n == "content-type")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "application/octet-stream".into());
    let mut resp = Response {
        status: part.status,
        content_type,
        headers: Vec::new(),
        body: crate::http::Body::Full(part.body.clone()),
    };
    for (name, value) in &part.headers {
        if name == "etag" || name.starts_with("x-") {
            resp = resp.with_header(name, value.clone());
        }
    }
    resp.with_header("x-ee-shard", owner.to_string())
}

/// `/healthz` on the router: role, backends, uptime.
fn router_healthz(state: &Arc<AppState>, tier: &RouterTier) -> Response {
    let backends = tier
        .pool
        .backends()
        .iter()
        .map(|b| Json::Str(b.addr.to_string()))
        .collect();
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("role", Json::Str("router".into())),
            ("shards", Json::Num(tier.shard_count() as f64)),
            ("backends", Json::Arr(backends)),
            (
                "uptime_s",
                Json::Num(state.started.elapsed().as_secs_f64()),
            ),
        ]),
    )
}
