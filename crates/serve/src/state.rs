//! The application state behind the routes: one instance of each
//! analytics engine, built once at startup and shared by every worker
//! thread.
//!
//! * a mutable [`ee_rdf::storage::Store`] of point features with a
//!   spatial index — the E2/E3 rectangular-selection path behind
//!   `/query`, writable through `POST /update` when the server runs
//!   `--writable`. Reads take a shared [`RwLock`] guard; commits take
//!   the exclusive side, bump the store **generation**, and invalidate
//!   the prepared-plan cache. The generation is mirrored into an atomic
//!   so the hot path (cache keys, ETags) never touches the lock;
//! * an [`ee_catalogue::ClassicCatalogue`] + [`SemanticCatalogue`] pair
//!   over the same generated archive — the E9 path, behind
//!   `/catalogue/search`;
//! * an overview pyramid of a synthetic Sentinel-2 scene (built with the
//!   row-parallel [`ee_raster::tile::pyramid`]) — behind `/tiles`;
//! * per-region 200 m sea-ice product suites ready for PCDSS bundling —
//!   the E12 path, behind `/ice/{region}`.
//!
//! Everything is deterministic from [`DataConfig::seed`].

use crate::metrics::{render_histogram_family, Histogram};
use ee_catalogue::classic::Search;
use ee_catalogue::{Bm25Index, ClassicCatalogue, ProductGenerator, SemanticCatalogue};
use ee_datasets::landscape::{Landscape, LandscapeConfig};
use ee_datasets::optics::{simulate_s2, OpticsConfig};
use ee_datasets::seaice::{IceWorld, IceWorldConfig};
use ee_geo::Envelope;
use ee_polar::icemap::{products_from_map, truth_masks, IceProducts};
use ee_raster::scene::Band;
use ee_raster::tile::pyramid;
use ee_raster::Raster;
use ee_rdf::plan::FastPath;
use ee_rdf::storage::{CommitStats, CompactionPolicy, Durability, Store, StoreError};
use ee_rdf::store::{IndexMode, Novelty, StoreView};
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::timeline::Date;
use ee_util::Rng;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// Side length of the square point-feature region served by `/query`
/// (degree-like units, matching the E2 experiment).
pub const REGION: f64 = 100.0;

/// Ice regions served by `/ice/{region}`.
pub const ICE_REGIONS: [&str; 3] = ["fram-strait", "norske-oer", "baffin-bay"];

/// The `/catalogue/search` modes tracked separately in the per-mode
/// latency metrics (`mode=` parameter values, fixed cardinality).
pub const CATALOGUE_MODES: [&str; 3] = ["classic", "semantic", "ranked"];

/// Predicate whose literal objects are indexed into the ranked (BM25)
/// search arm: committing `<s> eo:searchText "..."` through `/update`
/// makes `s` findable by `mode=ranked`, deleting the triple removes it.
pub const SEARCH_TEXT_IRI: &str = "http://extremeearth.eu/ont/eo#searchText";

/// Sizing knobs for the engines behind the routes.
#[derive(Debug, Clone)]
pub struct DataConfig {
    /// Point features in the RDF store.
    pub points: usize,
    /// Products in the catalogue archive.
    pub products: usize,
    /// Side of the synthetic Sentinel-2 scene feeding the tile pyramid.
    pub scene_size: usize,
    /// Tile side served by `/tiles`.
    pub tile_size: usize,
    /// Side of each simulated ice world.
    pub ice_size: usize,
    /// Master seed; every engine derives from it.
    pub seed: u64,
    /// Shard assignment `(index, count)`: when set, the point store
    /// holds only the subjects the consistent-hash ring assigns to this
    /// shard. The generator still draws every feature (so coordinates
    /// stay identical across shard counts) and filters on ownership —
    /// the union of N shards is always bit-identical to the unsharded
    /// store.
    pub shard: Option<(usize, usize)>,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig {
            points: 20_000,
            products: 5_000,
            scene_size: 256,
            tile_size: 64,
            ice_size: 64,
            seed: 2019,
            shard: None,
        }
    }
}

impl DataConfig {
    /// A small configuration for tests and quick benchmarks.
    pub fn tiny() -> Self {
        DataConfig {
            points: 2_000,
            products: 500,
            scene_size: 96,
            tile_size: 32,
            ice_size: 48,
            seed: 2019,
            shard: None,
        }
    }
}

/// Everything the handlers touch. Built once; workers share it behind
/// an `Arc`. All engines except the point store are immutable; the
/// point store sits behind an [`RwLock`] so `POST /update` commits can
/// mutate it while readers pause only for the commit's apply phase.
pub struct AppState {
    /// Sizing used to build the state.
    pub config: DataConfig,
    /// Whether `POST /update` is accepted (the `--writable` flag);
    /// read-only servers answer it 403.
    pub writable: bool,
    /// Point-feature store with spatial index (the `/query` engine),
    /// durable when built through [`AppState::build_durable`]. Private:
    /// reads go through [`AppState::store`], writes through
    /// [`AppState::commit_update`] (which keeps the generation mirror
    /// and the plan cache coherent).
    store: RwLock<Store>,
    /// Mirror of the store generation, readable without the lock
    /// (metrics and the shard merge layer consult it).
    generation: AtomicU64,
    /// Mirror of the store's head commit id, readable without the lock.
    /// Cache keys and ETags consult it on every request: a commit id
    /// names the entire history that produced it (hash chain), so equal
    /// ids guarantee byte-identical stores — which a bare generation
    /// counter cannot.
    head: AtomicU64,
    /// Generation of the ranked (BM25) search index, bumped on every
    /// reindex. Catalogue cache keys stamp this — not the store
    /// generation — so `/catalogue/search` responses go stale exactly
    /// when the index changes, and never linger past a `searchText`
    /// commit.
    search_generation: AtomicU64,
    /// Resolved `AS OF` overlays by commit id. Novelties are relative to
    /// the **current** head, so the whole map is dropped on every
    /// effective commit.
    novelty: Mutex<HashMap<u64, Arc<Novelty>>>,
    /// Times the store read guard was taken ([`AppState::store`]).
    /// `ee_serve_store_reads_total`: lets experiments prove a cached
    /// 304 revalidation touched the store zero times.
    store_reads: AtomicU64,
    /// R-tree indexed product catalogue (the classic `/catalogue` arm).
    pub classic: ClassicCatalogue,
    /// GeoSPARQL catalogue over the same archive (the semantic arm).
    pub semantic: SemanticCatalogue,
    /// BM25 inverted index over the archive's
    /// [`ee_catalogue::Product::search_text`] documents **plus** any
    /// live documents committed through `/update` ([`SEARCH_TEXT_IRI`]
    /// triples). Doc ids below the product count index
    /// [`ClassicCatalogue::products`]; higher slots resolve through the
    /// live-document registry. Behind an [`RwLock`] because commits
    /// maintain it incrementally.
    bm25: RwLock<Bm25Index>,
    /// Subject↔slot registry for the live (committed) ranked documents.
    live_docs: Mutex<LiveDocs>,
    /// Overview pyramid, level 0 = full resolution.
    pub pyramid: Vec<Raster<f32>>,
    /// Tile side for `/tiles`.
    pub tile_size: usize,
    /// Pre-computed ice product suites by region name.
    pub ice: Vec<(String, IceProducts)>,
    /// Server start time, reported by `/healthz`.
    pub started: std::time::Instant,
    /// Prepared [`ee_rdf::plan::Plan`]s keyed on canonicalised query
    /// text, so repeated `/query` requests skip parse + plan.
    plans: Mutex<HashMap<String, Arc<ee_rdf::plan::Plan>>>,
    /// Plan-cache hits (reported by `/metrics`).
    plan_hits: AtomicU64,
    /// Plan-cache misses (reported by `/metrics`).
    plan_misses: AtomicU64,
    /// Executions per [`FastPath`] kind, indexed by position in
    /// [`FastPath::ALL`] (rendered as `ee_rdf_fastpath_total{kind}`).
    fastpath: [AtomicU64; FastPath::ALL.len()],
    /// Requests per `/catalogue/search` mode, indexed by position in
    /// [`CATALOGUE_MODES`].
    catalogue_mode_requests: [AtomicU64; CATALOGUE_MODES.len()],
    /// Handler latency per `/catalogue/search` mode, same indexing.
    catalogue_mode_latency: [Histogram; CATALOGUE_MODES.len()],
    /// Prepared plans dropped by commits
    /// (`ee_serve_invalidated_total{kind="plans"}`).
    invalidated_plans: AtomicU64,
    /// Cached responses dropped by commits (counted by the server,
    /// which owns the response cache; rendered here next to the plans).
    invalidated_responses: AtomicU64,
    /// `POST /update` commit latency (evaluate + WAL + apply).
    update_latency: Histogram,
    /// Router tier, when this process runs `--router`: dispatch sends
    /// `/query`, `/tiles` and `/ice` through it instead of the local
    /// engines.
    pub router: Option<crate::shard::RouterTier>,
    /// Slow-shard fault injection: every `slow_every`-th `/query`
    /// execution sleeps [`slow_ms`](AppState::slow_ms) milliseconds
    /// (0 = off). Models a transient hiccup — most requests stay fast,
    /// so a hedged retry lands on the fast path. Set from
    /// `EE_SERVE_SLOW_EVERY` by the binary; used by the hedging
    /// demonstration in E-f9.
    pub slow_every: u64,
    /// Injected sleep in milliseconds (`EE_SERVE_SLOW_MS`).
    pub slow_ms: u64,
    /// Requests seen by the fault injector.
    slow_counter: AtomicU64,
}

impl AppState {
    /// Build every engine over an **ephemeral** point store (commits
    /// apply in memory, nothing touches disk). Deterministic in
    /// `config`; the pyramid build runs row-parallel on the
    /// `ee_util::par` pool.
    pub fn build(config: DataConfig) -> AppState {
        let spec = shard_spec_of(&config);
        let store = Store::ephemeral(point_store_sharded(
            config.points,
            config.seed,
            spec.as_ref(),
        ));
        Self::build_with_store(config, store)
    }

    /// [`AppState::build`] with a **durable** point store in `dir`: an
    /// existing snapshot (plus WAL tail) is reopened — preserving every
    /// committed update across restarts — and a fresh directory is
    /// seeded with the deterministic generated point set.
    pub fn build_durable(config: DataConfig, dir: &Path) -> Result<AppState, StoreError> {
        let spec = shard_spec_of(&config);
        let mut store = if dir.join(ee_rdf::storage::snapshot::SNAPSHOT_FILE).exists() {
            Store::open(dir)?
        } else {
            Store::create(
                dir,
                point_store_sharded(config.points, config.seed, spec.as_ref()),
                Durability::from_env(),
            )?
        };
        // Threshold-triggered WAL folding (EE_WAL_COMPACT_BYTES /
        // EE_WAL_COMPACT_COMMITS); both unset leaves compaction manual.
        store.set_compaction_policy(CompactionPolicy::from_env());
        Ok(Self::build_with_store(config, store))
    }

    fn build_with_store(config: DataConfig, store: Store) -> AppState {
        let region = Envelope::new(0.0, 0.0, 40.0, 40.0);
        let products =
            ProductGenerator::new(region, 2017, config.seed ^ 5).take(config.products);
        let classic = ClassicCatalogue::build(products.clone());
        let bm25 = Bm25Index::build_products(classic.products());
        let mut semantic = SemanticCatalogue::new();
        for p in &products {
            semantic.ingest_product(p);
        }
        semantic.finish_ingest();

        let world = Landscape::generate(LandscapeConfig {
            size: config.scene_size,
            seed: config.seed ^ 11,
            ..LandscapeConfig::default()
        })
        .expect("landscape generation");
        let scene = simulate_s2(
            &world,
            Date::new(2017, 7, 1).expect("valid date"),
            OpticsConfig::default(),
            config.seed ^ 13,
        )
        .expect("scene simulation");
        let band = scene.band(Band::B04).expect("B04 simulated").clone();
        let pyramid = pyramid(&band);

        let ice = ICE_REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let world = IceWorld::generate(IceWorldConfig {
                    size: config.ice_size,
                    days: 3,
                    icebergs: 4,
                    seed: config.seed ^ (0x1ce << 8) ^ i as u64,
                    ..IceWorldConfig::default()
                })
                .expect("ice world");
                let (truth, leads, ridges) = truth_masks(&world, 1);
                // 40 m grid aggregated ×5 → 200 m products ("1 km or
                // better"), the same suite E12b delivers over PCDSS.
                (name.to_string(), products_from_map(&truth, &leads, &ridges, 5))
            })
            .collect();

        let tile_size = config.tile_size.max(1);
        let generation = AtomicU64::new(store.generation());
        let head = AtomicU64::new(store.head_commit());
        let live_docs = Mutex::new(LiveDocs::new(classic.len()));
        let state = AppState {
            config,
            writable: false,
            store: RwLock::new(store),
            generation,
            head,
            search_generation: AtomicU64::new(0),
            novelty: Mutex::new(HashMap::new()),
            store_reads: AtomicU64::new(0),
            classic,
            semantic,
            bm25: RwLock::new(bm25),
            live_docs,
            pyramid,
            tile_size,
            ice,
            started: std::time::Instant::now(),
            plans: Mutex::new(HashMap::new()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            fastpath: std::array::from_fn(|_| AtomicU64::new(0)),
            catalogue_mode_requests: std::array::from_fn(|_| AtomicU64::new(0)),
            catalogue_mode_latency: std::array::from_fn(|_| Histogram::new()),
            invalidated_plans: AtomicU64::new(0),
            invalidated_responses: AtomicU64::new(0),
            update_latency: Histogram::new(),
            router: None,
            slow_every: 0,
            slow_ms: 0,
            slow_counter: AtomicU64::new(0),
        };
        // A reopened durable store may already hold committed
        // `eo:searchText` documents — fold them into the ranked index so
        // restarts don't lose live documents.
        {
            let store = state.store.read().expect("store lock");
            let pred = Term::iri(SEARCH_TEXT_IRI);
            let mut subjects = Vec::new();
            if let Some(pid) = store.dict.id_of(&pred) {
                store.match_pattern(None, Some(pid), None, &mut |(s, _, _)| {
                    subjects.push(store.dict.term(s).clone());
                    true
                });
            }
            if !subjects.is_empty() {
                state.reindex_search_docs(&store, &subjects);
            }
        }
        state
    }

    /// Shared read access to the point store. The guard derefs through
    /// [`Store`] to [`TripleStore`], so every read API works on it
    /// directly. Held only as long as a handler needs it — streamed
    /// `/query` bodies re-take it per batch, so a long download never
    /// starves a writer.
    pub fn store(&self) -> RwLockReadGuard<'_, Store> {
        self.store_reads.fetch_add(1, Ordering::Relaxed);
        self.store.read().expect("store lock")
    }

    /// Current store generation, lock-free (mirrored on every commit).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Current head commit id, lock-free (mirrored on every commit).
    pub fn head_commit(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Current ranked-index generation, lock-free (bumped on reindex).
    pub fn search_generation(&self) -> u64 {
        self.search_generation.load(Ordering::SeqCst)
    }

    /// Times the store read guard has been taken so far.
    pub fn store_reads(&self) -> u64 {
        self.store_reads.load(Ordering::Relaxed)
    }

    /// Resolve a commit id to its [`Novelty`] overlay (empty for the
    /// head), or `None` when the id names no known commit. Cached per
    /// id; the cache is dropped on every effective commit because
    /// overlays are relative to the current head. Resolving a miss takes
    /// the **exclusive** store lock (rewinding may re-intern terms that
    /// compaction folded away), so callers must resolve *before* taking
    /// any read guard.
    pub fn novelty_for(&self, commit_id: u64) -> Option<Arc<Novelty>> {
        if commit_id == self.head_commit() {
            return Some(Arc::new(Novelty::default()));
        }
        if let Some(n) = self
            .novelty
            .lock()
            .expect("novelty cache lock")
            .get(&commit_id)
        {
            return Some(Arc::clone(n));
        }
        let novelty = {
            let mut store = self.store.write().expect("store lock");
            Arc::new(store.as_of(commit_id)?)
        };
        self.novelty
            .lock()
            .expect("novelty cache lock")
            .insert(commit_id, Arc::clone(&novelty));
        Some(novelty)
    }

    /// Whether `commit_id` names a commit in the store's history (the
    /// root id always does). Takes the read guard — used on cache
    /// misses only.
    pub fn commit_known(&self, commit_id: u64) -> bool {
        self.store().commit_known(commit_id)
    }

    /// Commit a SPARQL UPDATE: takes the exclusive store lock, runs the
    /// durable commit (evaluate → WAL fsync → apply), then — if the
    /// generation moved — refreshes the mirror and drops every prepared
    /// plan (plans bake in index statistics that the commit may have
    /// changed). Response-cache entries need no action here: their keys
    /// embed the generation, so the bump makes stale entries
    /// unreachable (the server also sweeps them, counting into
    /// [`ee_serve_invalidated_total`](Self::render_prometheus_section)).
    pub fn commit_update(
        &self,
        update: &ee_rdf::parser::Update,
    ) -> Result<CommitStats, StoreError> {
        let t0 = std::time::Instant::now();
        let mut store = self.store.write().expect("store lock");
        // Evaluate first (read-only) so the delta can be inspected for
        // ranked-index maintenance before it is applied.
        let delta = ee_rdf::update::evaluate_update(&store, update)?;
        let search_pred = Term::iri(SEARCH_TEXT_IRI);
        let touched: Vec<Term> = delta
            .insert
            .iter()
            .chain(delta.delete.iter())
            .filter(|(_, p, _)| *p == search_pred)
            .map(|(s, _, _)| s.clone())
            .collect();
        let stats = store.commit_delta(delta)?;
        let prev = self.generation.swap(stats.generation, Ordering::SeqCst);
        self.head.store(store.head_commit(), Ordering::SeqCst);
        if stats.generation != prev && !touched.is_empty() {
            // Re-derive each touched subject's document from the
            // post-commit store (still under the exclusive lock, so
            // ranked results can never lag a visible commit).
            self.reindex_search_docs(&store, &touched);
        }
        drop(store);
        if stats.generation != prev {
            let mut plans = self.plans.lock().expect("plan cache lock");
            let dropped = plans.len() as u64;
            plans.clear();
            self.invalidated_plans.fetch_add(dropped, Ordering::Relaxed);
            drop(plans);
            // AS OF overlays are relative to the head that just moved.
            self.novelty.lock().expect("novelty cache lock").clear();
        }
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.update_latency.record_us(us);
        Ok(stats)
    }

    /// Count response-cache entries swept after a commit (the server
    /// owns the cache; the counter lives here so `/metrics` renders
    /// both invalidation kinds together).
    pub fn note_invalidated_responses(&self, n: u64) {
        self.invalidated_responses.fetch_add(n, Ordering::Relaxed);
    }

    /// Commit-latency histogram of `POST /update` (for experiments).
    pub fn update_latency(&self) -> &Histogram {
        &self.update_latency
    }

    /// Count one execution of `plan`'s chosen fast path (both the
    /// collecting and streaming `/query` arms call this, so the
    /// `ee_rdf_fastpath_total{kind}` counters cover every execution).
    fn note_fastpath(&self, plan: &ee_rdf::plan::Plan) {
        let route = plan.fast_path();
        let i = FastPath::ALL
            .iter()
            .position(|f| *f == route)
            .expect("every FastPath is in ALL");
        self.fastpath[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Executions recorded for one fast-path kind.
    pub fn fastpath_count(&self, kind: FastPath) -> u64 {
        let i = FastPath::ALL
            .iter()
            .position(|f| *f == kind)
            .expect("every FastPath is in ALL");
        self.fastpath[i].load(Ordering::Relaxed)
    }

    /// Record one `/catalogue/search` request on `mode` with its handler
    /// latency. Unknown modes (the 400 arm) are not recorded — the label
    /// set stays fixed at [`CATALOGUE_MODES`].
    pub fn record_catalogue_mode(&self, mode: &str, latency_us: u64) {
        if let Some(i) = CATALOGUE_MODES.iter().position(|m| *m == mode) {
            self.catalogue_mode_requests[i].fetch_add(1, Ordering::Relaxed);
            self.catalogue_mode_latency[i].record_us(latency_us);
        }
    }

    /// Latency histogram of one catalogue mode (`None` for labels
    /// outside [`CATALOGUE_MODES`]).
    pub fn catalogue_mode_latency(&self, mode: &str) -> Option<&Histogram> {
        CATALOGUE_MODES
            .iter()
            .position(|m| *m == mode)
            .map(|i| &self.catalogue_mode_latency[i])
    }

    /// BM25-ranked catalogue search: top-`k` documents by score for a
    /// free-text query, best first. Doc ids below the product count
    /// resolve through [`ClassicCatalogue::products`] (same build
    /// order); higher slots are live documents committed through
    /// `/update` and resolve through the live-document registry.
    pub fn ranked_search(&self, query: &str, k: usize) -> Vec<RankedHit<'_>> {
        let products = self.classic.products();
        let hits = self.bm25.read().expect("bm25 lock").search(query, k);
        let live = self.live_docs.lock().expect("live docs lock");
        hits.into_iter()
            .map(|h| {
                let slot = h.doc as usize;
                let doc = if slot < products.len() {
                    RankedDoc::Product(&products[slot])
                } else {
                    let (subject, text) = live
                        .by_slot
                        .get(&slot)
                        .cloned()
                        .expect("live slots with postings are registered");
                    RankedDoc::Live { subject, text }
                };
                RankedHit {
                    score: h.score,
                    doc,
                }
            })
            .collect()
    }

    /// Documents currently searchable by `mode=ranked` (seed products
    /// plus live committed documents).
    pub fn ranked_indexed(&self) -> usize {
        self.bm25.read().expect("bm25 lock").len()
    }

    /// Rebuild each subject's ranked-index document from the store's
    /// current [`SEARCH_TEXT_IRI`] triples: multiple literals join (in
    /// sorted order) into one document, none at all removes it. Callers
    /// hold the store lock, making index updates atomic with commits.
    fn reindex_search_docs(&self, store: &TripleStore, subjects: &[Term]) {
        // Stamp first: catalogue cache keys embed this generation, so
        // any key built from here on can only name the new index state.
        self.search_generation.fetch_add(1, Ordering::SeqCst);
        let mut bm25 = self.bm25.write().expect("bm25 lock");
        let mut live = self.live_docs.lock().expect("live docs lock");
        let pid = store.dict.id_of(&Term::iri(SEARCH_TEXT_IRI));
        let mut seen = std::collections::HashSet::new();
        for subject in subjects {
            let key = match subject {
                Term::Iri(i) => i.clone(),
                other => other.ntriples(),
            };
            if !seen.insert(key.clone()) {
                continue;
            }
            let mut texts: Vec<String> = Vec::new();
            if let (Some(pid), Some(sid)) = (pid, store.dict.id_of(subject)) {
                store.match_pattern(Some(sid), Some(pid), None, &mut |(_, _, o)| {
                    if let Term::Literal { lexical, .. } = store.dict.term(o) {
                        texts.push(lexical.clone());
                    }
                    true
                });
            }
            if texts.is_empty() {
                if let Some(slot) = live.by_subject.remove(&key) {
                    bm25.remove(slot);
                    live.by_slot.remove(&slot);
                    live.free.push(slot);
                }
            } else {
                texts.sort();
                let text = texts.join(" ");
                let slot = match live.by_subject.get(&key) {
                    Some(&slot) => slot,
                    None => {
                        let slot = if let Some(s) = live.free.pop() {
                            s
                        } else {
                            let s = live.slots;
                            live.slots += 1;
                            s
                        };
                        live.by_subject.insert(key.clone(), slot);
                        slot
                    }
                };
                bm25.upsert(slot, &text);
                live.by_slot.insert(slot, (key, text));
            }
        }
    }

    /// The state-owned slice of `/metrics`: fast-path execution counters
    /// and per-catalogue-mode request counts + latency histograms. The
    /// server appends this to [`crate::metrics::Metrics::render_prometheus`]'s
    /// output, keeping engine-level counters next to the engines they
    /// describe.
    pub fn render_prometheus_section(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(
            "# HELP ee_rdf_fastpath_total Query executions per executor fast path\n\
             # TYPE ee_rdf_fastpath_total counter\n",
        );
        for (i, kind) in FastPath::ALL.iter().enumerate() {
            out.push_str(&format!(
                "ee_rdf_fastpath_total{{kind=\"{}\"}} {}\n",
                kind.label(),
                self.fastpath[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP ee_serve_catalogue_mode_requests_total Catalogue searches per mode\n\
             # TYPE ee_serve_catalogue_mode_requests_total counter\n",
        );
        for (i, mode) in CATALOGUE_MODES.iter().enumerate() {
            out.push_str(&format!(
                "ee_serve_catalogue_mode_requests_total{{mode=\"{mode}\"}} {}\n",
                self.catalogue_mode_requests[i].load(Ordering::Relaxed)
            ));
        }
        render_histogram_family(
            &mut out,
            "ee_serve_catalogue_mode_latency_us",
            "Catalogue search handler latency per mode (µs)",
            "mode",
            CATALOGUE_MODES
                .iter()
                .enumerate()
                .map(|(i, m)| (*m, &self.catalogue_mode_latency[i])),
        );
        out.push_str(&format!(
            "# HELP ee_rdf_generation Point-store generation (bumps once per effective commit)\n\
             # TYPE ee_rdf_generation gauge\nee_rdf_generation {}\n",
            self.generation()
        ));
        out.push_str(&format!(
            "# HELP ee_serve_search_generation Ranked-index generation (bumps on reindex)\n\
             # TYPE ee_serve_search_generation gauge\nee_serve_search_generation {}\n",
            self.search_generation()
        ));
        out.push_str(&format!(
            "# HELP ee_serve_store_reads_total Times the point-store read guard was taken\n\
             # TYPE ee_serve_store_reads_total counter\nee_serve_store_reads_total {}\n",
            self.store_reads()
        ));
        out.push_str(&format!(
            "# HELP ee_serve_invalidated_total Cache entries invalidated by store commits\n\
             # TYPE ee_serve_invalidated_total counter\n\
             ee_serve_invalidated_total{{kind=\"plans\"}} {}\n\
             ee_serve_invalidated_total{{kind=\"responses\"}} {}\n",
            self.invalidated_plans.load(Ordering::Relaxed),
            self.invalidated_responses.load(Ordering::Relaxed),
        ));
        render_histogram_family(
            &mut out,
            "ee_serve_update_commit_us",
            "SPARQL UPDATE commit latency (µs)",
            "op",
            [("commit", &self.update_latency)],
        );
        if let Some(router) = &self.router {
            out.push_str(&router.render_prometheus_section());
        }
        out
    }

    /// Slow-shard fault injection hook, called once per `/query`
    /// execution: sleeps [`slow_ms`](AppState::slow_ms) on every
    /// [`slow_every`](AppState::slow_every)-th call. A no-op unless the
    /// injector is armed.
    pub fn maybe_inject_slowdown(&self) {
        if self.slow_every == 0 || self.slow_ms == 0 {
            return;
        }
        let n = self.slow_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.slow_every) {
            std::thread::sleep(std::time::Duration::from_millis(self.slow_ms));
        }
    }

    /// Resolve a SPARQL text to a prepared plan: the text is
    /// canonicalised (whitespace-collapsed), looked up in the plan
    /// cache, and planned on miss. Takes the store (already locked by
    /// the caller) so planning and execution see one consistent state.
    fn prepared_plan(
        &self,
        store: &TripleStore,
        sparql: &str,
    ) -> Result<Arc<ee_rdf::plan::Plan>, ee_rdf::RdfError> {
        let key = sparql.split_whitespace().collect::<Vec<_>>().join(" ");
        let cached = self.plans.lock().expect("plan cache lock").get(&key).cloned();
        match cached {
            Some(p) => {
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                Ok(p)
            }
            None => {
                let q = ee_rdf::parser::parse_query(sparql)?;
                let p = Arc::new(ee_rdf::plan::plan(store, &q)?);
                self.plan_misses.fetch_add(1, Ordering::Relaxed);
                self.plans
                    .lock()
                    .expect("plan cache lock")
                    .insert(key, p.clone());
                Ok(p)
            }
        }
    }

    /// Evaluate a SPARQL query through the prepared-plan path and collect
    /// every row. Both GET and POST `/query` share the plan cache, so a
    /// repeated query — however submitted — pays parse + planning once.
    pub fn prepared_query(
        &self,
        sparql: &str,
    ) -> Result<ee_rdf::exec::Solutions, ee_rdf::RdfError> {
        let store = self.store();
        let plan = self.prepared_plan(&store, sparql)?;
        self.note_fastpath(&plan);
        ee_rdf::exec::execute_plan(&store, &plan, ee_util::par::available_threads())
    }

    /// Evaluate a SPARQL query through the prepared-plan path, returning
    /// a [`ee_rdf::exec::StreamCore`] that yields result batches
    /// incrementally. For non-aggregate, non-ORDER-BY queries no join
    /// work happens here at all: the pull-based pipeline runs inside
    /// `next_batch(&self.store)` calls, so the `/query` route's
    /// chunk-by-chunk serialisation exerts real backpressure — a slow
    /// client pauses the joins instead of buffering their output.
    pub fn prepared_query_stream(
        &self,
        sparql: &str,
    ) -> Result<ee_rdf::exec::StreamCore, ee_rdf::RdfError> {
        let store = self.store();
        let plan = self.prepared_plan(&store, sparql)?;
        self.note_fastpath(&plan);
        ee_rdf::exec::stream_plan_shared(&store, plan, ee_util::par::available_threads())
    }

    /// Evaluate a SPARQL query against the historical view `novelty`
    /// describes (an `AS OF` read), collecting every row under **one**
    /// read guard so the whole response reflects a single immutable
    /// snapshot — versioned reads trade streaming for snapshot
    /// consistency. The plan is built fresh against the view and never
    /// cached: its spatial candidate sets are valid only for this exact
    /// overlay, which changes as head advances.
    pub fn versioned_query(
        &self,
        sparql: &str,
        novelty: &Novelty,
    ) -> Result<ee_rdf::exec::Solutions, ee_rdf::RdfError> {
        let store = self.store();
        let q = ee_rdf::parser::parse_query(sparql)?;
        let view = StoreView::with_novelty(&store, novelty);
        let plan = Arc::new(ee_rdf::plan::plan_view(view, &q)?);
        self.note_fastpath(&plan);
        ee_rdf::exec::execute_plan_view(view, plan, ee_util::par::available_threads())
    }

    /// Plan-cache statistics: `(hits, misses, entries)`.
    pub fn plan_cache_stats(&self) -> (u64, u64, usize) {
        (
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
            self.plans.lock().expect("plan cache lock").len(),
        )
    }

    /// The ice products of a region, if it exists.
    pub fn ice_region(&self, name: &str) -> Option<&IceProducts> {
        self.ice
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }

    /// Run a classic AOI search, returning matching products.
    pub fn classic_search(
        &self,
        aoi: Envelope,
    ) -> Result<Vec<&ee_catalogue::Product>, ee_catalogue::CatalogueError> {
        self.classic.search(&Search::aoi(aoi))
    }
}

/// One `mode=ranked` search hit.
pub struct RankedHit<'a> {
    /// BM25 score (higher is better).
    pub score: f64,
    /// The document the hit resolved to.
    pub doc: RankedDoc<'a>,
}

/// What a ranked-search doc id resolved to.
pub enum RankedDoc<'a> {
    /// A product of the seed catalogue archive.
    Product(&'a ee_catalogue::Product),
    /// A document committed live through `POST /update` as a
    /// [`SEARCH_TEXT_IRI`] triple.
    Live {
        /// Subject IRI of the `eo:searchText` triple(s).
        subject: String,
        /// The indexed document text (sorted literals joined).
        text: String,
    },
}

/// Registry of live (committed) ranked documents: subject ↔ BM25 slot
/// both ways, plus slot accounting. Slots `0..products` belong to the
/// seed archive forever; live documents use slots above that, reusing
/// freed ones before growing the slab.
struct LiveDocs {
    by_subject: HashMap<String, usize>,
    by_slot: HashMap<usize, (String, String)>,
    /// Total BM25 slots ever allocated (live or dead).
    slots: usize,
    /// Dead live-document slots available for reuse.
    free: Vec<usize>,
}

impl LiveDocs {
    fn new(products: usize) -> LiveDocs {
        LiveDocs {
            by_subject: HashMap::new(),
            by_slot: HashMap::new(),
            slots: products,
            free: Vec::new(),
        }
    }
}

/// Build a spatially-indexed store of `n` point features — the same
/// shape as the E2 experiment's store, so `/query` serves the paper's
/// "selections over a rectangular area" workload.
pub fn point_store(n: usize, seed: u64) -> TripleStore {
    point_store_sharded(n, seed, None)
}

/// [`point_store`] restricted to one shard's subject-hash slice. Every
/// feature's coordinates are still drawn (the RNG advances identically
/// for every shard), then non-owned subjects are skipped — so N shard
/// stores union to exactly the unsharded store, coordinate for
/// coordinate.
pub fn point_store_sharded(
    n: usize,
    seed: u64,
    shard: Option<&ee_rdf::storage::ShardSpec>,
) -> TripleStore {
    let mut store = TripleStore::new(IndexMode::Full);
    let mut rng = Rng::seed_from(seed);
    let geom = Term::iri("http://e/hasGeometry");
    let kind = Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    let feature = Term::iri("http://e/Feature");
    for i in 0..n {
        let s = Term::iri(format!("http://e/f{i}"));
        let x = rng.range_f64(0.0, REGION);
        let y = rng.range_f64(0.0, REGION);
        if shard.is_some_and(|spec| !spec.accepts(&s)) {
            continue;
        }
        store.insert(&s, &kind, &feature);
        store.insert(&s, &geom, &Term::wkt(format!("POINT ({x} {y})")));
    }
    store.build_spatial_index();
    store
}

/// The [`ee_rdf::storage::ShardSpec`] a config's `shard` field names.
/// Panics on an invalid assignment (index ≥ count) — a startup
/// configuration error, not a runtime condition.
fn shard_spec_of(config: &DataConfig) -> Option<ee_rdf::storage::ShardSpec> {
    config
        .shard
        .map(|(index, count)| ee_rdf::storage::ShardSpec::new(index, count))
}

/// The rectangular-selection query `/query` issues when given a window
/// origin instead of raw SPARQL (side defaults to 1% of the region's
/// area, matching E2).
pub fn selection_sparql(x0: f64, y0: f64, side: f64) -> String {
    let (x1, y1) = (x0 + side, y0 + side);
    format!(
        "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE {{ \
         ?s e:hasGeometry ?g . \
         FILTER(geof:sfWithin(?g, \"POLYGON (({x0} {y0}, {x1} {y0}, {x1} {y1}, {x0} {y1}, {x0} {y0}))\"^^geo:wktLiteral)) }}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_and_complete() {
        let a = AppState::build(DataConfig::tiny());
        assert!(a.store().len() >= 2 * a.config.points);
        assert_eq!(a.classic.len(), a.config.products);
        assert!(!a.semantic.is_empty());
        assert_eq!(a.pyramid[0].shape(), (96, 96));
        assert_eq!(a.pyramid.last().unwrap().shape(), (1, 1));
        assert_eq!(a.ice.len(), ICE_REGIONS.len());
        assert!(a.ice_region("fram-strait").is_some());
        assert!(a.ice_region("atlantis").is_none());
        // Determinism: the same config builds the same data.
        let b = AppState::build(DataConfig::tiny());
        assert_eq!(a.store().len(), b.store().len());
        assert_eq!(a.pyramid[2], b.pyramid[2]);
    }

    #[test]
    fn commit_update_bumps_generation_and_drops_plans() {
        let state = AppState::build(DataConfig::tiny());
        assert_eq!(state.generation(), 0);
        // Warm the plan cache.
        let q = "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g }";
        state.prepared_query(q).expect("query");
        assert_eq!(state.plan_cache_stats().2, 1);
        let before = state.store().len();
        let u = ee_rdf::parser::parse_update(
            "INSERT DATA { <http://e/new> <http://e/p> \"v\" }",
        )
        .unwrap();
        let stats = state.commit_update(&u).expect("commit");
        assert_eq!(stats.generation, 1);
        assert_eq!(state.generation(), 1);
        assert_eq!(state.store().len(), before + 1);
        assert_eq!(state.plan_cache_stats().2, 0, "commit drops prepared plans");
        // A no-op commit (same triple again) bumps nothing.
        let stats = state.commit_update(&u).expect("noop commit");
        assert_eq!(stats.generation, 1);
        assert_eq!(state.generation(), 1);
        assert_eq!(state.update_latency().count(), 2);
        let section = state.render_prometheus_section();
        assert!(section.contains("ee_rdf_generation 1"));
        assert!(section.contains("ee_serve_invalidated_total{kind=\"plans\"} 1"));
        assert!(section.contains("ee_serve_update_commit_us_count{op=\"commit\"} 2"));
    }

    #[test]
    fn versioned_reads_rewind_through_the_novelty_cache() {
        let state = AppState::build(DataConfig::tiny());
        let root = state.head_commit();
        assert_eq!(root, ee_rdf::storage::ROOT_COMMIT_ID);
        let q = "SELECT ?o WHERE { <http://e/vdoc> <http://e/p> ?o }";
        let v = |sols: ee_rdf::exec::Solutions| -> Vec<String> {
            sols.rows
                .iter()
                .map(|r| match r[0].as_ref() {
                    Some(Term::Literal { lexical, .. }) => lexical.clone(),
                    other => panic!("expected literal, got {other:?}"),
                })
                .collect()
        };
        let u1 = ee_rdf::parser::parse_update(
            "INSERT DATA { <http://e/vdoc> <http://e/p> \"v1\" }",
        )
        .unwrap();
        state.commit_update(&u1).expect("commit v1");
        let c1 = state.head_commit();
        assert_ne!(c1, root, "commit moves the head id");
        let u2 = ee_rdf::parser::parse_update(
            "DELETE DATA { <http://e/vdoc> <http://e/p> \"v1\" } ; \
             INSERT DATA { <http://e/vdoc> <http://e/p> \"v2\" }",
        )
        .unwrap();
        state.commit_update(&u2).expect("commit v2");
        let c2 = state.head_commit();
        assert!(c2 != c1 && c2 != root);
        assert!(state.commit_known(c1) && state.commit_known(c2));

        assert_eq!(v(state.prepared_query(q).unwrap()), ["v2"], "head sees v2");
        let n1 = state.novelty_for(c1).expect("c1 resolvable");
        assert_eq!(v(state.versioned_query(q, &n1).unwrap()), ["v1"]);
        let nroot = state.novelty_for(root).expect("root resolvable");
        assert!(v(state.versioned_query(q, &nroot).unwrap()).is_empty());
        let nhead = state.novelty_for(c2).expect("head resolvable");
        assert_eq!(v(state.versioned_query(q, &nhead).unwrap()), ["v2"]);
        assert!(state.novelty_for(0xdead_beef).is_none(), "unknown id");

        // The cache serves repeats and is dropped by the next commit.
        let again = state.novelty_for(c1).expect("cached");
        assert!(Arc::ptr_eq(&n1, &again), "second resolve is the cached Arc");
        let u3 = ee_rdf::parser::parse_update(
            "INSERT DATA { <http://e/vdoc2> <http://e/p> \"x\" }",
        )
        .unwrap();
        state.commit_update(&u3).expect("commit x");
        let fresh = state.novelty_for(c1).expect("re-resolved against new head");
        assert!(!Arc::ptr_eq(&n1, &fresh), "overlay cache dropped on commit");
        assert_eq!(v(state.versioned_query(q, &fresh).unwrap()), ["v1"]);
        // A no-op update moves neither generation nor head.
        let before = state.head_commit();
        state.commit_update(&u3).expect("noop");
        assert_eq!(state.head_commit(), before);
        assert!(state.store_reads() > 0);
    }

    #[test]
    fn build_durable_reopens_committed_state() {
        let dir = ee_rdf::storage::scratch_dir("serve-durable");
        let cfg = DataConfig::tiny();
        let fresh = AppState::build_durable(cfg.clone(), &dir).expect("seed durable state");
        let seeded = fresh.store().len();
        assert!(seeded >= 2 * cfg.points);
        let u = ee_rdf::parser::parse_update(
            "INSERT DATA { <http://e/durable> <http://e/p> <http://e/o> }",
        )
        .unwrap();
        fresh.commit_update(&u).expect("commit");
        drop(fresh);
        // Reopen: snapshot + WAL replay restore the committed triple.
        let reopened = AppState::build_durable(cfg, &dir).expect("reopen");
        assert_eq!(reopened.generation(), 1);
        assert_eq!(reopened.store().len(), seeded + 1);
        assert!(reopened.store().contains(
            &Term::iri("http://e/durable"),
            &Term::iri("http://e/p"),
            &Term::iri("http://e/o"),
        ));
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fastpath_counters_track_query_shapes() {
        let state = AppState::build(DataConfig::tiny());
        // COUNT without GROUP BY → fast_count (twice: collect + stream).
        let count_q =
            "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g }";
        state.prepared_query(count_q).expect("count query");
        state.prepared_query_stream(count_q).expect("count stream");
        // ORDER BY + LIMIT → topk.
        state
            .prepared_query(
                "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:hasGeometry ?g } \
                 ORDER BY ?s LIMIT 3",
            )
            .expect("topk query");
        // Plain projection → stream.
        state
            .prepared_query("PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:hasGeometry ?g }")
            .expect("stream query");
        assert_eq!(state.fastpath_count(FastPath::FastCount), 2);
        assert_eq!(state.fastpath_count(FastPath::TopK), 1);
        assert_eq!(state.fastpath_count(FastPath::Stream), 1);
        assert_eq!(state.fastpath_count(FastPath::FullSort), 0);
        let section = state.render_prometheus_section();
        assert!(section.contains("ee_rdf_fastpath_total{kind=\"fast_count\"} 2"));
        assert!(section.contains("ee_rdf_fastpath_total{kind=\"topk\"} 1"));
        assert!(section.contains("ee_rdf_fastpath_total{kind=\"group_count\"} 0"));
        // Prometheus text shape: every non-comment line is `name value`.
        for line in section.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line {line:?}");
        }
    }

    #[test]
    fn ranked_search_resolves_products_in_score_order() {
        let state = AppState::build(DataConfig::tiny());
        assert_eq!(state.ranked_indexed(), state.classic.len());
        let hits = state.ranked_search("radar ground range detected", 7);
        assert!(!hits.is_empty() && hits.len() <= 7);
        assert!(
            hits.windows(2).all(|w| w[0].score >= w[1].score),
            "descending scores"
        );
        for hit in &hits {
            match &hit.doc {
                RankedDoc::Product(p) => {
                    assert_eq!(p.mission, "S1", "radar vocabulary only matches Sentinel-1")
                }
                RankedDoc::Live { .. } => panic!("no live docs before any commit"),
            }
        }
    }

    #[test]
    fn committed_search_text_is_ranked_searchable_live() {
        let state = AppState::build(DataConfig::tiny());
        let absent = state.ranked_search("zanzibar mangrove flyover", 5);
        assert!(absent.is_empty(), "nonsense vocabulary matches nothing");
        let seed_count = state.ranked_indexed();

        // Commit a document: it becomes searchable immediately.
        let u = ee_rdf::parser::parse_update(&format!(
            "INSERT DATA {{ <http://e/doc1> <{SEARCH_TEXT_IRI}> \
             \"zanzibar mangrove flyover campaign\" }}"
        ))
        .unwrap();
        state.commit_update(&u).expect("commit insert");
        assert_eq!(state.ranked_indexed(), seed_count + 1);
        let hits = state.ranked_search("zanzibar mangrove flyover", 5);
        assert_eq!(hits.len(), 1);
        match &hits[0].doc {
            RankedDoc::Live { subject, text } => {
                assert_eq!(subject, "http://e/doc1");
                assert!(text.contains("zanzibar"));
            }
            RankedDoc::Product(_) => panic!("must resolve to the live doc"),
        }

        // A second literal on the same subject folds into one document.
        let u2 = ee_rdf::parser::parse_update(&format!(
            "INSERT DATA {{ <http://e/doc1> <{SEARCH_TEXT_IRI}> \"aardvark burrow\" }}"
        ))
        .unwrap();
        state.commit_update(&u2).expect("commit second literal");
        assert_eq!(state.ranked_indexed(), seed_count + 1, "same doc, updated");
        assert_eq!(state.ranked_search("aardvark", 5).len(), 1);

        // Deleting every searchText literal removes the document.
        let u3 = ee_rdf::parser::parse_update(&format!(
            "DELETE WHERE {{ <http://e/doc1> <{SEARCH_TEXT_IRI}> ?t }}"
        ))
        .unwrap();
        state.commit_update(&u3).expect("commit delete");
        assert_eq!(state.ranked_indexed(), seed_count);
        assert!(state.ranked_search("zanzibar mangrove flyover", 5).is_empty());
        assert!(state.ranked_search("aardvark", 5).is_empty());

        // Seed products stay searchable throughout.
        assert!(!state.ranked_search("radar ground range detected", 3).is_empty());
    }

    #[test]
    fn selection_query_answers() {
        let state = AppState::build(DataConfig::tiny());
        let q = selection_sparql(10.0, 10.0, 10.0);
        let sol = ee_rdf::exec::query(&state.store(), &q).expect("selection");
        let n = match sol.scalar() {
            Some(Term::Literal { lexical, .. }) => lexical.parse::<usize>().unwrap(),
            other => panic!("expected scalar count, got {other:?}"),
        };
        assert!(n > 0, "1% window over 2k points hits something");
    }
}
