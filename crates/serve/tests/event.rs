//! End-to-end tests of the event-driven serve tier over real localhost
//! sockets: behaviours the thread-per-connection suites can't exercise
//! — idle-connection reaping, slow-loris partial heads, per-route
//! quotas, the max-connections cap, mid-stream client disconnects under
//! the event loop — plus the byte-identity contract between the two
//! architectures and an open-loop fleet smoke.

use ee_serve::http::read_response;
use ee_serve::loadgen::{run_open_loop, OpenLoopPlan};
use ee_serve::metrics::Route;
use ee_serve::{start, AppState, DataConfig, ServerConfig, ServerKind};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn state() -> Arc<AppState> {
    static STATE: OnceLock<Arc<AppState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| Arc::new(AppState::build(DataConfig::tiny()))))
}

fn event_config() -> ServerConfig {
    ServerConfig {
        kind: ServerKind::Event,
        workers: 2,
        event_shards: 2,
        queue_watermark: 16,
        deadline: Duration::from_millis(2_000),
        idle_timeout: Duration::from_millis(2_000),
        debug_routes: true,
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let r = s.try_clone().expect("clone");
    (s, BufReader::new(r))
}

fn send(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    keep_alive: bool,
) -> ee_serve::http::ClientResponse {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: t\r\nconnection: {conn}\r\n\r\n"
    );
    let _ = stream.flush();
    read_response(reader).expect("response")
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let mut config = event_config();
    config.idle_timeout = Duration::from_millis(300);
    let server = start(config, state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    let resp = send(&mut s, &mut r, "/healthz", true);
    assert_eq!(resp.status, 200);
    assert!(resp.keep_alive);

    // Park the connection past the idle timeout: the server closes it.
    let mut probe = [0u8; 16];
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let n = s.read(&mut probe).expect("clean EOF, not a reset");
    assert_eq!(n, 0, "reaped idle connection ends in EOF");
    assert!(
        server
            .metrics()
            .idle_reaped
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    // The server stays fully serviceable afterwards.
    let (mut s2, mut r2) = connect(server.addr);
    assert_eq!(send(&mut s2, &mut r2, "/healthz", false).status, 200);
    server.shutdown();
}

#[test]
fn slow_loris_partial_heads_get_408_and_close() {
    let mut config = event_config();
    config.deadline = Duration::from_millis(300);
    let server = start(config, state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    // A request head that never finishes.
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: lor").unwrap();
    s.flush().unwrap();
    let t0 = Instant::now();
    let resp = read_response(&mut r).expect("408 response");
    assert_eq!(resp.status, 408);
    assert!(!resp.keep_alive);
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "408 only after the read deadline, not immediately"
    );
    // The connection is closed after the 408.
    let mut probe = [0u8; 16];
    assert_eq!(s.read(&mut probe).unwrap_or(0), 0);
    server.shutdown();
}

#[test]
fn pipelining_past_the_depth_cap_is_shed_with_503() {
    let mut config = event_config();
    config.max_pipeline_depth = 3;
    let server = start(config, state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    // Ten requests in one burst: the server answers while further
    // request bytes sit buffered, so each dispatch deepens the pipeline.
    let burst = "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n".repeat(10);
    s.write_all(burst.as_bytes()).unwrap();
    s.flush().unwrap();

    // Depth 1..=3 are served, the fourth dispatch exceeds the cap.
    for i in 0..3 {
        let resp = read_response(&mut r).expect("pipelined response");
        assert_eq!(resp.status, 200, "response {i} within the cap");
    }
    let shed = read_response(&mut r).expect("shed response");
    assert_eq!(shed.status, 503);
    assert!(!shed.keep_alive);
    let mut probe = [0u8; 16];
    assert_eq!(s.read(&mut probe).unwrap_or(0), 0, "connection closed");
    assert_eq!(
        server
            .metrics()
            .pipeline_capped
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // A well-behaved client on a fresh connection still gets more than
    // `max_pipeline_depth` requests served sequentially.
    let (mut s2, mut r2) = connect(server.addr);
    for _ in 0..6 {
        assert_eq!(send(&mut s2, &mut r2, "/healthz", true).status, 200);
    }
    server.shutdown();
}

#[test]
fn mid_stream_client_disconnect_leaves_event_server_healthy() {
    let server = start(event_config(), state()).expect("start");
    {
        let (mut s, _r) = connect(server.addr);
        // A long stream the client abandons after a few bytes.
        let _ = write!(
            s,
            "GET /debug/stream?chunks=200&bytes=4096&ms=10 HTTP/1.1\r\nhost: t\r\n\r\n"
        );
        let _ = s.flush();
        let mut first = [0u8; 512];
        let _ = s.read(&mut first).expect("stream starts");
        // Drop both halves: the event loop must notice and free the slot.
    }
    // The fleet gauge returns to zero and new requests are served.
    let t0 = Instant::now();
    loop {
        let open = server
            .metrics()
            .open_connections
            .load(std::sync::atomic::Ordering::Relaxed);
        if open == 0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "disconnected stream still counted open after 5s (gauge {open})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let (mut s, mut r) = connect(server.addr);
    assert_eq!(send(&mut s, &mut r, "/healthz", false).status, 200);
    server.shutdown();
}

#[test]
fn per_route_quota_sheds_requests_but_keeps_connections() {
    let mut config = event_config();
    config.route_quota_overrides = vec![(Route::Debug, 1)];
    let server = start(config, state()).expect("start");

    // Hold the single /debug in-flight slot.
    let (mut s1, mut r1) = connect(server.addr);
    let _ = write!(
        s1,
        "GET /debug/sleep?ms=800 HTTP/1.1\r\nhost: t\r\nconnection: keep-alive\r\n\r\n"
    );
    let _ = s1.flush();
    std::thread::sleep(Duration::from_millis(150));

    // Second /debug request: shed with 503 + retry-after, but the
    // connection survives and other routes still answer on it.
    let (mut s2, mut r2) = connect(server.addr);
    let shed = send(&mut s2, &mut r2, "/debug/sleep?ms=1", true);
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(
        std::str::from_utf8(&shed.body).unwrap().contains("quota"),
        "shed names the quota, not the admission queue"
    );
    let after = send(&mut s2, &mut r2, "/healthz", true);
    assert_eq!(after.status, 200, "same connection serves other routes");

    assert_eq!(read_response(&mut r1).expect("held request").status, 200);
    assert!(server.metrics().route_shed(Route::Debug) >= 1);
    // Once the slot frees, the route serves again.
    let again = send(&mut s2, &mut r2, "/debug/sleep?ms=1", false);
    assert_eq!(again.status, 200);
    server.shutdown();
}

#[test]
fn max_connections_cap_sheds_at_accept() {
    let mut config = event_config();
    config.max_connections = 2;
    let server = start(config, state()).expect("start");
    let (mut s1, mut r1) = connect(server.addr);
    let (mut s2, mut r2) = connect(server.addr);
    // Confirm both are registered (responses mean the acceptor counted
    // them) before probing the cap.
    assert_eq!(send(&mut s1, &mut r1, "/healthz", true).status, 200);
    assert_eq!(send(&mut s2, &mut r2, "/healthz", true).status, 200);

    let (_s3, mut r3) = connect(server.addr);
    let resp = read_response(&mut r3).expect("503 at accept");
    assert_eq!(resp.status, 503);
    assert!(std::str::from_utf8(&resp.body)
        .unwrap()
        .contains("connection limit"));

    // Freeing a slot re-admits newcomers.
    drop((s1, r1));
    std::thread::sleep(Duration::from_millis(200));
    let (mut s4, mut r4) = connect(server.addr);
    assert_eq!(send(&mut s4, &mut r4, "/healthz", false).status, 200);
    server.shutdown();
}

#[test]
fn event_and_threaded_serve_byte_identical_responses() {
    // /healthz is excluded: its body embeds a live uptime value.
    let targets = [
        "/query?x=12&y=34",
        "/catalogue/search?mode=classic&minx=11&miny=11&maxx=13&maxy=13",
        "/catalogue/search?mode=ranked&q=radar&k=3",
        "/tiles/0/0/0",
        "/tiles/1/1/1",
        "/ice/fram-strait",
        // Streamed chunked bodies, including a deterministic debug one.
        "/debug/stream?chunks=9&bytes=1000&ms=0",
    ];
    let event = start(event_config(), state()).expect("start event");
    let threaded = start(
        ServerConfig {
            kind: ServerKind::Threaded,
            ..event_config()
        },
        state(),
    )
    .expect("start threaded");

    let (mut es, mut er) = connect(event.addr);
    let (mut ts, mut tr) = connect(threaded.addr);
    for target in targets {
        let a = send(&mut es, &mut er, target, true);
        let b = send(&mut ts, &mut tr, target, true);
        assert_eq!(a.status, b.status, "{target}: status");
        assert_eq!(a.body, b.body, "{target}: body bytes");
        // Headers agree apart from cache markers (each server has its
        // own cache; both should be MISS here, but don't couple to it).
        assert_eq!(
            a.header("content-type"),
            b.header("content-type"),
            "{target}: content type"
        );
        assert_eq!(
            a.header("transfer-encoding"),
            b.header("transfer-encoding"),
            "{target}: framing"
        );
    }
    event.shutdown();
    threaded.shutdown();
}

#[test]
fn open_loop_fleet_holds_idle_connections_through_the_event_server() {
    let mut config = event_config();
    config.max_connections = 4_096;
    config.idle_timeout = Duration::from_secs(30);
    let server = start(config, state()).expect("start");
    let plan = OpenLoopPlan {
        conns: 64,
        rate_per_sec: 200.0,
        duration: Duration::from_millis(600),
        timeout: Duration::from_secs(5),
    };
    let targets = vec!["/healthz".to_string(), "/query?x=12&y=34".to_string()];
    let report = run_open_loop(server.addr, &targets, &plan);
    assert_eq!(report.conns_open, 64, "whole fleet connects");
    assert_eq!(report.conns_alive, 64, "nothing reaped under the timeout");
    assert!(report.ok >= 60, "open loop completes requests: {report:?}");
    assert_eq!(report.errors, 0, "no transport errors: {report:?}");
    assert!(report.p99_us > 0);
    let peak = server
        .metrics()
        .open_peak
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(peak >= 64, "gauge saw the fleet (peak {peak})");
    server.shutdown();
}
