//! End-to-end tests for the scale-out router tier over real sockets:
//! a dead shard degrades the scatter to a partial result (flagged, not
//! hung), a slow shard is beaten by a hedged duplicate request, and a
//! shard restart behind the router's keep-alive pool is absorbed by the
//! stale-connection retry.

use ee_federation::ScatterConfig;
use ee_serve::http::read_response;
use ee_serve::{start, AppState, DataConfig, RouterTier, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shard_config(index: usize, count: usize) -> DataConfig {
    DataConfig {
        points: 600,
        products: 50,
        scene_size: 64,
        tile_size: 32,
        ice_size: 16,
        seed: 2019,
        shard: Some((index, count)),
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

/// Start a router process-in-miniature over `backends`, returning the
/// state too so tests can read the tier counters directly.
fn start_router(
    backends: &[SocketAddr],
    scatter: ScatterConfig,
) -> (ee_serve::ServerHandle, Arc<AppState>) {
    let mut state = AppState::build(DataConfig {
        points: 50,
        products: 20,
        scene_size: 64,
        tile_size: 32,
        ice_size: 16,
        seed: 2019,
        shard: None,
    });
    state.router = Some(RouterTier::new(backends, scatter));
    let state = Arc::new(state);
    let mut config = server_config();
    config.cache_capacity_per_shard = 0; // routers serve uncached
    let handle = start(config, Arc::clone(&state)).expect("start router");
    (handle, state)
}

fn get(addr: SocketAddr, target: &str) -> ee_serve::http::ClientResponse {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut r = BufReader::new(s.try_clone().expect("clone"));
    write!(
        s,
        "GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    s.flush().unwrap();
    read_response(&mut r).expect("response")
}

fn rows_target() -> String {
    let sparql = "PREFIX e: <http://e/> SELECT ?s ?g WHERE { ?s e:hasGeometry ?g }";
    format!("/query?limit=10000&sparql={}", sparql.replace(' ', "%20"))
}

/// An address nothing listens on: bind an ephemeral port, then drop the
/// listener so connects are refused immediately.
fn dead_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    l.local_addr().expect("addr")
}

#[test]
fn dead_shard_yields_flagged_partial_result() {
    let shard0 = start(server_config(), Arc::new(AppState::build(shard_config(0, 2))))
        .expect("start shard 0");
    let (router, state) = start_router(&[shard0.addr, dead_addr()], ScatterConfig::default());

    let resp = get(router.addr, &rows_target());
    assert_eq!(resp.status, 200, "one live shard still answers");
    assert_eq!(resp.header("x-ee-incomplete"), Some("1"));
    assert_eq!(resp.header("x-ee-shards"), Some("2"));
    let text = String::from_utf8(resp.body).unwrap();
    assert!(text.contains("\"incomplete\":true"), "{text}");
    let v = ee_util::json::parse(&text).expect("valid JSON");
    let rows = v.get("rows").and_then(ee_util::json::Json::as_arr).unwrap();
    assert!(
        !rows.is_empty() && rows.len() < 600,
        "a strict slice of the dataset: {} rows",
        rows.len()
    );

    let tier = state.router.as_ref().unwrap();
    assert_eq!(tier.partial_total(), 1);
    let metrics = String::from_utf8(get(router.addr, "/metrics").body).unwrap();
    assert!(metrics.contains("ee_route_partial_total 1"), "{metrics}");
    assert!(metrics.contains("ee_route_shard_latency_us"), "{metrics}");

    router.shutdown();
    shard0.shutdown();
}

#[test]
fn hedged_request_beats_a_slow_shard() {
    // Shard 0 sleeps 2 s on every second query execution: the warm-up
    // leaves its counter at 1, so the measured query's primary request
    // (2nd execution) is slow and the hedged duplicate (3rd) is fast.
    let mut slow_state = AppState::build(shard_config(0, 2));
    slow_state.slow_every = 2;
    slow_state.slow_ms = 2_000;
    let shard0 = start(server_config(), Arc::new(slow_state)).expect("start shard 0");
    let shard1 = start(server_config(), Arc::new(AppState::build(shard_config(1, 2))))
        .expect("start shard 1");
    let scatter = ScatterConfig {
        deadline: Duration::from_secs(8),
        hedge_after: Duration::from_millis(100),
    };
    let (router, state) = start_router(&[shard0.addr, shard1.addr], scatter);

    let count_target = format!(
        "/query?sparql={}",
        "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g }"
            .replace(' ', "%20")
    );
    let warmup = get(router.addr, &count_target);
    assert_eq!(warmup.status, 200);

    let t0 = Instant::now();
    let resp = get(router.addr, &rows_target());
    let elapsed = t0.elapsed();
    assert_eq!(
        resp.status,
        200,
        "{}",
        String::from_utf8_lossy(&resp.body)
    );
    assert_eq!(resp.header("x-ee-incomplete"), None, "hedge kept it complete");
    let text = String::from_utf8(resp.body).unwrap();
    assert!(!text.contains("incomplete"), "{text}");
    let v = ee_util::json::parse(&text).expect("valid JSON");
    let rows = v.get("rows").and_then(ee_util::json::Json::as_arr).unwrap();
    assert_eq!(rows.len(), 600, "both shards contributed");

    let tier = state.router.as_ref().unwrap();
    assert!(tier.hedged_total() >= 1, "a hedge was launched");
    assert_eq!(tier.partial_total(), 0);
    assert!(
        elapsed < Duration::from_millis(1_500),
        "the hedge answered well before the 2 s sleep: {elapsed:?}"
    );

    router.shutdown();
    shard0.shutdown();
    shard1.shutdown();
}

#[test]
fn router_absorbs_a_shard_restart_via_stale_conn_retry() {
    let state0 = Arc::new(AppState::build(shard_config(0, 1)));
    let shard0 = start(server_config(), Arc::clone(&state0)).expect("start shard 0");
    let shard_addr = shard0.addr;
    let (router, state) = start_router(&[shard_addr], ScatterConfig::default());

    // First query completes and leaves a pooled keep-alive connection
    // from router to shard.
    let first = get(router.addr, &rows_target());
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-ee-incomplete"), None);

    // Restart the shard on the same address: the pooled connection is
    // now stale. Rebinding can race the old listener's teardown, so
    // retry briefly.
    shard0.shutdown();
    let mut config = server_config();
    config.addr = shard_addr.to_string();
    let shard0b = (0..50)
        .find_map(|_| {
            std::thread::sleep(Duration::from_millis(20));
            start(config.clone(), Arc::clone(&state0)).ok()
        })
        .expect("rebind shard address");

    let second = get(router.addr, &rows_target());
    assert_eq!(second.status, 200, "router healthy across the restart");
    assert_eq!(second.header("x-ee-incomplete"), None);
    assert_eq!(second.body, first.body, "restarted shard serves identical bytes");
    let tier = state.router.as_ref().unwrap();
    assert_eq!(tier.retried_total(), 1, "the stale pooled conn was retried");

    router.shutdown();
    shard0b.shutdown();
}
