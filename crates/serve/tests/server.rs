//! End-to-end serving-tier tests over real localhost sockets: keep-alive
//! reuse, cache hit/miss, per-request deadlines, and 503 admission
//! shedding under overload — the behaviours E-s0 measures, asserted
//! functionally here.

use ee_serve::http::read_response;
use ee_serve::loadgen::{self, ConnMode, LoadPlan};
use ee_serve::{start, AppState, DataConfig, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One engine state shared by every test server (building it is the
/// expensive part; servers themselves are cheap).
fn state() -> Arc<AppState> {
    static STATE: OnceLock<Arc<AppState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| Arc::new(AppState::build(DataConfig::tiny()))))
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_watermark: 8,
        deadline: Duration::from_millis(1_500),
        idle_timeout: Duration::from_millis(2_000),
        debug_routes: true,
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let r = s.try_clone().expect("clone");
    (s, BufReader::new(r))
}

fn send(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    keep_alive: bool,
) -> ee_serve::http::ClientResponse {
    send_with(stream, reader, target, keep_alive, &[])
}

fn send_with(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> ee_serve::http::ClientResponse {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let extra: String = extra_headers
        .iter()
        .map(|(n, v)| format!("{n}: {v}\r\n"))
        .collect();
    // Tolerate write errors: a server that sheds the connection may close
    // it mid-write, and the interesting assertion is on the response (or
    // its absence), not the request bytes landing.
    let _ = write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: t\r\nconnection: {conn}\r\n{extra}\r\n"
    );
    let _ = stream.flush();
    read_response(reader).expect("response")
}

fn post(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    body: &[u8],
    keep_alive: bool,
) -> ee_serve::http::ClientResponse {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: t\r\nconnection: {conn}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body);
    let _ = stream.flush();
    read_response(reader).expect("response")
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = start(test_config(), state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    for i in 0..5 {
        let resp = send(&mut s, &mut r, "/healthz", true);
        assert_eq!(resp.status, 200, "request {i} on the same connection");
        assert!(resp.keep_alive);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"ok\":true"), "healthz body: {text}");
    }
    // A Connection: close request ends the conversation.
    let resp = send(&mut s, &mut r, "/healthz", false);
    assert_eq!(resp.status, 200);
    assert!(!resp.keep_alive);
    // Exactly one connection was admitted for all six requests.
    assert_eq!(
        server.metrics().admitted.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.shutdown();
}

#[test]
fn cache_misses_then_hits_with_canonicalised_keys() {
    let server = start(test_config(), state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let miss = send(&mut s, &mut r, "/query?x0=5&y0=5&side=10", true);
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("MISS"));

    let hit = send(&mut s, &mut r, "/query?x0=5&y0=5&side=10", true);
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-cache"), Some("HIT"));
    assert_eq!(hit.body, miss.body, "cached body identical");

    // Same parameters in a different order canonicalise to the same key.
    let reordered = send(&mut s, &mut r, "/query?side=10&y0=5&x0=5", true);
    assert_eq!(reordered.header("x-cache"), Some("HIT"));

    // A different request is its own entry.
    let other = send(&mut s, &mut r, "/tiles/0/0/0", true);
    assert_eq!(other.status, 200);
    assert_eq!(other.header("x-cache"), Some("MISS"));
    let other2 = send(&mut s, &mut r, "/tiles/0/0/0", true);
    assert_eq!(other2.header("x-cache"), Some("HIT"));

    // /healthz is uncacheable: no x-cache header at all.
    let h = send(&mut s, &mut r, "/healthz", true);
    assert_eq!(h.header("x-cache"), None);

    assert!(server.cache().hits() >= 3);
    server.shutdown();
}

#[test]
fn slow_handler_times_out_with_504() {
    let mut config = test_config();
    config.deadline = Duration::from_millis(120);
    let server = start(config, state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    // Well under the deadline: fine.
    let ok = send(&mut s, &mut r, "/debug/sleep?ms=10", true);
    assert_eq!(ok.status, 200);
    // Sleeps far past the deadline: the handler notices and aborts.
    let slow = send(&mut s, &mut r, "/debug/sleep?ms=5000", true);
    assert_eq!(slow.status, 504, "deadline exceeded mid-handler");
    assert_eq!(
        server
            .metrics()
            .deadline_expired
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    // One worker, tiny queue, and handlers pinned slow so the queue
    // genuinely backs up.
    let mut config = test_config();
    config.workers = 1;
    config.queue_watermark = 2;
    config.deadline = Duration::from_secs(5);
    let server = start(config, state()).expect("start");
    let addr = server.addr;

    // Fill the worker and the queue with slow requests on separate
    // connections, without waiting for responses.
    let mut held = Vec::new();
    for _ in 0..4 {
        let (mut s, r) = connect(addr);
        // Shed connections may close before the bytes land; keep going.
        let _ = write!(
            s,
            "GET /debug/sleep?ms=1500 HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
        );
        let _ = s.flush();
        held.push((s, r));
        // Give the acceptor time to enqueue before the next connect.
        std::thread::sleep(Duration::from_millis(50));
    }

    // Queue is now at the watermark: fresh connections are rejected
    // immediately with 503 + Retry-After.
    let (mut s, mut r) = connect(addr);
    let resp = send(&mut s, &mut r, "/healthz", false);
    assert_eq!(resp.status, 503, "watermark rejects new connections");
    assert_eq!(resp.header("retry-after"), Some("1"));

    // The admitted requests still complete; with 1 worker + queue of 2,
    // the last held connection may itself have been 503-shed.
    let mut completed = 0;
    for (_s, mut r) in held {
        if let Ok(resp) = read_response(&mut r) {
            assert!(
                resp.status == 200 || resp.status == 504 || resp.status == 503,
                "unexpected status {}",
                resp.status
            );
            if resp.status != 503 {
                completed += 1;
            }
        }
    }
    assert!(completed >= 3, "admitted work drains, got {completed}");
    assert!(
        server
            .metrics()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

#[test]
fn loadgen_drives_all_routes_and_metrics_report() {
    let server = start(test_config(), state()).expect("start");
    let targets: Vec<String> = vec![
        "/query?x0=5&y0=5&side=10".into(),
        "/catalogue/search?minx=10&miny=10&maxx=14&maxy=14".into(),
        "/tiles/1/0/0".into(),
        "/ice/fram-strait".into(),
    ];
    let report = loadgen::run(
        server.addr,
        &targets,
        &LoadPlan {
            clients: 4,
            requests_per_client: 20,
            mode: ConnMode::KeepAlive,
            timeout: Duration::from_secs(10),
        },
    );
    assert_eq!(report.ok, 80, "all requests succeed: {report:?}");
    assert_eq!(report.errors, 0);
    assert!(report.cache_hits > 0, "repeats hit the cache");
    assert!(report.p50_us > 0 && report.p50_us <= report.p99_us);
    assert!(report.throughput() > 0.0);

    // The Prometheus endpoint reflects the traffic.
    let (mut s, mut r) = connect(server.addr);
    let m = send(&mut s, &mut r, "/metrics", false);
    assert_eq!(m.status, 200);
    let text = String::from_utf8(m.body).unwrap();
    assert!(text.contains("ee_serve_requests_total"), "{text}");
    assert!(text.contains("ee_serve_cache_hits_total"));
    assert!(text.contains("route=\"query\""));
    server.shutdown();
}

#[test]
fn post_query_roundtrips_sparql_and_rejects_malformed_bodies() {
    let server = start(test_config(), state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let sparql = "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) \
                  WHERE { ?s e:hasGeometry ?g }";
    let resp = post(&mut s, &mut r, "/query", sparql.as_bytes(), true);
    assert_eq!(resp.status, 200, "POSTed SPARQL executes");
    let text = String::from_utf8(resp.body.clone()).unwrap();
    assert!(text.contains("\"vars\""), "solution JSON: {text}");
    assert!(text.contains("\"count\""), "solution JSON: {text}");

    // The same query again (same connection, different whitespace) rides
    // the prepared-plan cache and answers identically.
    let respaced = sparql.replace(' ', "  ");
    let again = post(&mut s, &mut r, "/query", respaced.as_bytes(), true);
    assert_eq!(again.status, 200);
    assert_eq!(again.body, resp.body, "plan reuse changes nothing");

    // Malformed SPARQL body → 400 with a parse message, not a 500.
    let bad = post(&mut s, &mut r, "/query", b"SELECT WHERE garbage {", true);
    assert_eq!(bad.status, 400, "malformed body is a client error");

    // Invalid UTF-8 body → 400 as well.
    let binary = post(&mut s, &mut r, "/query", &[0xff, 0xfe, 0x80], true);
    assert_eq!(binary.status, 400);

    // POST on any other route stays 405.
    let nope = post(&mut s, &mut r, "/healthz", b"", true);
    assert_eq!(nope.status, 405);

    // /metrics shows the plan cache working.
    let m = send(&mut s, &mut r, "/metrics", false);
    let text = String::from_utf8(m.body).unwrap();
    assert!(text.contains("ee_serve_plan_cache_hits_total"), "{text}");
    server.shutdown();
}

#[test]
fn conditional_tile_requests_return_304_on_matching_etag() {
    let server = start(test_config(), state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let first = send(&mut s, &mut r, "/tiles/0/0/0", true);
    assert_eq!(first.status, 200);
    let etag = first.header("etag").expect("tile carries etag").to_string();
    assert!(!first.body.is_empty());

    // Revalidate with the tag: 304, empty body — and the response came
    // from the cache (headers, including etag, were replayed).
    let revalidated = send_with(
        &mut s,
        &mut r,
        "/tiles/0/0/0",
        true,
        &[("if-none-match", &etag)],
    );
    assert_eq!(revalidated.status, 304, "matching tag elides the body");
    assert!(revalidated.body.is_empty());

    // A stale tag gets the full body again.
    let stale = send_with(
        &mut s,
        &mut r,
        "/tiles/0/0/0",
        true,
        &[("if-none-match", "\"0000000000000000\"")],
    );
    assert_eq!(stale.status, 200);
    assert_eq!(stale.body, first.body);
    assert_eq!(stale.header("etag"), Some(etag.as_str()), "cache hit keeps etag");

    // The 304s are counted.
    let m = send(&mut s, &mut r, "/metrics", false);
    let text = String::from_utf8(m.body).unwrap();
    assert!(text.contains("ee_serve_not_modified_total 1"), "{text}");
    server.shutdown();
}

#[test]
fn malformed_requests_get_400_not_a_hang() {
    let server = start(test_config(), state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    s.write_all(b"NONSENSE\r\n\r\n").unwrap();
    s.flush().unwrap();
    let resp = read_response(&mut r).expect("error response");
    assert_eq!(resp.status, 400);
    server.shutdown();
}
