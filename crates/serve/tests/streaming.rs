//! End-to-end tests for the streaming response path: a tile bigger than
//! the old 1 MiB response cap arrives chunked and byte-identical to the
//! one-shot codec encoder, `/query` streams its solution JSON, oversized
//! streams bypass the cache, a deadline expiring mid-stream aborts the
//! chunked body instead of blocking a worker, a client draining the
//! chunked `/query` body a few bytes at a time (backpressuring the
//! executor) receives identical rows, and a client disconnecting
//! mid-stream leaves the server healthy for the next connection.

use ee_serve::http::read_response;
use ee_serve::{start, AppState, DataConfig, ServerConfig};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A state whose level-0 tile is deliberately larger than 1 MiB: a
/// 520×520 f32 window encodes (noise → raw payload) to
/// 40 + 520·520·4 = 1,081,640 bytes. The old serving tier could not
/// answer this at all — its response buffer was capped at 1 MiB.
fn big_tile_state() -> Arc<AppState> {
    static STATE: OnceLock<Arc<AppState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| {
        Arc::new(AppState::build(DataConfig {
            points: 500,
            products: 100,
            scene_size: 520,
            tile_size: 520,
            ice_size: 32,
            seed: 2019,
            shard: None,
        }))
    }))
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_watermark: 8,
        deadline: Duration::from_millis(5_000),
        idle_timeout: Duration::from_millis(2_000),
        debug_routes: true,
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let r = s.try_clone().expect("clone");
    (s, BufReader::new(r))
}

fn send(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
    keep_alive: bool,
) -> ee_serve::http::ClientResponse {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: t\r\nconnection: {conn}\r\n\r\n"
    );
    let _ = stream.flush();
    read_response(reader).expect("response")
}

#[test]
fn large_tile_streams_chunked_and_matches_the_one_shot_encoder() {
    let server = start(test_config(), big_tile_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let resp = send(&mut s, &mut r, "/tiles/0/0/0", true);
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "large tiles stream"
    );
    assert_eq!(resp.header("content-length"), None);
    assert!(
        resp.body.len() > 1024 * 1024,
        "past the old 1 MiB cap: {} bytes",
        resp.body.len()
    );

    // Byte identity with the one-shot encoder: decoding and re-encoding
    // must reproduce the wire bytes exactly (the codec is deterministic,
    // so this holds iff the chunked stream concatenates to `encode`).
    let tile: ee_raster::Raster<f32> = ee_raster::codec::decode(&resp.body).expect("decodes");
    assert_eq!(tile.shape(), (520, 520));
    assert_eq!(
        ee_raster::codec::encode(&tile),
        resp.body,
        "chunk concatenation is byte-identical to codec::encode"
    );

    // The body is over the cache's per-entry cap (256 KiB default): the
    // stream bypassed the cache, so a repeat is another MISS and the
    // bypass is counted.
    assert_eq!(resp.header("x-cache"), Some("MISS"));
    let again = send(&mut s, &mut r, "/tiles/0/0/0", true);
    assert_eq!(again.header("x-cache"), Some("MISS"), "oversized → uncached");
    assert_eq!(again.body, resp.body);

    let m = send(&mut s, &mut r, "/metrics", false);
    let text = String::from_utf8(m.body).unwrap();
    assert!(
        text.contains("ee_serve_stream_uncacheable_total 2"),
        "{text}"
    );
    assert!(text.contains("ee_serve_bytes_sent_total"), "{text}");
    assert!(text.contains("ee_serve_ttfb_us"), "{text}");
    server.shutdown();
}

#[test]
fn small_streamed_responses_are_teed_into_the_cache() {
    // Raise the per-entry cap above the tile size: the same stream now
    // tees into the cache and replays as a full-body HIT.
    let mut config = test_config();
    config.cache_max_body_bytes = 2 * 1024 * 1024;
    let server = start(config, big_tile_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let miss = send(&mut s, &mut r, "/tiles/1/0/0", true);
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("MISS"));
    assert_eq!(miss.header("transfer-encoding"), Some("chunked"));

    let hit = send(&mut s, &mut r, "/tiles/1/0/0", true);
    assert_eq!(hit.header("x-cache"), Some("HIT"));
    // Replays are full bodies (the tee stored the assembled bytes).
    assert_eq!(hit.header("transfer-encoding"), None);
    assert!(hit.header("content-length").is_some());
    assert_eq!(hit.body, miss.body, "teed replay is byte-identical");

    // Conditional revalidation still works against the teed entry.
    let etag = miss.header("etag").expect("etag").to_string();
    let conn = "keep-alive";
    let _ = write!(
        s,
        "GET /tiles/1/0/0 HTTP/1.1\r\nhost: t\r\nconnection: {conn}\r\nif-none-match: {etag}\r\n\r\n"
    );
    let _ = s.flush();
    let revalidated = read_response(&mut r).expect("response");
    assert_eq!(revalidated.status, 304);
    assert!(revalidated.body.is_empty());
    server.shutdown();
}

#[test]
fn query_streams_solution_json() {
    let server = start(test_config(), big_tile_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let resp = send(&mut s, &mut r, "/query?x0=0&y0=0&side=100&limit=50", true);
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "query bodies stream batch by batch"
    );
    let text = String::from_utf8(resp.body).unwrap();
    let v = ee_util::json::parse(&text).expect("valid JSON from chunks");
    let rows = v.get("rows").and_then(ee_util::json::Json::as_arr).unwrap();
    let count = v.get("count").and_then(ee_util::json::Json::as_f64).unwrap();
    assert!(!rows.is_empty());
    assert!(
        count >= rows.len() as f64,
        "count spans all rows, rows are capped by limit"
    );
    server.shutdown();
}

/// A state with enough point features that a full non-aggregate SELECT
/// streams through many chunked batches (several hundred KB of JSON),
/// so slow-drain and mid-stream-disconnect behaviour is observable.
fn many_rows_state() -> Arc<AppState> {
    static STATE: OnceLock<Arc<AppState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| {
        Arc::new(AppState::build(DataConfig {
            points: 8_000,
            products: 50,
            scene_size: 64,
            tile_size: 32,
            ice_size: 16,
            seed: 7,
            shard: None,
        }))
    }))
}

/// `/query` target streaming every feature's geometry binding.
fn all_features_target() -> String {
    let sparql = "PREFIX e: <http://e/> SELECT ?s ?g WHERE { ?s e:hasGeometry ?g }";
    format!("/query?limit=10000&sparql={}", sparql.replace(' ', "%20"))
}

#[test]
fn slow_reader_draining_bytes_at_a_time_gets_identical_rows() {
    let mut config = test_config();
    config.write_timeout = Duration::from_secs(30);
    config.deadline = Duration::from_secs(30);
    let server = start(config, many_rows_state()).expect("start");

    // Fast baseline client.
    let (mut s, mut r) = connect(server.addr);
    let fast = send(&mut s, &mut r, &all_features_target(), false);
    assert_eq!(fast.status, 200);
    assert_eq!(fast.header("transfer-encoding"), Some("chunked"));

    // Slow client: tiny reads straight off the socket with periodic
    // stalls, so the server's chunk writes back up against the send
    // buffer and the pull-based executor pauses between batches.
    let mut slow_sock = TcpStream::connect(server.addr).expect("connect");
    slow_sock
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        slow_sock,
        "GET {} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        all_features_target()
    )
    .unwrap();
    slow_sock.flush().unwrap();
    let mut raw = Vec::new();
    let mut buf = [0u8; 31];
    loop {
        match slow_sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if raw.len() % 8192 < 31 {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            Err(e) => panic!("slow read failed after {} bytes: {e}", raw.len()),
        }
    }
    let slow = read_response(&mut raw.as_slice()).expect("parse accumulated response");
    assert_eq!(slow.status, 200);
    assert_eq!(slow.body, fast.body, "slow drain is byte-identical");

    let text = String::from_utf8(slow.body).unwrap();
    let v = ee_util::json::parse(&text).expect("valid JSON");
    let rows = v.get("rows").and_then(ee_util::json::Json::as_arr).unwrap();
    assert_eq!(rows.len(), 8_000, "every feature row arrived");
    server.shutdown();
}

#[test]
fn client_disconnect_mid_stream_leaves_server_healthy() {
    let server = start(test_config(), many_rows_state()).expect("start");

    // Start a large streamed query, read only the first few hundred
    // bytes, then vanish. The server's next chunk write fails instead of
    // wedging the worker.
    let mut s = TcpStream::connect(server.addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "GET {} HTTP/1.1\r\nhost: t\r\nconnection: keep-alive\r\n\r\n",
        all_features_target()
    )
    .unwrap();
    s.flush().unwrap();
    let mut partial = [0u8; 512];
    let mut seen = 0usize;
    while seen < partial.len() {
        match s.read(&mut partial[seen..]) {
            Ok(0) => break,
            Ok(n) => seen += n,
            Err(_) => break,
        }
    }
    assert!(
        partial[..seen].starts_with(b"HTTP/1.1 200"),
        "stream started before the disconnect"
    );
    drop(s);

    // The server stays healthy: a fresh keep-alive connection is served
    // repeatedly, including another full streamed query.
    let (mut s2, mut r2) = connect(server.addr);
    for i in 0..3 {
        let ok = send(&mut s2, &mut r2, "/healthz", true);
        assert_eq!(ok.status, 200, "healthz {i} after disconnect");
    }
    let full = send(&mut s2, &mut r2, &all_features_target(), false);
    assert_eq!(full.status, 200);
    let text = String::from_utf8(full.body).unwrap();
    let v = ee_util::json::parse(&text).expect("valid JSON");
    let rows = v.get("rows").and_then(ee_util::json::Json::as_arr).unwrap();
    assert_eq!(rows.len(), 8_000);
    server.shutdown();
}

#[test]
fn deadline_expiring_mid_stream_aborts_the_chunked_body() {
    let mut config = test_config();
    config.deadline = Duration::from_millis(400);
    let server = start(config, big_tile_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    // 30 chunks × 100 ms ≫ the 400 ms deadline: the stream starts (200,
    // chunked) but is cut between chunks, so the chunked body never
    // terminates and the client read fails instead of hanging forever.
    let _ = write!(
        s,
        "GET /debug/stream?chunks=30&bytes=64&ms=100 HTTP/1.1\r\nhost: t\r\nconnection: keep-alive\r\n\r\n"
    );
    let _ = s.flush();
    assert!(
        read_response(&mut r).is_err(),
        "mid-stream abort truncates the response"
    );
    assert_eq!(
        server
            .metrics()
            .deadline_expired
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the abort is accounted as a deadline expiry"
    );

    // The worker is free again: a fresh connection is served normally.
    let (mut s2, mut r2) = connect(server.addr);
    let ok = send(&mut s2, &mut r2, "/healthz", false);
    assert_eq!(ok.status, 200);
    server.shutdown();
}
