//! End-to-end write-path tests over real localhost sockets: `POST
//! /update` authorisation and error handling, write-then-read
//! visibility, commit-stamped response-cache invalidation (an entry
//! cached under commit C never serves after C′, including the
//! refresh-after-write race), ranked-catalogue cache freshness after a
//! `searchText` write, pinned versioned (`?asOf=`) reads surviving
//! commits, and the always-live `/healthz` + `/metrics` bypass.

use ee_serve::http::read_response;
use ee_serve::{start, AppState, DataConfig, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A writable state per test server: the write path mutates the store,
/// so unlike the read-only suites nothing is shared across tests.
fn writable_state() -> Arc<AppState> {
    let mut s = AppState::build(DataConfig::tiny());
    s.writable = true;
    Arc::new(s)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_watermark: 8,
        deadline: Duration::from_millis(5_000),
        idle_timeout: Duration::from_millis(2_000),
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let r = s.try_clone().expect("clone");
    (s, BufReader::new(r))
}

fn get(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
) -> ee_serve::http::ClientResponse {
    let _ = write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: t\r\nconnection: keep-alive\r\n\r\n"
    );
    let _ = stream.flush();
    read_response(reader).expect("response")
}

fn post_update(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    body: &str,
) -> ee_serve::http::ClientResponse {
    let _ = write!(
        stream,
        "POST /update HTTP/1.1\r\nhost: t\r\nconnection: keep-alive\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    read_response(reader).expect("response")
}

fn json_of(resp: &ee_serve::http::ClientResponse) -> ee_util::json::Json {
    ee_util::json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("json body")
}

#[test]
fn update_is_403_without_writable_and_400_on_bad_syntax() {
    // Default state: read-only.
    let server = start(test_config(), Arc::new(AppState::build(DataConfig::tiny())))
        .expect("start");
    let (mut s, mut r) = connect(server.addr);
    let resp = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/a> <http://e/p> <http://e/o> }",
    );
    assert_eq!(resp.status, 403);
    server.shutdown();

    // Writable state: parse errors are 400, valid text commits.
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    assert_eq!(post_update(&mut s, &mut r, "CLEAR GRAPH <g>").status, 400);
    let ok = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/a> <http://e/p> <http://e/o> }",
    );
    assert_eq!(ok.status, 200);
    let v = json_of(&ok);
    assert_eq!(v.get("generation").and_then(ee_util::json::Json::as_f64), Some(1.0));
    assert_eq!(v.get("inserted").and_then(ee_util::json::Json::as_f64), Some(1.0));
    server.shutdown();
}

#[test]
fn committed_writes_invalidate_cached_queries() {
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    // Count triples about a marker subject: 0 before the write.
    let q = "/query?sparql=SELECT%20?o%20WHERE%20{%20<http://e/marker>%20<http://e/p>%20?o%20}";
    let miss = get(&mut s, &mut r, q);
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("MISS"));
    let count = |resp: &ee_serve::http::ClientResponse| {
        json_of(resp)
            .get("count")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap()
    };
    assert_eq!(count(&miss), 0.0);
    let hit = get(&mut s, &mut r, q);
    assert_eq!(hit.header("x-cache"), Some("HIT"));

    // Commit a write touching the queried subject.
    let upd = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/marker> <http://e/p> <http://e/one> }",
    );
    assert_eq!(upd.status, 200);

    // The very next read misses the cache (generation-stamped key) and
    // sees the new triple — an entry stored under generation G never
    // serves after G+1.
    let after = get(&mut s, &mut r, q);
    assert_eq!(after.header("x-cache"), Some("MISS"), "stale entry must not serve");
    assert_eq!(count(&after), 1.0);
    // And the fresh result caches again under the new generation.
    let again = get(&mut s, &mut r, q);
    assert_eq!(again.header("x-cache"), Some("HIT"));
    assert_eq!(count(&again), 1.0);

    // ETags rolled with the generation, so revalidation with the stale
    // tag refetches instead of 304ing.
    let stale_tag = miss.header("etag").expect("query etag").to_string();
    let fresh_tag = after.header("etag").expect("query etag");
    assert_ne!(stale_tag, fresh_tag);
    server.shutdown();
}

#[test]
fn refresh_after_write_race_never_resurrects_stale_entries() {
    // The race: a cacheable read starts under generation G, a commit
    // moves the store to G+1 while the response is in flight, and the
    // read's tee inserts its (stale) entry afterwards. The entry lands
    // under the G-stamped key, so post-commit lookups (G+1 keys) can
    // never return it. Interleave reads and writes on one keep-alive
    // connection and assert every read reflects all prior commits.
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    let q = "/query?sparql=SELECT%20?o%20WHERE%20{%20<http://e/race>%20<http://e/p>%20?o%20}";
    for round in 1..=4u32 {
        let upd = post_update(
            &mut s,
            &mut r,
            &format!("INSERT DATA {{ <http://e/race> <http://e/p> <http://e/o{round}> }}"),
        );
        assert_eq!(upd.status, 200);
        let read = get(&mut s, &mut r, q);
        assert_eq!(read.status, 200);
        assert_eq!(
            read.header("x-cache"),
            Some("MISS"),
            "round {round}: the commit must have rolled the cache key"
        );
        let n = json_of(&read)
            .get("count")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap();
        assert_eq!(n, f64::from(round), "round {round}: reads see all commits");
        // The re-cached entry serves until the next write.
        assert_eq!(get(&mut s, &mut r, q).header("x-cache"), Some("HIT"));
    }
    server.shutdown();
}

#[test]
fn committed_search_text_is_ranked_searchable_over_the_socket() {
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    let q = "/catalogue/search?mode=ranked&q=cryoconite&k=5";

    // Nothing matches the marker term before the write.
    let before = get(&mut s, &mut r, q);
    assert_eq!(before.status, 200);
    let count_of = |resp: &ee_serve::http::ClientResponse| {
        json_of(resp)
            .get("count")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap()
    };
    let indexed_of = |resp: &ee_serve::http::ClientResponse| {
        json_of(resp)
            .get("indexed")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap()
    };
    assert_eq!(count_of(&before), 0.0);
    let baseline_indexed = indexed_of(&before);

    // Commit an eo:searchText annotation; the BM25 index must track the
    // write inside the same commit, so the very next ranked search on
    // the same connection sees it.
    let upd = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/doc1> \
         <http://extremeearth.eu/ont/eo#searchText> \
         \"glacier cryoconite melt survey\" }",
    );
    assert_eq!(upd.status, 200);

    let after = get(&mut s, &mut r, q);
    assert_eq!(after.status, 200);
    assert_eq!(count_of(&after), 1.0, "live document ranks for its term");
    assert_eq!(indexed_of(&after), baseline_indexed + 1.0);
    let hit = json_of(&after)
        .get("results")
        .and_then(ee_util::json::Json::as_arr)
        .and_then(<[ee_util::json::Json]>::first)
        .and_then(|h| h.get("document"))
        .cloned()
        .expect("live hit carries a document object");
    assert_eq!(
        hit.get("subject").and_then(ee_util::json::Json::as_str),
        Some("http://e/doc1")
    );

    // Deleting the annotation removes it from the ranked index too.
    let del = post_update(
        &mut s,
        &mut r,
        "DELETE DATA { <http://e/doc1> \
         <http://extremeearth.eu/ont/eo#searchText> \
         \"glacier cryoconite melt survey\" }",
    );
    assert_eq!(del.status, 200);
    let gone = get(&mut s, &mut r, q);
    assert_eq!(count_of(&gone), 0.0, "deleted document stops ranking");
    assert_eq!(indexed_of(&gone), baseline_indexed);

    // Seed catalogue products still rank: the live docs ride alongside.
    let seed = get(&mut s, &mut r, "/catalogue/search?mode=ranked&q=radar&k=3");
    assert_eq!(seed.status, 200);
    assert!(count_of(&seed) >= 1.0);
    server.shutdown();
}

#[test]
fn ranked_catalogue_never_serves_stale_hits_after_a_write() {
    // The regression: catalogue responses used to sit on TTL freshness
    // only, so a committed `eo:searchText` write could keep serving the
    // pre-commit ranking out of the response cache until expiry. Keys
    // now carry the BM25 index generation, so the very next ranked
    // search after the write must miss the cache and see the new doc.
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);
    let q = "/catalogue/search?mode=ranked&q=firnline&k=5";
    let count_of = |resp: &ee_serve::http::ClientResponse| {
        json_of(resp)
            .get("count")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap()
    };

    // Prime the cache with the empty ranking and prove it serves hits.
    let before = get(&mut s, &mut r, q);
    assert_eq!(before.status, 200);
    assert_eq!(before.header("x-cache"), Some("MISS"));
    assert_eq!(count_of(&before), 0.0);
    assert_eq!(get(&mut s, &mut r, q).header("x-cache"), Some("HIT"));

    let upd = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/doc2> \
         <http://extremeearth.eu/ont/eo#searchText> \
         \"firnline retreat mapping\" }",
    );
    assert_eq!(upd.status, 200);

    // The cached empty ranking must be unreachable now.
    let after = get(&mut s, &mut r, q);
    assert_eq!(
        after.header("x-cache"),
        Some("MISS"),
        "the searchText commit must roll the catalogue cache key"
    );
    assert_eq!(count_of(&after), 1.0, "fresh ranking sees the committed doc");
    // And the fresh ranking caches again under the new index generation.
    let again = get(&mut s, &mut r, q);
    assert_eq!(again.header("x-cache"), Some("HIT"));
    assert_eq!(count_of(&again), 1.0);
    server.shutdown();
}

#[test]
fn versioned_reads_survive_commits_and_revalidate_as_304() {
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    // Commit a marker triple and capture the resulting commit id.
    let upd = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/vm> <http://e/p> <http://e/v1> }",
    );
    assert_eq!(upd.status, 200);
    let h = get(&mut s, &mut r, "/healthz");
    let c1 = json_of(&h)
        .get("commit")
        .and_then(ee_util::json::Json::as_str)
        .expect("healthz reports the head commit id")
        .to_string();

    let q = "SELECT ?o WHERE { <http://e/vm> <http://e/p> ?o }".replace(' ', "%20");
    let pinned_target = format!("/query?sparql={q}&asOf={c1}");
    let head_target = format!("/query?sparql={q}");

    let miss = get(&mut s, &mut r, &pinned_target);
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("MISS"));
    assert_eq!(miss.header("x-commit"), Some(c1.as_str()));
    let tag = miss.header("etag").expect("versioned etag").to_string();
    assert_eq!(get(&mut s, &mut r, &pinned_target).header("x-cache"), Some("HIT"));
    // Prime the head entry too, for contrast after the write.
    get(&mut s, &mut r, &head_target);
    assert_eq!(get(&mut s, &mut r, &head_target).header("x-cache"), Some("HIT"));

    // A new commit sweeps head entries but must leave the pinned
    // versioned entry alone: its commit id names immutable history.
    let upd = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/vm> <http://e/p> <http://e/v2> }",
    );
    assert_eq!(upd.status, 200);
    let pinned_after = get(&mut s, &mut r, &pinned_target);
    assert_eq!(
        pinned_after.header("x-cache"),
        Some("HIT"),
        "versioned entries are pinned across commits"
    );
    let n = json_of(&pinned_after)
        .get("count")
        .and_then(ee_util::json::Json::as_f64)
        .unwrap();
    assert_eq!(n, 1.0, "the pinned view still shows one value");
    assert_eq!(
        get(&mut s, &mut r, &head_target).header("x-cache"),
        Some("MISS"),
        "head entries are swept on commit"
    );

    // Conditional revalidation against the unchanged commit id: 304,
    // empty body, same tag.
    let _ = write!(
        s,
        "GET {pinned_target} HTTP/1.1\r\nhost: t\r\nconnection: keep-alive\r\n\
         if-none-match: {tag}\r\n\r\n"
    );
    let _ = s.flush();
    let cond = read_response(&mut r).expect("response");
    assert_eq!(cond.status, 304);
    assert!(cond.body.is_empty(), "304 elides the body");
    server.shutdown();
}

#[test]
fn healthz_and_metrics_bypass_the_cache_and_track_the_generation() {
    let server = start(test_config(), writable_state()).expect("start");
    let (mut s, mut r) = connect(server.addr);

    let h0 = get(&mut s, &mut r, "/healthz");
    assert_eq!(h0.header("x-cache"), None, "healthz is never cached");
    let gen_of = |resp: &ee_serve::http::ClientResponse| {
        json_of(resp)
            .get("generation")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap()
    };
    let points_of = |resp: &ee_serve::http::ClientResponse| {
        json_of(resp)
            .get("points")
            .and_then(ee_util::json::Json::as_f64)
            .unwrap()
    };
    assert_eq!(gen_of(&h0), 0.0);

    let upd = post_update(
        &mut s,
        &mut r,
        "INSERT DATA { <http://e/h> <http://e/p> <http://e/o> }",
    );
    assert_eq!(upd.status, 200);

    // Same requests immediately after the write: live values, no cache.
    let h1 = get(&mut s, &mut r, "/healthz");
    assert_eq!(h1.header("x-cache"), None);
    assert_eq!(gen_of(&h1), 1.0, "healthz reports the live generation");
    assert_eq!(points_of(&h1), points_of(&h0) + 1.0);

    let m = get(&mut s, &mut r, "/metrics");
    assert_eq!(m.header("x-cache"), None, "metrics is never cached");
    let text = String::from_utf8(m.body).unwrap();
    assert!(text.contains("ee_rdf_generation 1"), "live generation gauge");
    assert!(
        text.contains("ee_serve_update_commit_us_count{op=\"commit\"} 1"),
        "commit latency recorded"
    );
    assert!(text.contains("ee_serve_invalidated_total{kind=\"responses\"}"));
    assert!(
        text.contains("ee_serve_route_requests_total{route=\"update\"} 1"),
        "update has its own route metrics"
    );
    server.shutdown();
}
