#![warn(missing_docs)]
//! Sextant-analogue: visualising rasters and linked geospatial data
//! (Challenge C3, ref \[5\]).
//!
//! Sextant is the TELEIOS/LEO stack's tool for "visualizing time-evolving
//! linked geospatial data". This crate renders the workspace's products
//! to standalone SVG documents:
//!
//! * [`palette`] — categorical palettes for the land-cover and sea-ice
//!   taxonomies, and a continuous blue ramp for water-fraction maps;
//! * [`svg`] — the renderer: categorical rasters as run-length-merged
//!   cell rows, continuous rasters as graded cells, vector features as
//!   polygon outlines, and WKT results of GeoSPARQL queries straight onto
//!   the map — plus layering and a legend, Sextant's core workflow.

pub mod palette;
pub mod svg;

pub use svg::{MapBuilder, Style};

/// Errors from rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum RenderError {
    /// The map has no layers / empty extent.
    EmptyMap,
    /// A layer's georeferencing does not overlap the map extent.
    DisjointLayer(String),
    /// WKT in a query result failed to parse.
    BadGeometry(String),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::EmptyMap => write!(f, "map has no content"),
            RenderError::DisjointLayer(name) => write!(f, "layer {name:?} outside map extent"),
            RenderError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
        }
    }
}

impl std::error::Error for RenderError {}
