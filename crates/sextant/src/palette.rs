//! Colour palettes for the workspace's taxonomies.

/// An RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    /// CSS hex form (`#rrggbb`).
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }
}

/// Colours for the 10 land-cover classes, in `LandClass::ALL` order
/// (wheat, maize, rapeseed, sugar beet, grassland, forest, water, urban,
/// bare soil, wetland).
pub const LAND_COVER: [Rgb; 10] = [
    Rgb(0xe6, 0xc8, 0x4b), // wheat — straw
    Rgb(0xf0, 0xa0, 0x30), // maize — orange
    Rgb(0xf5, 0xe6, 0x42), // rapeseed — bright yellow
    Rgb(0x8f, 0xbf, 0x4f), // sugar beet — light green
    Rgb(0x52, 0xa3, 0x52), // grassland — green
    Rgb(0x1c, 0x66, 0x2e), // forest — dark green
    Rgb(0x2d, 0x6d, 0xc9), // water — blue
    Rgb(0x9a, 0x9a, 0x9a), // urban — grey
    Rgb(0xb0, 0x8a, 0x5e), // bare soil — brown
    Rgb(0x46, 0xb0, 0xa5), // wetland — teal
];

/// Colours for the 5 WMO sea-ice classes, in `IceClass::ALL` order
/// (open water, new ice, young ice, first-year, multi-year).
pub const SEA_ICE: [Rgb; 5] = [
    Rgb(0x0b, 0x3d, 0x6e), // open water — deep blue
    Rgb(0x7f, 0xb2, 0xd9), // new ice — pale blue
    Rgb(0xb5, 0xd4, 0xe8), // young ice — lighter
    Rgb(0xe4, 0xee, 0xf5), // first-year — near white
    Rgb(0xff, 0xff, 0xff), // multi-year — white
];

/// Continuous blue ramp for a 0..1 fraction (water availability,
/// concentration): dry/low = sandy, wet/high = deep blue.
pub fn fraction_ramp(v: f32) -> Rgb {
    let t = v.clamp(0.0, 1.0);
    let lerp = |a: u8, b: u8| (a as f32 + (b as f32 - a as f32) * t).round() as u8;
    Rgb(lerp(0xd9, 0x0d), lerp(0xc2, 0x4a), lerp(0x8a, 0x8f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formatting() {
        assert_eq!(Rgb(255, 0, 16).hex(), "#ff0010");
        assert_eq!(Rgb(0, 0, 0).hex(), "#000000");
    }

    #[test]
    fn palettes_have_taxonomy_cardinalities() {
        assert_eq!(LAND_COVER.len(), 10);
        assert_eq!(SEA_ICE.len(), 5);
        // All land-cover colours are distinct.
        for (i, a) in LAND_COVER.iter().enumerate() {
            for (j, b) in LAND_COVER.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "classes {i} and {j} share a colour");
            }
        }
    }

    #[test]
    fn ramp_endpoints_and_monotone_blue() {
        let dry = fraction_ramp(0.0);
        let wet = fraction_ramp(1.0);
        assert_eq!(dry, Rgb(0xd9, 0xc2, 0x8a));
        assert_eq!(wet, Rgb(0x0d, 0x4a, 0x8f));
        // Red channel decreases with wetness.
        let mid = fraction_ramp(0.5);
        assert!(dry.0 > mid.0 && mid.0 > wet.0);
        // Out-of-range clamps.
        assert_eq!(fraction_ramp(-1.0), dry);
        assert_eq!(fraction_ramp(2.0), wet);
    }
}
