//! The SVG map renderer.
//!
//! A [`MapBuilder`] collects layers in world coordinates and renders one
//! SVG document: world y grows north/up, SVG y grows down, so the builder
//! owns the flip. Categorical raster rows are run-length merged so a
//! 128×128 class map emits a few hundred rects, not 16k.

use crate::palette::{fraction_ramp, Rgb};
use crate::RenderError;
use ee_geo::{Envelope, Geometry};
use ee_raster::Raster;
use std::fmt::Write as _;

/// Stroke/fill styling for vector layers.
#[derive(Debug, Clone)]
pub struct Style {
    /// Stroke colour.
    pub stroke: Rgb,
    /// Stroke width in world units.
    pub stroke_width: f64,
    /// Optional fill with opacity (colour, alpha 0..1).
    pub fill: Option<(Rgb, f64)>,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            stroke: Rgb(0x20, 0x20, 0x20),
            stroke_width: 1.0,
            fill: None,
        }
    }
}

enum Layer {
    Categorical {
        name: String,
        raster: Raster<u8>,
        palette: Vec<Rgb>,
        labels: Vec<String>,
    },
    Continuous {
        name: String,
        raster: Raster<f32>,
    },
    Features {
        name: String,
        geometries: Vec<Geometry>,
        style: Style,
    },
}

/// Builds one map document.
pub struct MapBuilder {
    layers: Vec<Layer>,
    /// Output pixel width (height follows the extent's aspect ratio).
    pub width_px: u32,
}

impl Default for MapBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MapBuilder {
    /// Empty map, 640 px wide by default.
    pub fn new() -> Self {
        Self {
            layers: Vec::new(),
            width_px: 640,
        }
    }

    /// Add a categorical raster layer (class index → palette colour).
    /// `labels` feed the legend; missing labels render as `class N`.
    pub fn categorical(
        mut self,
        name: impl Into<String>,
        raster: Raster<u8>,
        palette: &[Rgb],
        labels: &[&str],
    ) -> Self {
        self.layers.push(Layer::Categorical {
            name: name.into(),
            raster,
            palette: palette.to_vec(),
            labels: labels.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Add a continuous 0..1 raster layer rendered with the blue ramp.
    pub fn continuous(mut self, name: impl Into<String>, raster: Raster<f32>) -> Self {
        self.layers.push(Layer::Continuous {
            name: name.into(),
            raster,
        });
        self
    }

    /// Add a vector layer.
    pub fn features(
        mut self,
        name: impl Into<String>,
        geometries: Vec<Geometry>,
        style: Style,
    ) -> Self {
        self.layers.push(Layer::Features {
            name: name.into(),
            geometries,
            style,
        });
        self
    }

    /// Add the geometry column of a GeoSPARQL result set (the Sextant
    /// workflow: run a query, drop the bindings on the map).
    pub fn query_results(
        self,
        name: impl Into<String>,
        solutions: &ee_rdf::exec::Solutions,
        var: &str,
        style: Style,
    ) -> Result<Self, RenderError> {
        let col = solutions
            .column(var)
            .ok_or_else(|| RenderError::BadGeometry(format!("no ?{var} column")))?;
        let mut geometries = Vec::new();
        for row in &solutions.rows {
            if let Some(ee_rdf::term::Term::Literal { lexical, .. }) = &row[col] {
                let g = ee_geo::wkt::parse_wkt(lexical)
                    .map_err(|e| RenderError::BadGeometry(e.to_string()))?;
                geometries.push(g);
            }
        }
        Ok(self.features(name, geometries, style))
    }

    fn extent(&self) -> Envelope {
        let mut env = Envelope::empty();
        for layer in &self.layers {
            let e = match layer {
                Layer::Categorical { raster, .. } => raster.envelope(),
                Layer::Continuous { raster, .. } => raster.envelope(),
                Layer::Features { geometries, .. } => geometries
                    .iter()
                    .fold(Envelope::empty(), |a, g| a.union(&g.envelope())),
            };
            env = env.union(&e);
        }
        env
    }

    /// Render the SVG document.
    pub fn render(&self) -> Result<String, RenderError> {
        let env = self.extent();
        if self.layers.is_empty() || env.is_empty() {
            return Err(RenderError::EmptyMap);
        }
        let scale = self.width_px as f64 / env.width();
        let height_px = (env.height() * scale).ceil() as u32;
        // World→SVG: x' = (x - min_x) * scale; y' = (max_y - y) * scale.
        let tx = |x: f64| (x - env.min_x) * scale;
        let ty = |y: f64| (env.max_y - y) * scale;
        let legend_height = 20 * self.legend_entries().len() as u32 + 8;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
            self.width_px,
            height_px + legend_height,
            self.width_px,
            height_px + legend_height
        );
        for layer in &self.layers {
            match layer {
                Layer::Categorical {
                    name,
                    raster,
                    palette,
                    ..
                } => {
                    let _ = writeln!(out, r#"<g id="{}">"#, xml_escape(name));
                    let t = raster.transform();
                    let cell_w = t.pixel_size * scale;
                    for row in 0..raster.rows() {
                        // Run-length merge equal-class cells per row.
                        let mut col = 0;
                        while col < raster.cols() {
                            let v = raster.at(col, row);
                            let mut run = 1;
                            while col + run < raster.cols() && raster.at(col + run, row) == v {
                                run += 1;
                            }
                            let colour = palette
                                .get(v as usize)
                                .copied()
                                .unwrap_or(Rgb(0xff, 0x00, 0xff));
                            let x = tx(t.origin_x + col as f64 * t.pixel_size);
                            let y = ty(t.origin_y - row as f64 * t.pixel_size);
                            let _ = writeln!(
                                out,
                                r#"<rect x="{x:.2}" y="{y:.2}" width="{:.2}" height="{cell_w:.2}" fill="{}"/>"#,
                                cell_w * run as f64,
                                colour.hex()
                            );
                            col += run;
                        }
                    }
                    let _ = writeln!(out, "</g>");
                }
                Layer::Continuous { name, raster } => {
                    let _ = writeln!(out, r#"<g id="{}">"#, xml_escape(name));
                    let t = raster.transform();
                    let cell_w = t.pixel_size * scale;
                    for (col, row, v) in raster.iter() {
                        let colour = fraction_ramp(v);
                        let x = tx(t.origin_x + col as f64 * t.pixel_size);
                        let y = ty(t.origin_y - row as f64 * t.pixel_size);
                        let _ = writeln!(
                            out,
                            r#"<rect x="{x:.2}" y="{y:.2}" width="{cell_w:.2}" height="{cell_w:.2}" fill="{}"/>"#,
                            colour.hex()
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
                Layer::Features {
                    name,
                    geometries,
                    style,
                } => {
                    let _ = writeln!(out, r#"<g id="{}">"#, xml_escape(name));
                    let fill = match &style.fill {
                        Some((c, a)) => format!(r#"fill="{}" fill-opacity="{a}""#, c.hex()),
                        None => r#"fill="none""#.to_string(),
                    };
                    for g in geometries {
                        match g {
                            Geometry::Point(p) => {
                                let _ = writeln!(
                                    out,
                                    r#"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{}"/>"#,
                                    tx(p.x),
                                    ty(p.y),
                                    (style.stroke_width * scale).max(2.0),
                                    style.stroke.hex()
                                );
                            }
                            Geometry::LineString(l) => {
                                let pts: Vec<String> = l
                                    .points
                                    .iter()
                                    .map(|p| format!("{:.2},{:.2}", tx(p.x), ty(p.y)))
                                    .collect();
                                let _ = writeln!(
                                    out,
                                    r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{:.2}"/>"#,
                                    pts.join(" "),
                                    style.stroke.hex(),
                                    style.stroke_width * scale
                                );
                            }
                            Geometry::Polygon(poly) => {
                                let pts: Vec<String> = poly
                                    .exterior
                                    .points
                                    .iter()
                                    .map(|p| format!("{:.2},{:.2}", tx(p.x), ty(p.y)))
                                    .collect();
                                let _ = writeln!(
                                    out,
                                    r#"<polygon points="{}" {} stroke="{}" stroke-width="{:.2}"/>"#,
                                    pts.join(" "),
                                    fill,
                                    style.stroke.hex(),
                                    style.stroke_width * scale
                                );
                            }
                            Geometry::MultiPolygon(m) => {
                                for poly in &m.polygons {
                                    let pts: Vec<String> = poly
                                        .exterior
                                        .points
                                        .iter()
                                        .map(|p| format!("{:.2},{:.2}", tx(p.x), ty(p.y)))
                                        .collect();
                                    let _ = writeln!(
                                        out,
                                        r#"<polygon points="{}" {} stroke="{}" stroke-width="{:.2}"/>"#,
                                        pts.join(" "),
                                        fill,
                                        style.stroke.hex(),
                                        style.stroke_width * scale
                                    );
                                }
                            }
                        }
                    }
                    let _ = writeln!(out, "</g>");
                }
            }
        }
        // Legend below the map.
        let mut ly = height_px + 14;
        for (colour, label) in self.legend_entries() {
            let _ = writeln!(
                out,
                r#"<rect x="6" y="{}" width="12" height="12" fill="{}"/><text x="24" y="{}" font-size="12" font-family="sans-serif">{}</text>"#,
                ly - 10,
                colour.hex(),
                ly,
                xml_escape(&label)
            );
            ly += 20;
        }
        out.push_str("</svg>\n");
        Ok(out)
    }

    fn legend_entries(&self) -> Vec<(Rgb, String)> {
        let mut entries = Vec::new();
        for layer in &self.layers {
            if let Layer::Categorical {
                raster,
                palette,
                labels,
                ..
            } = layer
            {
                // Only legend classes that actually appear.
                let mut present = [false; 256];
                for v in raster.data() {
                    present[*v as usize] = true;
                }
                for (i, &p) in palette.iter().enumerate() {
                    if present[i] {
                        let label = labels
                            .get(i)
                            .cloned()
                            .unwrap_or_else(|| format!("class {i}"));
                        entries.push((p, label));
                    }
                }
            }
        }
        entries
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::LAND_COVER;
    use ee_geo::{Point, Polygon};
    use ee_raster::raster::GeoTransform;

    fn class_raster() -> Raster<u8> {
        Raster::from_fn(8, 8, GeoTransform::new(0.0, 80.0, 10.0), |c, _| {
            if c < 4 {
                0
            } else {
                6
            }
        })
    }

    #[test]
    fn categorical_map_renders_with_legend() {
        let svg = MapBuilder::new()
            .categorical("cover", class_raster(), &LAND_COVER, &["Wheat", "", "", "", "", "", "Water"])
            .render()
            .unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("#e6c84b"), "wheat colour present");
        assert!(svg.contains("#2d6dc9"), "water colour present");
        assert!(svg.contains(">Wheat</text>"), "legend labels rendered");
        assert!(svg.contains(">Water</text>"));
        // Run-length merging: 8 rows x 2 runs = 16 rects + 2 legend rects.
        assert_eq!(svg.matches("<rect").count(), 18);
    }

    #[test]
    fn continuous_map_uses_ramp() {
        let r: Raster<f32> =
            Raster::from_fn(4, 4, GeoTransform::new(0.0, 40.0, 10.0), |c, _| c as f32 / 3.0);
        let svg = MapBuilder::new().continuous("water", r).render().unwrap();
        assert!(svg.contains("#d9c28a"), "dry endpoint");
        assert!(svg.contains("#0d4a8f"), "wet endpoint");
    }

    #[test]
    fn vector_layer_and_flip() {
        // A point at the extent's top (max y) must land at SVG y ≈ 0.
        let geoms: Vec<Geometry> = vec![
            Point::new(0.0, 100.0).into(),
            Polygon::rectangle(10.0, 10.0, 40.0, 40.0).into(),
        ];
        let svg = MapBuilder::new()
            .features(
                "overlay",
                geoms,
                Style {
                    fill: Some((Rgb(0xff, 0, 0), 0.4)),
                    ..Style::default()
                },
            )
            .render()
            .unwrap();
        assert!(svg.contains(r#"cy="0.00""#), "north-up flip: {svg}");
        assert!(svg.contains("<polygon"));
        assert!(svg.contains(r#"fill-opacity="0.4""#));
    }

    #[test]
    fn query_results_layer() {
        use ee_rdf::store::IndexMode;
        use ee_rdf::term::Term;
        use ee_rdf::TripleStore;
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(
            &Term::iri("http://e/a"),
            &Term::iri("http://e/geo"),
            &Term::wkt("POINT (5 5)"),
        );
        let sol = ee_rdf::exec::query(&st, "PREFIX e: <http://e/> SELECT ?g WHERE { ?s e:geo ?g }")
            .unwrap();
        let svg = MapBuilder::new()
            .features("base", vec![Polygon::rectangle(0.0, 0.0, 10.0, 10.0).into()], Style::default())
            .query_results("hits", &sol, "g", Style::default())
            .unwrap()
            .render()
            .unwrap();
        assert!(svg.contains("<circle"));
        // Unknown variable errors.
        assert!(MapBuilder::new()
            .query_results("x", &sol, "nope", Style::default())
            .is_err());
    }

    #[test]
    fn empty_map_is_an_error() {
        assert_eq!(MapBuilder::new().render(), Err(RenderError::EmptyMap));
    }

    #[test]
    fn layers_compose() {
        let svg = MapBuilder::new()
            .categorical("cover", class_raster(), &LAND_COVER, &[])
            .features(
                "parcels",
                vec![Polygon::rectangle(0.0, 0.0, 40.0, 40.0).into()],
                Style::default(),
            )
            .render()
            .unwrap();
        assert!(svg.contains(r#"<g id="cover">"#));
        assert!(svg.contains(r#"<g id="parcels">"#));
    }
}
