//! Parameter initialisation schemes.

use crate::tensor::Tensor;
use ee_util::Rng;

/// He (Kaiming) normal initialisation for ReLU networks: `N(0, 2/fan_in)`.
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| rng.normal(0.0, std) as f32).collect())
        .expect("shape/product consistent by construction")
}

/// Xavier/Glorot uniform initialisation: `U(±sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.range_f64(-limit, limit) as f32).collect(),
    )
    .expect("shape/product consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_variance_matches_fan_in() {
        let mut rng = Rng::seed_from(4);
        let t = he_normal(&[100, 100], 100, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.02).abs() < 0.005, "var {var} expected 2/100");
    }

    #[test]
    fn xavier_respects_limits() {
        let mut rng = Rng::seed_from(5);
        let t = xavier_uniform(&[50, 50], 50, 50, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit));
        // Spread should roughly fill the interval.
        let max = t.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(max > 0.8 * limit);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_normal(&[10], 10, &mut Rng::seed_from(7));
        let b = he_normal(&[10], 10, &mut Rng::seed_from(7));
        assert_eq!(a, b);
    }
}
