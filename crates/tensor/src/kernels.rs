//! Convolutional-network kernels with hand-derived gradients.
//!
//! Layout conventions:
//! * activations: `[N, C, H, W]` (batch, channels, height, width);
//! * convolution weights: `[F, C, KH, KW]`, bias `[F]`;
//! * convolution uses stride 1 and symmetric zero padding `pad`;
//! * pooling is 2×2, stride 2.
//!
//! The convolution is an im2col + matmul, the standard CPU formulation,
//! parallelised across the batch: samples are split into contiguous
//! bands, each worker owns a thread-local column buffer (the old single
//! shared `Vec<f32>` forced serialisation), lowers its samples with a
//! row-segment `im2col` (contiguous `copy_from_slice` runs instead of a
//! per-pixel bounds branch) and multiplies with the cache-blocked kernel
//! from [`crate::matmul`]. Gradients reduce per-sample partials in sample
//! order, so `dx`/`dw`/`db` are bit-identical for any worker count; the
//! serial baselines ([`conv2d_forward_ref`], [`conv2d_backward_ref`])
//! preserve the original one-sample-at-a-time formulation and the tests
//! compare raw bits against them. Every kernel also has a
//! finite-difference gradient check.

use crate::matmul;
use crate::tensor::Tensor;
use crate::TensorError;
use ee_util::par;

/// Output spatial size of a stride-1 convolution.
pub fn conv_out_size(h: usize, w: usize, kh: usize, kw: usize, pad: usize) -> (usize, usize) {
    (h + 2 * pad + 1 - kh, w + 2 * pad + 1 - kw)
}

/// Shared geometry of one convolution call.
#[derive(Clone, Copy)]
struct ConvGeom {
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    /// `C * KH * KW`, the column-matrix row count.
    rows: usize,
}

impl ConvGeom {
    fn new(c: usize, h: usize, w: usize, kh: usize, kw: usize, pad: usize) -> Self {
        let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
        Self {
            c,
            h,
            w,
            kh,
            kw,
            pad,
            oh,
            ow,
            rows: c * kh * kw,
        }
    }
}

/// Lower one sample `[C, H, W]` into columns `[C*KH*KW, OH*OW]` using
/// contiguous row-segment copies (zero-fill at the padded borders).
/// Produces exactly the same values as [`im2col_ref`].
fn im2col_into(x_sample: &[f32], g: &ConvGeom, cols: &mut [f32]) {
    debug_assert_eq!(x_sample.len(), g.c * g.h * g.w);
    debug_assert_eq!(cols.len(), g.rows * g.oh * g.ow);
    let ohw = g.oh * g.ow;
    for ci in 0..g.c {
        let chan = &x_sample[ci * g.h * g.w..(ci + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (ci * g.kh + ki) * g.kw + kj;
                // Valid horizontal output range for this kernel column:
                // src_j = oj + kj - pad must land in [0, w).
                let lo = g.pad.saturating_sub(kj);
                let hi = (g.w + g.pad).saturating_sub(kj).min(g.ow);
                for oi in 0..g.oh {
                    let dst = &mut cols[row * ohw + oi * g.ow..row * ohw + (oi + 1) * g.ow];
                    let src_i = oi + ki;
                    if src_i < g.pad || src_i - g.pad >= g.h || hi <= lo {
                        dst.fill(0.0);
                    } else {
                        dst[..lo].fill(0.0);
                        let src = (src_i - g.pad) * g.w + lo + kj - g.pad;
                        dst[lo..hi].copy_from_slice(&chan[src..src + (hi - lo)]);
                        dst[hi..].fill(0.0);
                    }
                }
            }
        }
    }
}

/// [`im2col_into`] writing the transposed layout `[OH*OW, C*KH*KW]`
/// directly — the backward pass needs only `colsᵀ` (for `dW = dOut ·
/// colsᵀ` through the tiled kernel), so materialising the transpose
/// without the intermediate saves a full pass over the buffer. Values
/// are identical to transposing [`im2col_into`]'s output.
fn im2col_t_into(x_sample: &[f32], g: &ConvGeom, cols_t: &mut [f32]) {
    debug_assert_eq!(x_sample.len(), g.c * g.h * g.w);
    debug_assert_eq!(cols_t.len(), g.rows * g.oh * g.ow);
    cols_t.fill(0.0);
    for ci in 0..g.c {
        let chan = &x_sample[ci * g.h * g.w..(ci + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (ci * g.kh + ki) * g.kw + kj;
                let lo = g.pad.saturating_sub(kj);
                let hi = (g.w + g.pad).saturating_sub(kj).min(g.ow);
                if hi <= lo {
                    continue;
                }
                for oi in 0..g.oh {
                    let src_i = oi + ki;
                    if src_i < g.pad || src_i - g.pad >= g.h {
                        continue;
                    }
                    let src = (src_i - g.pad) * g.w + lo + kj - g.pad;
                    let seg = &chan[src..src + (hi - lo)];
                    for (oj, &v) in seg.iter().enumerate() {
                        cols_t[(oi * g.ow + lo + oj) * g.rows + row] = v;
                    }
                }
            }
        }
    }
}

/// Scatter columns back into one sample's image gradient (transpose of
/// [`im2col_into`]), accumulating. Element-addition order matches
/// [`col2im_ref`] exactly.
fn col2im_into(cols: &[f32], g: &ConvGeom, dx_sample: &mut [f32]) {
    debug_assert_eq!(dx_sample.len(), g.c * g.h * g.w);
    let ohw = g.oh * g.ow;
    for ci in 0..g.c {
        let chan = &mut dx_sample[ci * g.h * g.w..(ci + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (ci * g.kh + ki) * g.kw + kj;
                let lo = g.pad.saturating_sub(kj);
                let hi = (g.w + g.pad).saturating_sub(kj).min(g.ow);
                if hi <= lo {
                    continue;
                }
                // Valid vertical output range: src_i = oi + ki - pad must
                // land in [0, h). Walking both sides in row chunks lets
                // the compiler hoist the bounds work out of the hot loop;
                // each dx element still receives exactly one add per
                // (ki, kj), in the same (ci, ki, kj, oi) order as the
                // reference.
                let oi0 = g.pad.saturating_sub(ki);
                let oi1 = (g.h + g.pad).saturating_sub(ki).min(g.oh);
                if oi1 <= oi0 {
                    continue;
                }
                let off = lo + kj - g.pad;
                let src_rows = cols[row * ohw + oi0 * g.ow..row * ohw + oi1 * g.ow]
                    .chunks_exact(g.ow);
                let dst_rows = chan[(oi0 + ki - g.pad) * g.w..]
                    .chunks_mut(g.w)
                    .take(oi1 - oi0);
                for (srow, drow) in src_rows.zip(dst_rows) {
                    for (d, &v) in drow[off..off + (hi - lo)].iter_mut().zip(&srow[lo..hi]) {
                        *d += v;
                    }
                }
            }
        }
    }
}

/// Reference im2col: the original per-pixel formulation. Kept as the
/// baseline the fast path is tested (and benchmarked) against.
fn im2col_ref(
    x: &Tensor,
    n: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    cols: &mut Vec<f32>,
) -> (usize, usize) {
    let (c, h, w) = (x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
    let rows = c * kh * kw;
    cols.clear();
    cols.resize(rows * oh * ow, 0.0);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oi in 0..oh {
                    let src_i = oi + ki;
                    for oj in 0..ow {
                        let src_j = oj + kj;
                        let v = if src_i >= pad && src_j >= pad && src_i - pad < h && src_j - pad < w
                        {
                            x.at4(n, ci, src_i - pad, src_j - pad)
                        } else {
                            0.0
                        };
                        cols[row * (oh * ow) + oi * ow + oj] = v;
                    }
                }
            }
        }
    }
    (oh, ow)
}

/// Reference col2im (transpose of [`im2col_ref`]).
#[allow(clippy::too_many_arguments)] // mirrors im2col's geometry parameters
fn col2im_ref(
    cols: &[f32],
    dx: &mut Tensor,
    n: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    let (c, h, w) = (dx.shape()[1], dx.shape()[2], dx.shape()[3]);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oi in 0..oh {
                    let src_i = oi + ki;
                    for oj in 0..ow {
                        let src_j = oj + kj;
                        if src_i >= pad && src_j >= pad && src_i - pad < h && src_j - pad < w {
                            let v = cols[row * (oh * ow) + oi * ow + oj];
                            let old = dx.at4(n, ci, src_i - pad, src_j - pad);
                            dx.set4(n, ci, src_i - pad, src_j - pad, old + v);
                        }
                    }
                }
            }
        }
    }
}

/// Clamp a requested worker count to the useful parallelism of a conv
/// problem: at least ~4M multiply-adds per worker (below that, scoped
/// thread spawn/join costs more than the work it buys), and never more
/// workers than samples. Results are bit-identical at any worker count,
/// so this only changes scheduling.
fn conv_workers(requested: usize, n: usize, madds: usize) -> usize {
    const MADDS_PER_WORKER: usize = 4 << 20;
    requested
        .min(n)
        .min((madds / MADDS_PER_WORKER).max(1))
        .max(1)
}

fn check_conv_shapes(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<(usize, usize), TensorError> {
    if x.shape().len() != 4 {
        return Err(TensorError::BadRank {
            expected: 4,
            actual: x.shape().to_vec(),
        });
    }
    let c = x.shape()[1];
    let (f, wc) = (weight.shape()[0], weight.shape()[1]);
    let bias_ok = bias.is_none_or(|b| b.shape() == [f]);
    if wc != c || !bias_ok {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().to_vec(),
            right: weight.shape().to_vec(),
        });
    }
    Ok((x.shape()[0], f))
}

/// Forward convolution. `x: [N,C,H,W]`, `weight: [F,C,KH,KW]`, `bias: [F]`
/// → `[N,F,OH,OW]`. Batch-parallel with the default worker count.
pub fn conv2d_forward(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
) -> Result<Tensor, TensorError> {
    conv2d_forward_with_threads(x, weight, bias, pad, par::available_threads())
}

/// [`conv2d_forward`] with an explicit worker budget. Bit-identical to
/// [`conv2d_forward_ref`] for any thread count.
pub fn conv2d_forward_with_threads(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (n, f) = check_conv_shapes(x, weight, Some(bias))?;
    let g = ConvGeom::new(
        x.shape()[1],
        x.shape()[2],
        x.shape()[3],
        weight.shape()[2],
        weight.shape()[3],
        pad,
    );
    let ohw = g.oh * g.ow;
    let sample_in = g.c * g.h * g.w;
    let sample_out = f * ohw;
    let mut out = Tensor::zeros(&[n, f, g.oh, g.ow]);
    if n == 0 || sample_out == 0 {
        return Ok(out);
    }
    // weight is [F, C, KH, KW] row-major == [F, rows] flattened.
    let (w_flat, x_flat, b_flat) = (weight.data(), x.data(), bias.data());
    let threads = conv_workers(threads, n, n * f * g.rows * ohw);
    par::for_rows_mut(out.data_mut(), sample_out, threads, |first, band| {
        // Thread-local column buffer: workers never share im2col state.
        let mut cols = vec![0.0f32; g.rows * ohw];
        for (s, y) in band.chunks_mut(sample_out).enumerate() {
            let ni = first + s;
            im2col_into(&x_flat[ni * sample_in..(ni + 1) * sample_in], &g, &mut cols);
            matmul::matmul_into(w_flat, &cols, y, f, g.rows, ohw, 1);
            for fi in 0..f {
                let bv = b_flat[fi];
                for o in &mut y[fi * ohw..(fi + 1) * ohw] {
                    *o += bv;
                }
            }
        }
    });
    Ok(out)
}

/// Serial reference forward convolution: the original one-sample-at-a-time
/// shared-buffer formulation with the naive matmul. The parallel path is
/// tested bit-for-bit against this (and benchmarked against it in E-k0).
pub fn conv2d_forward_ref(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
) -> Result<Tensor, TensorError> {
    let (n, f) = check_conv_shapes(x, weight, Some(bias))?;
    let (h, w) = (x.shape()[2], x.shape()[3]);
    let (kh, kw) = (weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
    let rows = x.shape()[1] * kh * kw;
    let w_mat = weight.reshape(&[f, rows])?;
    let mut out = Tensor::zeros(&[n, f, oh, ow]);
    let mut cols = Vec::new();
    for ni in 0..n {
        im2col_ref(x, ni, kh, kw, pad, &mut cols);
        let col_t = Tensor::from_vec(&[rows, oh * ow], cols.clone())?;
        let y = w_mat.matmul_serial_ref(&col_t)?; // [F, OH*OW]
        for fi in 0..f {
            let b = bias.data()[fi];
            for p in 0..oh * ow {
                let v = y.data()[fi * oh * ow + p] + b;
                out.data_mut()[((ni * f + fi) * oh + p / ow) * ow + p % ow] = v;
            }
        }
    }
    Ok(out)
}

/// Gradients of a convolution: returns `(dx, dweight, dbias)`.
/// Batch-parallel with the default worker count.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    conv2d_backward_with_threads(x, weight, dout, pad, par::available_threads())
}

/// [`conv2d_backward`] with an explicit worker budget.
///
/// Workers compute per-sample `(dw, db)` partials which the caller
/// reduces in ascending sample order — the same association as the serial
/// reference — while `dx` is written into disjoint per-sample bands, so
/// all three gradients are bit-identical to [`conv2d_backward_ref`] for
/// any thread count.
pub fn conv2d_backward_with_threads(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
    threads: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (n, f) = check_conv_shapes(x, weight, None)?;
    let g = ConvGeom::new(
        x.shape()[1],
        x.shape()[2],
        x.shape()[3],
        weight.shape()[2],
        weight.shape()[3],
        pad,
    );
    let ohw = g.oh * g.ow;
    let sample_in = g.c * g.h * g.w;
    let sample_out = f * ohw;
    // wᵀ as [rows, F], shared read-only across workers.
    let mut w_t = vec![0.0f32; g.rows * f];
    for fi in 0..f {
        for r in 0..g.rows {
            w_t[r * f + fi] = weight.data()[fi * g.rows + r];
        }
    }
    let mut dx = Tensor::zeros(&[n, g.c, g.h, g.w]);
    let (x_flat, dout_flat) = (x.data(), dout.data());
    let threads = conv_workers(threads, n, 2 * n * f * g.rows * ohw);
    let per_sample: Vec<Vec<(Vec<f32>, Vec<f32>)>> = if n == 0 {
        Vec::new()
    } else {
        par::for_rows_mut(dx.data_mut(), sample_in, threads, |first, band| {
            let mut cols_t = vec![0.0f32; ohw * g.rows];
            let mut dcols = vec![0.0f32; g.rows * ohw];
            let mut partials = Vec::with_capacity(band.len() / sample_in);
            for (s, dxs) in band.chunks_mut(sample_in).enumerate() {
                let ni = first + s;
                // dOut for this sample is already a contiguous [F, OH*OW]
                // slice in [N,F,OH,OW] layout.
                let dslice = &dout_flat[ni * sample_out..(ni + 1) * sample_out];
                let mut db_n = vec![0.0f32; f];
                for (fi, dbv) in db_n.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for &v in &dslice[fi * ohw..(fi + 1) * ohw] {
                        acc += v;
                    }
                    *dbv = acc;
                }
                // dW_n = dOut · colsᵀ, through the tiled kernel over a
                // directly-materialised transposed im2col (thread-local
                // buffer): the tiled kernel accumulates each element in
                // ascending-k order, the same association as the
                // reference's naive matmul over its own materialised
                // transpose — and unlike an in-place row-dot it
                // autovectorises.
                im2col_t_into(&x_flat[ni * sample_in..(ni + 1) * sample_in], &g, &mut cols_t);
                let mut dw_n = vec![0.0f32; f * g.rows];
                matmul::matmul_into(dslice, &cols_t, &mut dw_n, f, ohw, g.rows, 1);
                // dCols = wᵀ · dOut, scattered back into this sample's dx.
                matmul::matmul_into(&w_t, dslice, &mut dcols, g.rows, f, ohw, 1);
                col2im_into(&dcols, &g, dxs);
                partials.push((dw_n, db_n));
            }
            partials
        })
    };
    // Fixed-order reduction: samples ascending, exactly the serial
    // association.
    let mut dw = vec![0.0f32; f * g.rows];
    let mut db = vec![0.0f32; f];
    for band in per_sample {
        for (dw_n, db_n) in band {
            for (a, b) in dw.iter_mut().zip(&dw_n) {
                *a += b;
            }
            for (a, b) in db.iter_mut().zip(&db_n) {
                *a += b;
            }
        }
    }
    Ok((
        dx,
        Tensor::from_vec(&[f, g.c, g.kh, g.kw], dw)?,
        Tensor::from_vec(&[f], db)?,
    ))
}

/// Serial reference backward convolution: one sample at a time with the
/// naive matmul and per-sample `(dw, db)` partials added in sample order.
pub fn conv2d_backward_ref(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (f, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
    let rows = c * kh * kw;
    let w_mat = weight.reshape(&[f, rows])?;
    let w_t = w_mat.transpose()?;
    let mut dw = Tensor::zeros(&[f, rows]);
    let mut db = Tensor::zeros(&[f]);
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut cols = Vec::new();
    for ni in 0..n {
        // dOut slice for this sample as [F, OH*OW]; db accumulates a
        // per-sample partial (summed from zero) so the association is
        // sample-major — the property the parallel reduction reproduces.
        let mut dslice = vec![0.0f32; f * oh * ow];
        let mut db_n = vec![0.0f32; f];
        for fi in 0..f {
            for p in 0..oh * ow {
                let v = dout.at4(ni, fi, p / ow, p % ow);
                dslice[fi * oh * ow + p] = v;
                db_n[fi] += v;
            }
        }
        for (acc, v) in db.data_mut().iter_mut().zip(&db_n) {
            *acc += v;
        }
        let d_mat = Tensor::from_vec(&[f, oh * ow], dslice)?;
        im2col_ref(x, ni, kh, kw, pad, &mut cols);
        let col_t = Tensor::from_vec(&[rows, oh * ow], cols.clone())?;
        // dW += dOut · colsᵀ
        let dw_n = d_mat.matmul_serial_ref(&col_t.transpose()?)?;
        dw.axpy(1.0, &dw_n)?;
        // dCols = Wᵀ · dOut, scattered back.
        let dcols = w_t.matmul_serial_ref(&d_mat)?;
        col2im_ref(dcols.data(), &mut dx, ni, kh, kw, pad, oh, ow);
    }
    Ok((dx, dw.reshape(&[f, c, kh, kw])?, db))
}

/// 2×2 max pooling, stride 2. Returns the pooled tensor and the flat
/// indices of each maximum (for the backward pass). Odd trailing rows or
/// columns are truncated, as most frameworks do.
pub fn maxpool2_forward(x: &Tensor) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut idx = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = 0usize;
                    for di in 0..2 {
                        for dj in 0..2 {
                            let (i, j) = (oi * 2 + di, oj * 2 + dj);
                            let v = x.at4(ni, ci, i, j);
                            if v > best {
                                best = v;
                                best_at = ((ni * c + ci) * h + i) * w + j;
                            }
                        }
                    }
                    out.set4(ni, ci, oi, oj, best);
                    idx[((ni * c + ci) * oh + oi) * ow + oj] = best_at;
                }
            }
        }
    }
    (out, idx)
}

/// Backward of 2×2 max pooling: routes each output gradient to the input
/// position that won the max.
pub fn maxpool2_backward(dout: &Tensor, idx: &[usize], input_shape: &[usize]) -> Tensor {
    let mut dx = Tensor::zeros(input_shape);
    for (flat, &src) in idx.iter().enumerate() {
        dx.data_mut()[src] += dout.data()[flat];
    }
    dx
}

/// ReLU forward; returns activations and the pass-through mask.
pub fn relu_forward(x: &Tensor) -> (Tensor, Vec<bool>) {
    let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
    let mut y = x.clone();
    for v in y.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    (y, mask)
}

/// ReLU backward.
pub fn relu_backward(dout: &Tensor, mask: &[bool]) -> Tensor {
    let mut dx = dout.clone();
    for (v, &m) in dx.data_mut().iter_mut().zip(mask) {
        if !m {
            *v = 0.0;
        }
    }
    dx
}

/// Row-wise softmax of logits `[N, K]`.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    for i in 0..n {
        let row = &mut out.data_mut()[i * k..(i + 1) * k];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean cross-entropy of logits `[N, K]` against integer labels, plus the
/// gradient w.r.t. the logits (`(softmax − onehot) / N`).
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "one label per row");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range {k}");
        let p = probs.data()[i * k + y].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + y] -= 1.0;
    }
    grad.scale_mut(1.0 / n as f32);
    (loss / n as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    fn random_tensor(shape: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| rng.normal(0.0, 1.0) as f32).collect()).unwrap()
    }

    #[test]
    fn conv_output_size() {
        assert_eq!(conv_out_size(8, 8, 3, 3, 1), (8, 8), "same-padding");
        assert_eq!(conv_out_size(8, 8, 3, 3, 0), (6, 6), "valid");
        assert_eq!(conv_out_size(5, 7, 1, 1, 0), (5, 7));
    }

    #[test]
    fn conv_identity_kernel() {
        // A single 1x1 identity filter reproduces the input channel.
        let mut rng = Rng::seed_from(1);
        let x = random_tensor(&[2, 1, 4, 4], &mut rng);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let b = Tensor::zeros(&[1]);
        let y = conv2d_forward(&x, &w, &b, 0).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_sum_kernel() {
        // 3x3 all-ones filter over a constant image = 9 * value inside,
        // less at padded borders.
        let x = Tensor::full(&[1, 1, 4, 4], 1.0);
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let b = Tensor::zeros(&[1]);
        let y = conv2d_forward(&x, &w, &b, 1).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.at4(0, 0, 1, 1), 9.0, "interior");
        assert_eq!(y.at4(0, 0, 0, 0), 4.0, "corner sees 2x2");
        assert_eq!(y.at4(0, 0, 0, 1), 6.0, "edge sees 2x3");
    }

    #[test]
    fn conv_bias_is_added() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(&[2], vec![0.5, -1.5]).unwrap();
        let y = conv2d_forward(&x, &w, &b, 0).unwrap();
        assert_eq!(y.at4(0, 0, 1, 1), 0.5);
        assert_eq!(y.at4(0, 1, 0, 0), -1.5);
    }

    /// Finite-difference gradient check for the full conv + loss chain.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(42);
        let x = random_tensor(&[2, 2, 5, 5], &mut rng);
        let w = random_tensor(&[3, 2, 3, 3], &mut rng).scale(0.3);
        let b = random_tensor(&[3], &mut rng).scale(0.1);
        let pad = 1;
        // Loss = sum of outputs (so dOut = ones).
        let y = conv2d_forward(&x, &w, &b, pad).unwrap();
        let dout = Tensor::full(y.shape(), 1.0);
        let (dx, dw, db) = conv2d_backward(&x, &w, &dout, pad).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d_forward(x, w, b, pad).unwrap().sum()
        };
        // Check a scattering of coordinates in each parameter.
        for &i in &[0usize, 7, 31, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let num = (loss(&xp, &w, &b) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 0.05,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - dw.data()[i]).abs() < 0.5,
                "dw[{i}]: numeric {num} vs analytic {}",
                dw.data()[i]
            );
        }
        for i in 0..3 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - db.data()[i]).abs() < 0.5,
                "db[{i}]: numeric {num} vs analytic {}",
                db.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (y, idx) = maxpool2_forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let dout = Tensor::full(&[1, 1, 2, 2], 1.0);
        let dx = maxpool2_backward(&dout, &idx, &[1, 1, 4, 4]);
        // Gradient lands exactly on the max positions.
        assert_eq!(dx.data()[5], 1.0); // value 4.0 at (1,1)
        assert_eq!(dx.data()[0], 0.0);
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn maxpool_truncates_odd_sizes() {
        let x = Tensor::full(&[1, 1, 5, 5], 1.0);
        let (y, _) = maxpool2_forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn relu_masks_negatives() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let (y, mask) = relu_forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let dout = Tensor::full(&[4], 1.0);
        let dx = relu_backward(&dout, &mask);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(3);
        let logits = random_tensor(&[5, 7], &mut rng).scale(3.0);
        let p = softmax(&logits);
        for i in 0..5 {
            let s: f32 = p.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.data()[i * 7..(i + 1) * 7].iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[1, 3], vec![101.0, 102.0, 103.0]).unwrap();
        let (pa, pb) = (softmax(&a), softmax(&b));
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        let (loss_bad, _) = cross_entropy(&logits, &[1]);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(9);
        let logits = random_tensor(&[4, 5], &mut rng);
        let labels = [0usize, 3, 2, 4];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (l1, _) = cross_entropy(&lp, &labels);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (l0, _) = cross_entropy(&lm, &labels);
            let num = (l1 - l0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "grad[{i}]: numeric {num} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        // Softmax-CE gradient rows sum to zero (probability simplex).
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -1.2, 0.8, 2.0, 0.0, -0.5]).unwrap();
        let (_, grad) = cross_entropy(&logits, &[1, 0]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }
}
