//! Convolutional-network kernels with hand-derived gradients.
//!
//! Layout conventions:
//! * activations: `[N, C, H, W]` (batch, channels, height, width);
//! * convolution weights: `[F, C, KH, KW]`, bias `[F]`;
//! * convolution uses stride 1 and symmetric zero padding `pad`;
//! * pooling is 2×2, stride 2.
//!
//! The convolution is an im2col + matmul, the standard CPU formulation;
//! the backward pass reuses the same column buffers. Every kernel has a
//! finite-difference gradient check in the tests.

use crate::tensor::Tensor;
use crate::TensorError;

/// Output spatial size of a stride-1 convolution.
pub fn conv_out_size(h: usize, w: usize, kh: usize, kw: usize, pad: usize) -> (usize, usize) {
    (h + 2 * pad + 1 - kh, w + 2 * pad + 1 - kw)
}

/// Lower one sample `[C, H, W]` into columns `[C*KH*KW, OH*OW]`.
fn im2col(
    x: &Tensor,
    n: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    cols: &mut Vec<f32>,
) -> (usize, usize) {
    let (c, h, w) = (x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
    let rows = c * kh * kw;
    cols.clear();
    cols.resize(rows * oh * ow, 0.0);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oi in 0..oh {
                    let src_i = oi + ki;
                    for oj in 0..ow {
                        let src_j = oj + kj;
                        let v = if src_i >= pad && src_j >= pad && src_i - pad < h && src_j - pad < w
                        {
                            x.at4(n, ci, src_i - pad, src_j - pad)
                        } else {
                            0.0
                        };
                        cols[row * (oh * ow) + oi * ow + oj] = v;
                    }
                }
            }
        }
    }
    (oh, ow)
}

/// Scatter columns back into an image gradient (transpose of [`im2col`]).
#[allow(clippy::too_many_arguments)] // mirrors im2col's geometry parameters
fn col2im(
    cols: &[f32],
    dx: &mut Tensor,
    n: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    let (c, h, w) = (dx.shape()[1], dx.shape()[2], dx.shape()[3]);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oi in 0..oh {
                    let src_i = oi + ki;
                    for oj in 0..ow {
                        let src_j = oj + kj;
                        if src_i >= pad && src_j >= pad && src_i - pad < h && src_j - pad < w {
                            let v = cols[row * (oh * ow) + oi * ow + oj];
                            let old = dx.at4(n, ci, src_i - pad, src_j - pad);
                            dx.set4(n, ci, src_i - pad, src_j - pad, old + v);
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution. `x: [N,C,H,W]`, `weight: [F,C,KH,KW]`, `bias: [F]`
/// → `[N,F,OH,OW]`.
pub fn conv2d_forward(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
) -> Result<Tensor, TensorError> {
    if x.shape().len() != 4 {
        return Err(TensorError::BadRank {
            expected: 4,
            actual: x.shape().to_vec(),
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (f, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc != c || bias.shape() != [f] {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().to_vec(),
            right: weight.shape().to_vec(),
        });
    }
    let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
    let rows = c * kh * kw;
    let w_mat = weight.reshape(&[f, rows])?;
    let mut out = Tensor::zeros(&[n, f, oh, ow]);
    let mut cols = Vec::new();
    for ni in 0..n {
        im2col(x, ni, kh, kw, pad, &mut cols);
        let col_t = Tensor::from_vec(&[rows, oh * ow], cols.clone())?;
        let y = w_mat.matmul(&col_t)?; // [F, OH*OW]
        for fi in 0..f {
            let b = bias.data()[fi];
            for p in 0..oh * ow {
                let v = y.data()[fi * oh * ow + p] + b;
                out.data_mut()[((ni * f + fi) * oh + p / ow) * ow + p % ow] = v;
            }
        }
    }
    Ok(out)
}

/// Gradients of a convolution: returns `(dx, dweight, dbias)`.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (f, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (oh, ow) = conv_out_size(h, w, kh, kw, pad);
    let rows = c * kh * kw;
    let w_mat = weight.reshape(&[f, rows])?;
    let w_t = w_mat.transpose()?;
    let mut dw = Tensor::zeros(&[f, rows]);
    let mut db = Tensor::zeros(&[f]);
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut cols = Vec::new();
    for ni in 0..n {
        // dOut slice for this sample as [F, OH*OW].
        let mut dslice = vec![0.0f32; f * oh * ow];
        for fi in 0..f {
            for p in 0..oh * ow {
                let v = dout.at4(ni, fi, p / ow, p % ow);
                dslice[fi * oh * ow + p] = v;
                db.data_mut()[fi] += v;
            }
        }
        let d_mat = Tensor::from_vec(&[f, oh * ow], dslice)?;
        im2col(x, ni, kh, kw, pad, &mut cols);
        let col_t = Tensor::from_vec(&[rows, oh * ow], cols.clone())?;
        // dW += dOut · colsᵀ
        let dw_n = d_mat.matmul(&col_t.transpose()?)?;
        dw.axpy(1.0, &dw_n)?;
        // dCols = Wᵀ · dOut, scattered back.
        let dcols = w_t.matmul(&d_mat)?;
        col2im(dcols.data(), &mut dx, ni, kh, kw, pad, oh, ow);
    }
    Ok((dx, dw.reshape(&[f, c, kh, kw])?, db))
}

/// 2×2 max pooling, stride 2. Returns the pooled tensor and the flat
/// indices of each maximum (for the backward pass). Odd trailing rows or
/// columns are truncated, as most frameworks do.
pub fn maxpool2_forward(x: &Tensor) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut idx = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = 0usize;
                    for di in 0..2 {
                        for dj in 0..2 {
                            let (i, j) = (oi * 2 + di, oj * 2 + dj);
                            let v = x.at4(ni, ci, i, j);
                            if v > best {
                                best = v;
                                best_at = ((ni * c + ci) * h + i) * w + j;
                            }
                        }
                    }
                    out.set4(ni, ci, oi, oj, best);
                    idx[((ni * c + ci) * oh + oi) * ow + oj] = best_at;
                }
            }
        }
    }
    (out, idx)
}

/// Backward of 2×2 max pooling: routes each output gradient to the input
/// position that won the max.
pub fn maxpool2_backward(dout: &Tensor, idx: &[usize], input_shape: &[usize]) -> Tensor {
    let mut dx = Tensor::zeros(input_shape);
    for (flat, &src) in idx.iter().enumerate() {
        dx.data_mut()[src] += dout.data()[flat];
    }
    dx
}

/// ReLU forward; returns activations and the pass-through mask.
pub fn relu_forward(x: &Tensor) -> (Tensor, Vec<bool>) {
    let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
    let mut y = x.clone();
    for v in y.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    (y, mask)
}

/// ReLU backward.
pub fn relu_backward(dout: &Tensor, mask: &[bool]) -> Tensor {
    let mut dx = dout.clone();
    for (v, &m) in dx.data_mut().iter_mut().zip(mask) {
        if !m {
            *v = 0.0;
        }
    }
    dx
}

/// Row-wise softmax of logits `[N, K]`.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    for i in 0..n {
        let row = &mut out.data_mut()[i * k..(i + 1) * k];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean cross-entropy of logits `[N, K]` against integer labels, plus the
/// gradient w.r.t. the logits (`(softmax − onehot) / N`).
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "one label per row");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range {k}");
        let p = probs.data()[i * k + y].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + y] -= 1.0;
    }
    grad.scale_mut(1.0 / n as f32);
    (loss / n as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    fn random_tensor(shape: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| rng.normal(0.0, 1.0) as f32).collect()).unwrap()
    }

    #[test]
    fn conv_output_size() {
        assert_eq!(conv_out_size(8, 8, 3, 3, 1), (8, 8), "same-padding");
        assert_eq!(conv_out_size(8, 8, 3, 3, 0), (6, 6), "valid");
        assert_eq!(conv_out_size(5, 7, 1, 1, 0), (5, 7));
    }

    #[test]
    fn conv_identity_kernel() {
        // A single 1x1 identity filter reproduces the input channel.
        let mut rng = Rng::seed_from(1);
        let x = random_tensor(&[2, 1, 4, 4], &mut rng);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let b = Tensor::zeros(&[1]);
        let y = conv2d_forward(&x, &w, &b, 0).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_sum_kernel() {
        // 3x3 all-ones filter over a constant image = 9 * value inside,
        // less at padded borders.
        let x = Tensor::full(&[1, 1, 4, 4], 1.0);
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let b = Tensor::zeros(&[1]);
        let y = conv2d_forward(&x, &w, &b, 1).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.at4(0, 0, 1, 1), 9.0, "interior");
        assert_eq!(y.at4(0, 0, 0, 0), 4.0, "corner sees 2x2");
        assert_eq!(y.at4(0, 0, 0, 1), 6.0, "edge sees 2x3");
    }

    #[test]
    fn conv_bias_is_added() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(&[2], vec![0.5, -1.5]).unwrap();
        let y = conv2d_forward(&x, &w, &b, 0).unwrap();
        assert_eq!(y.at4(0, 0, 1, 1), 0.5);
        assert_eq!(y.at4(0, 1, 0, 0), -1.5);
    }

    /// Finite-difference gradient check for the full conv + loss chain.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(42);
        let x = random_tensor(&[2, 2, 5, 5], &mut rng);
        let w = random_tensor(&[3, 2, 3, 3], &mut rng).scale(0.3);
        let b = random_tensor(&[3], &mut rng).scale(0.1);
        let pad = 1;
        // Loss = sum of outputs (so dOut = ones).
        let y = conv2d_forward(&x, &w, &b, pad).unwrap();
        let dout = Tensor::full(y.shape(), 1.0);
        let (dx, dw, db) = conv2d_backward(&x, &w, &dout, pad).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d_forward(x, w, b, pad).unwrap().sum()
        };
        // Check a scattering of coordinates in each parameter.
        for &i in &[0usize, 7, 31, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let num = (loss(&xp, &w, &b) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - dx.data()[i]).abs() < 0.05,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - dw.data()[i]).abs() < 0.5,
                "dw[{i}]: numeric {num} vs analytic {}",
                dw.data()[i]
            );
        }
        for i in 0..3 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - db.data()[i]).abs() < 0.5,
                "db[{i}]: numeric {num} vs analytic {}",
                db.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (y, idx) = maxpool2_forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let dout = Tensor::full(&[1, 1, 2, 2], 1.0);
        let dx = maxpool2_backward(&dout, &idx, &[1, 1, 4, 4]);
        // Gradient lands exactly on the max positions.
        assert_eq!(dx.data()[5], 1.0); // value 4.0 at (1,1)
        assert_eq!(dx.data()[0], 0.0);
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn maxpool_truncates_odd_sizes() {
        let x = Tensor::full(&[1, 1, 5, 5], 1.0);
        let (y, _) = maxpool2_forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn relu_masks_negatives() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let (y, mask) = relu_forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let dout = Tensor::full(&[4], 1.0);
        let dx = relu_backward(&dout, &mask);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(3);
        let logits = random_tensor(&[5, 7], &mut rng).scale(3.0);
        let p = softmax(&logits);
        for i in 0..5 {
            let s: f32 = p.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.data()[i * 7..(i + 1) * 7].iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[1, 3], vec![101.0, 102.0, 103.0]).unwrap();
        let (pa, pb) = (softmax(&a), softmax(&b));
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        let (loss_bad, _) = cross_entropy(&logits, &[1]);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(9);
        let logits = random_tensor(&[4, 5], &mut rng);
        let labels = [0usize, 3, 2, 4];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (l1, _) = cross_entropy(&lp, &labels);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (l0, _) = cross_entropy(&lm, &labels);
            let num = (l1 - l0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "grad[{i}]: numeric {num} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        // Softmax-CE gradient rows sum to zero (probability simplex).
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -1.2, 0.8, 2.0, 0.0, -0.5]).unwrap();
        let (_, grad) = cross_entropy(&logits, &[1, 0]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }
}
