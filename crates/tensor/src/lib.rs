#![warn(missing_docs)]
//! Dense `f32` tensors and the numeric kernels behind `ee-dl`.
//!
//! The paper's Challenge C1 calls for deep-learning architectures for
//! Sentinel imagery; since no TensorFlow exists in this workspace, this
//! crate implements the numeric substrate from scratch:
//!
//! * [`tensor`] — an n-dimensional row-major `f32` array with shape
//!   checking, explicit elementwise ops, 2-D matmul, reductions and
//!   `argmax`;
//! * [`matmul`] — the cache-blocked matrix-multiply kernels: an 8×32
//!   register tile accumulated over 256-deep k-blocks, parallelised over
//!   contiguous row bands via `ee_util::par`, plus the naive serial
//!   reference and a sparsity-aware variant;
//! * [`kernels`] — the convolutional-network kernels: im2col convolution
//!   (forward and backward, batch-parallel with thread-local column
//!   buffers), 2×2 max pooling, ReLU, softmax and cross-entropy, all with
//!   hand-derived gradients;
//! * [`init`] — He/Xavier parameter initialisation from the workspace RNG.
//!
//! Everything is deterministic *including* the threaded kernels: every
//! parallel path fixes its floating-point accumulation order (ascending-k
//! per output element, sample-order gradient reduction) so results are
//! bit-identical to the serial reference at any worker count — the tests
//! compare raw `f32` bits. No hand-written SIMD intrinsics; the register
//! tiles are shaped so the autovectoriser emits FMA vector code for the
//! build host (see `.cargo/config.toml`).

pub mod init;
pub mod kernels;
pub mod matmul;
pub mod tensor;

pub use tensor::Tensor;

/// Errors from tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
    },
    /// A reshape that changes the element count.
    BadReshape {
        /// Original element count.
        elements: usize,
        /// Requested shape.
        requested: Vec<usize>,
    },
    /// Operation expects a different dimensionality.
    BadRank {
        /// Expected rank.
        expected: usize,
        /// Actual shape.
        actual: Vec<usize>,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::BadReshape { elements, requested } => {
                write!(f, "cannot reshape {elements} elements into {requested:?}")
            }
            TensorError::BadRank { expected, actual } => {
                write!(f, "expected rank {expected}, got shape {actual:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
