#![warn(missing_docs)]
//! Dense `f32` tensors and the numeric kernels behind `ee-dl`.
//!
//! The paper's Challenge C1 calls for deep-learning architectures for
//! Sentinel imagery; since no TensorFlow exists in this workspace, this
//! crate implements the numeric substrate from scratch:
//!
//! * [`tensor`] — an n-dimensional row-major `f32` array with shape
//!   checking, explicit elementwise ops, 2-D matmul, reductions and
//!   `argmax`;
//! * [`kernels`] — the convolutional-network kernels: im2col convolution
//!   (forward and backward), 2×2 max pooling, ReLU, softmax and
//!   cross-entropy, all with hand-derived gradients;
//! * [`init`] — He/Xavier parameter initialisation from the workspace RNG.
//!
//! Everything is deterministic; no SIMD intrinsics or threads — matmul is
//! written cache-friendly (ikj loop order) which is fast enough for the
//! patch-scale models of the experiments.

pub mod init;
pub mod kernels;
pub mod tensor;

pub use tensor::Tensor;

/// Errors from tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
    },
    /// A reshape that changes the element count.
    BadReshape {
        /// Original element count.
        elements: usize,
        /// Requested shape.
        requested: Vec<usize>,
    },
    /// Operation expects a different dimensionality.
    BadRank {
        /// Expected rank.
        expected: usize,
        /// Actual shape.
        actual: Vec<usize>,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::BadReshape { elements, requested } => {
                write!(f, "cannot reshape {elements} elements into {requested:?}")
            }
            TensorError::BadRank { expected, actual } => {
                write!(f, "expected rank {expected}, got shape {actual:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
