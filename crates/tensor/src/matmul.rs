//! Cache-blocked, row-parallel matrix-multiply kernels.
//!
//! Three kernels share one contract — `out[i][j] = Σ_k a[i][k] * b[k][j]`
//! with the sum accumulated in ascending `k` order — so they are
//! bit-identical to each other on finite inputs:
//!
//! * [`matmul_serial_ref`] — the naive ikj triple loop. Slow, obviously
//!   correct; the reference every other kernel is tested against.
//! * [`matmul_into`] — the production kernel: an `MR`×`NR` register tile
//!   accumulated over `KC`-deep k-blocks, parallelised over contiguous
//!   row bands of the output. Each output element is owned by exactly one
//!   band, and within the tile the k loop still runs 0..k in order, so
//!   the result is bit-identical to the reference for *any* thread count.
//! * [`matmul_sparse_into`] — the old seed kernel's `a == 0.0` skip, kept
//!   as an opt-in variant for operands with proven sparsity (post-ReLU
//!   activations, one-hot targets). Skipping a zero term never changes
//!   the accumulator bits on finite inputs: `acc + 0.0 * b == acc`
//!   whenever `acc` is not `-0.0`, and a sum that started at `+0.0` can
//!   only become `-0.0` by adding `-0.0` terms, which the skip also
//!   drops. The tests assert exact equality with the dense reference.
//!
//! Tile sizes were chosen empirically on an AVX-512 Xeon: 8×32 output
//! tiles at `KC = 256`. On CPUs with `avx512f` the full tile runs through
//! a hand-written `std::arch` micro-kernel (the accumulator pinned in 16
//! zmm registers, separate multiply/add roundings) selected by runtime
//! feature detection, ~4× the naive loop for 512×512×512; everywhere
//! else the portable tiles lean on the autovectoriser (see
//! `.cargo/config.toml` for the `target-cpu` note).

use ee_util::par;

/// Output-tile rows held in registers.
pub const MR: usize = 8;
/// Output-tile columns held in registers.
pub const NR: usize = 32;
/// Half-width column tile used for ragged n-edges in `[16, 32)`.
pub const NR2: usize = 16;
/// Depth of one k-block (sized so an `NR`-wide stripe of `b` stays in L1).
pub const KC: usize = 256;

/// Work (in multiply-adds) below which threading is not worth a spawn.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Naive ikj reference: `out = a · b` for row-major `a: [m,k]`,
/// `b: [k,n]`, `out: [m,n]`. Accumulates each element in ascending `k`
/// order — the contract all other kernels reproduce bit-for-bit.
pub fn matmul_serial_ref(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Sparsity-aware variant of [`matmul_serial_ref`]: skips `a[i][k] == 0`
/// terms. Use only where zeros are structurally common (post-ReLU
/// activations, one-hot rows); bit-identical to the dense reference on
/// finite inputs.
pub fn matmul_sparse_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `rows`-high, `W`-wide register tile at `(i, j)` over `kb..kend`:
/// the accumulator lives in a stack array the autovectoriser maps onto
/// vector registers, loaded from and stored back to `out_band` once per
/// k-block. Accumulation is ascending-`k` per element, the association
/// every kernel here shares.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_at<const W: usize>(
    a_band: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    rows: usize,
    j: usize,
    kb: usize,
    kend: usize,
) {
    for r in 0..rows {
        let row = (i + r) * n + j;
        let mut acc = [0.0f32; W];
        acc.copy_from_slice(&out_band[row..row + W]);
        for kk in kb..kend {
            let av = a_band[(i + r) * k + kk];
            let b_row: &[f32; W] = b[kk * n + j..kk * n + j + W].try_into().unwrap();
            for (o, &bv) in acc.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
        out_band[row..row + W].copy_from_slice(&acc);
    }
}

/// Hand-written AVX-512 inner kernel for the full `MR`×`NR` tile.
///
/// The portable [`tile_at`] leans on the autovectoriser, which keeps the
/// 8×32 accumulator partly in memory; pinning it in 16 zmm registers
/// roughly doubles throughput. Each lane still computes
/// `acc = acc + (a * b)` with separate multiply and add roundings in
/// ascending-`k` order — the exact scalar operation sequence of
/// [`matmul_serial_ref`], so the result is bit-identical.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// Whether the running CPU supports the kernel (checked once, cached
    /// by `std` behind an atomic).
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("avx512f")
    }

    /// # Safety
    /// Caller guarantees `avx512f` is available and the `MR`×`NR` tile at
    /// `(i, j)` is fully in bounds for `a_band`/`b`/`out_band`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tile_8x32(
        a_band: &[f32],
        b: &[f32],
        out_band: &mut [f32],
        k: usize,
        n: usize,
        i: usize,
        j: usize,
        kb: usize,
        kend: usize,
    ) {
        debug_assert!((i + MR - 1) * n + j + NR <= out_band.len());
        debug_assert!((kend - 1) * n + j + NR <= b.len());
        debug_assert!((i + MR - 1) * k + kend <= a_band.len());
        let a_ptr = a_band.as_ptr();
        let b_ptr = b.as_ptr();
        let o_ptr = out_band.as_mut_ptr();
        let mut acc = [[_mm512_setzero_ps(); 2]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let p = o_ptr.add((i + r) * n + j);
            acc_r[0] = _mm512_loadu_ps(p);
            acc_r[1] = _mm512_loadu_ps(p.add(16));
        }
        for kk in kb..kend {
            let bp = b_ptr.add(kk * n + j);
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a_ptr.add((i + r) * k + kk));
                acc_r[0] = _mm512_add_ps(acc_r[0], _mm512_mul_ps(av, b0));
                acc_r[1] = _mm512_add_ps(acc_r[1], _mm512_mul_ps(av, b1));
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let p = o_ptr.add((i + r) * n + j);
            _mm512_storeu_ps(p, acc_r[0]);
            _mm512_storeu_ps(p.add(16), acc_r[1]);
        }
    }
}

/// Register-tiled kernel over one row band: `a_band: [band_rows, k]`,
/// `out_band: [band_rows, n]`, shared `b: [k, n]`.
///
/// Columns are covered by `NR`-wide tiles (hand-written AVX-512 where the
/// CPU has it, portable autovectorised code otherwise), then an
/// `NR2`-wide tile for edges in `[16, 32)`, then a plain loop for the
/// last `< 16` columns; rows by `MR`-high tiles with a shorter tile on
/// the ragged edge. All paths accumulate each output element in
/// ascending-`k` order with separate multiply and add roundings, so the
/// result is bit-identical to [`matmul_serial_ref`] regardless of which
/// tiles a shape lands on.
fn tile_band(a_band: &[f32], b: &[f32], out_band: &mut [f32], k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    let use_avx512 = avx512::available();
    let band_rows = out_band.len() / n.max(1);
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        while i < band_rows {
            let mh = MR.min(band_rows - i);
            let mut j = 0;
            while j < n {
                let rem = n - j;
                if rem >= NR {
                    #[cfg(target_arch = "x86_64")]
                    if use_avx512 && mh == MR {
                        // SAFETY: avx512f checked above; the tile is in
                        // bounds because rem >= NR and mh == MR.
                        unsafe {
                            avx512::tile_8x32(a_band, b, out_band, k, n, i, j, kb, kend);
                        }
                        j += NR;
                        continue;
                    }
                    tile_at::<NR>(a_band, b, out_band, k, n, i, mh, j, kb, kend);
                    j += NR;
                } else if rem >= NR2 {
                    tile_at::<NR2>(a_band, b, out_band, k, n, i, mh, j, kb, kend);
                    j += NR2;
                } else {
                    for r in 0..mh {
                        let row = (i + r) * n + j;
                        let out_row = &mut out_band[row..row + rem];
                        for kk in kb..kend {
                            let av = a_band[(i + r) * k + kk];
                            let b_row = &b[kk * n + j..kk * n + j + rem];
                            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                                *o += av * bv;
                            }
                        }
                    }
                    j += rem;
                }
            }
            i += mh;
        }
        kb = kend;
    }
}

/// Production matmul: `out = a · b`, cache-blocked and parallelised over
/// row bands on up to `threads` workers. Bit-identical to
/// [`matmul_serial_ref`] for any thread count.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    out.fill(0.0);
    if k == 0 {
        return;
    }
    let t = if m * k * n < PAR_THRESHOLD {
        1
    } else {
        threads.min(m.div_ceil(MR)).max(1)
    };
    par::for_rows_mut(out, n, t, |first_row, out_band| {
        let band_rows = out_band.len() / n;
        let a_band = &a[first_row * k..(first_row + band_rows) * k];
        tile_band(a_band, b, out_band, k, n);
    });
}

/// `out = a · bᵀ` with both operands row-major: `a: [m,k]`, `b: [n,k]`,
/// `out: [m,n]`. Each element is a dot product of two contiguous rows,
/// accumulated in ascending `k` order — bit-identical to
/// `matmul_serial_ref(a, transpose(b), ...)` without materialising the
/// transpose. This is the conv2d weight-gradient shape
/// (`dW = dOut · colsᵀ`).
pub fn matmul_abt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    fn random(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect()
    }

    /// Shapes chosen to exercise every edge: smaller than one tile, tile
    /// boundaries exactly, ragged in every dimension, k crossing KC.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (3, 5, 2),
        (MR, 4, NR),
        (MR + 1, 3, NR + 1),
        (2 * MR + 3, KC + 17, NR - 1),
        (17, 64, 65),
        (64, KC + 1, 33),
    ];

    #[test]
    fn tiled_matches_reference_bitwise_all_shapes_and_threads() {
        let mut rng = Rng::seed_from(7);
        for &(m, k, n) in SHAPES {
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            let mut reference = vec![0.0f32; m * n];
            matmul_serial_ref(&a, &b, &mut reference, m, k, n);
            for threads in [1usize, 2, 3, 4, 8] {
                let mut out = vec![f32::NAN; m * n];
                matmul_into(&a, &b, &mut out, m, k, n, threads);
                assert!(
                    out.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "({m},{k},{n}) threads={threads} not bit-identical"
                );
            }
        }
    }

    #[test]
    fn sparse_skip_is_bitwise_harmless_on_finite_inputs() {
        let mut rng = Rng::seed_from(11);
        for &(m, k, n) in SHAPES {
            // Half the entries exactly zero, like post-ReLU activations.
            let a: Vec<f32> = random(m * k, &mut rng)
                .into_iter()
                .map(|v| if v < 0.0 { 0.0 } else { v })
                .collect();
            let b = random(k * n, &mut rng);
            let mut dense = vec![0.0f32; m * n];
            let mut sparse = vec![0.0f32; m * n];
            matmul_serial_ref(&a, &b, &mut dense, m, k, n);
            matmul_sparse_into(&a, &b, &mut sparse, m, k, n);
            assert!(
                dense.iter().zip(&sparse).all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n}) sparse variant diverged"
            );
        }
    }

    #[test]
    fn abt_matches_explicit_transpose_bitwise() {
        let mut rng = Rng::seed_from(13);
        for &(m, k, n) in SHAPES {
            let a = random(m * k, &mut rng);
            let bt = random(n * k, &mut rng); // b stored as [n, k]
            // Materialise b = btᵀ as [k, n] for the reference.
            let mut b = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b[kk * n + j] = bt[j * k + kk];
                }
            }
            let mut reference = vec![0.0f32; m * n];
            matmul_serial_ref(&a, &b, &mut reference, m, k, n);
            let mut out = vec![0.0f32; m * n];
            matmul_abt_into(&a, &bt, &mut out, m, k, n);
            assert!(
                out.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n}) abt kernel diverged"
            );
        }
    }

    #[test]
    fn degenerate_dims() {
        let mut out = vec![1.0f32; 6];
        // k == 0: product of [2,0] x [0,3] is the zero matrix.
        matmul_into(&[], &[], &mut out, 2, 0, 3, 4);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn known_product() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut out = vec![0.0f32; 4];
        matmul_into(&a, &b, &mut out, 2, 3, 2, 4);
        assert_eq!(out, vec![58.0, 64.0, 139.0, 154.0]);
    }
}
