//! The n-dimensional `f32` array.

use crate::TensorError;

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Wrap a buffer; its length must match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let n: usize = shape.iter().product();
        if data.len() != n {
            return Err(TensorError::BadReshape {
                elements: data.len(),
                requested: shape.to_vec(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::BadReshape {
                elements: self.data.len(),
                requested: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// 2-D element access (rank-2 tensors).
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// 2-D element write.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j] = v;
    }

    /// 4-D element access (`[n, c, h, w]` layout).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cs, hs, ws) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// 4-D element write.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cs, hs, ws) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w] = v;
    }

    fn check_same_shape(&self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(())
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// In-place `self += alpha * other` (the optimiser/allreduce hot path).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Scalar multiply.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// In-place scalar multiply.
    pub fn scale_mut(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    fn check_matmul_shapes(&self, other: &Tensor) -> Result<(usize, usize, usize), TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::BadRank {
                expected: 2,
                actual: self.shape.clone(),
            });
        }
        if other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok((self.shape[0], self.shape[1], other.shape[1]))
    }

    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] → [m, n]`.
    ///
    /// Dispatches to the cache-blocked, row-band-parallel kernel in
    /// [`crate::matmul`] with the default worker count
    /// ([`ee_util::par::available_threads`]). The result is bit-identical
    /// to [`Tensor::matmul_serial_ref`] for any thread count.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_with_threads(other, ee_util::par::available_threads())
    }

    /// [`Tensor::matmul`] with an explicit worker budget.
    pub fn matmul_with_threads(
        &self,
        other: &Tensor,
        threads: usize,
    ) -> Result<Tensor, TensorError> {
        let (m, k, n) = self.check_matmul_shapes(other)?;
        let mut out = vec![0.0f32; m * n];
        crate::matmul::matmul_into(&self.data, &other.data, &mut out, m, k, n, threads);
        Ok(Tensor {
            shape: vec![m, n],
            data: out,
        })
    }

    /// The naive single-thread ikj reference matmul. Kept (and exported)
    /// as the bit-identity baseline for the blocked/parallel kernel; use
    /// [`Tensor::matmul`] everywhere else.
    pub fn matmul_serial_ref(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, n) = self.check_matmul_shapes(other)?;
        let mut out = vec![0.0f32; m * n];
        crate::matmul::matmul_serial_ref(&self.data, &other.data, &mut out, m, k, n);
        Ok(Tensor {
            shape: vec![m, n],
            data: out,
        })
    }

    /// Sparsity-aware matmul that skips zero entries of `self`. Only
    /// worth it when `self` has structural zeros (post-ReLU activations,
    /// one-hot targets); bit-identical to the dense kernels on finite
    /// inputs.
    pub fn matmul_sparse(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, n) = self.check_matmul_shapes(other)?;
        let mut out = vec![0.0f32; m * n];
        crate::matmul::matmul_sparse_into(&self.data, &other.data, &mut out, m, k, n);
        Ok(Tensor {
            shape: vec![m, n],
            data: out,
        })
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::BadRank {
                expected: 2,
                actual: self.shape.clone(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Tensor {
            shape: vec![n, m],
            data: out,
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Index of the maximum element of a 1-D view of row `i` of a rank-2
    /// tensor (classification argmax over logits).
    pub fn argmax_row(&self, i: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        let row = &self.data[i * n..(i + 1) * n];
        row.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0)
    }

    /// Copy rows `[start, end)` of a rank-2 tensor (mini-batch slicing).
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor, TensorError> {
        if self.shape.len() < 2 {
            return Err(TensorError::BadRank {
                expected: 2,
                actual: self.shape.clone(),
            });
        }
        let row: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Ok(Tensor {
            shape,
            data: self.data[start * row..end * row].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.at2(2, 1), 5.0);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::full(&[2, 2], 2.0);
        assert_eq!(a.add(&b).unwrap().data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.scale(0.5).data(), &[0.5, 1.0, 1.5, 2.0]);
        let c = Tensor::zeros(&[2, 3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        acc.axpy(0.5, &g).unwrap();
        acc.axpy(0.5, &g).unwrap();
        assert_eq!(acc.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(b.matmul(&b).is_err(), "inner dims must agree");
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![3.0, 1.0, 4.0, 1.0]).unwrap();
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 5.0);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn matmul_transpose_identity_property() {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 0.5, 3.0, 1.0, -1.0]).unwrap();
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|i| (i as f32) * 0.3 - 1.0).collect())
            .unwrap();
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn argmax_row_picks_peak() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.8]).unwrap();
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 2);
    }

    #[test]
    fn slice_rows_takes_batches() {
        let t = Tensor::from_vec(&[4, 2], (0..8).map(|i| i as f32).collect()).unwrap();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 3.0, 4.0, 5.0]);
        // Works on rank-4 too (batch of images).
        let img = Tensor::zeros(&[4, 3, 2, 2]);
        let s = img.slice_rows(0, 2).unwrap();
        assert_eq!(s.shape(), &[2, 3, 2, 2]);
    }

    #[test]
    fn index4_layout() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        t.set4(1, 2, 3, 4, 42.0);
        assert_eq!(t.at4(1, 2, 3, 4), 42.0);
        // Row-major: last axis contiguous.
        #[allow(clippy::identity_op)] // spell out the full row-major index formula
        let flat = ((1 * 3 + 2) * 4 + 3) * 5 + 4;
        assert_eq!(t.data()[flat], 42.0);
    }
}
