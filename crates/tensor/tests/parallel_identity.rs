//! Bit-identity of the parallel kernels against their serial references.
//!
//! Determinism is a stated design invariant of this workspace (DESIGN.md):
//! every experiment must reproduce bit-for-bit, including on machines with
//! different core counts. These tests therefore compare raw `f32` bits —
//! not tolerances — between the blocked/parallel kernels and the serial
//! reference implementations, across shapes chosen to hit every edge
//! case: block sizes that don't divide the problem, 1×1 kernels, pad > 0,
//! batch 1.

use ee_tensor::kernels::{
    conv2d_backward_ref, conv2d_backward_with_threads, conv2d_forward_ref,
    conv2d_forward_with_threads,
};
use ee_tensor::Tensor;
use ee_util::Rng;

const THREADS: &[usize] = &[1, 2, 3, 4, 8];

fn random_tensor(shape: &[usize], rng: &mut Rng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| rng.normal(0.0, 1.0) as f32).collect()).unwrap()
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn matmul_parallel_is_bit_identical_across_odd_shapes() {
    let mut rng = Rng::seed_from(100);
    // (m, k, n): below one tile, ragged tiles, k crossing the KC block.
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 130, 1),
        (5, 3, 7),
        (8, 256, 32),
        (9, 257, 33),
        (31, 300, 63),
        (64, 64, 64),
    ] {
        let a = random_tensor(&[m, k], &mut rng);
        let b = random_tensor(&[k, n], &mut rng);
        let reference = a.matmul_serial_ref(&b).unwrap();
        for &t in THREADS {
            let got = a.matmul_with_threads(&b, t).unwrap();
            assert_bits_eq(&got, &reference, &format!("matmul {m}x{k}x{n} t={t}"));
        }
        // The default entry point too, whatever thread count it picks.
        assert_bits_eq(&a.matmul(&b).unwrap(), &reference, "matmul default");
    }
}

#[test]
fn matmul_sparse_is_bit_identical_on_one_hot_rows() {
    // One-hot targets are the canonical proven-sparse operand.
    let (m, k, n) = (16usize, 10usize, 12usize);
    let mut rng = Rng::seed_from(101);
    let mut onehot = vec![0.0f32; m * k];
    for i in 0..m {
        onehot[i * k + (i * 7) % k] = 1.0;
    }
    let a = Tensor::from_vec(&[m, k], onehot).unwrap();
    let b = random_tensor(&[k, n], &mut rng);
    assert_bits_eq(
        &a.matmul_sparse(&b).unwrap(),
        &a.matmul_serial_ref(&b).unwrap(),
        "sparse matmul",
    );
}

/// Conv shapes exercising: batch 1, 1×1 kernels, pad 0 and pad > 1,
/// non-square images, channel counts that make ragged column matrices.
fn conv_cases() -> Vec<(Vec<usize>, Vec<usize>, usize)> {
    vec![
        (vec![1, 1, 1, 1], vec![1, 1, 1, 1], 0), // degenerate minimum
        (vec![1, 3, 5, 5], vec![4, 3, 3, 3], 1), // batch 1, same-pad
        (vec![2, 1, 4, 6], vec![3, 1, 1, 1], 0), // 1x1 kernel, non-square
        (vec![3, 2, 5, 4], vec![2, 2, 3, 3], 2), // pad 2 > kernel reach
        (vec![5, 4, 7, 7], vec![6, 4, 3, 3], 1), // batch not divisible by threads
        (vec![8, 13, 8, 8], vec![16, 13, 3, 3], 1), // E5 patch shape
    ]
}

#[test]
fn conv2d_forward_parallel_is_bit_identical() {
    let mut rng = Rng::seed_from(200);
    for (xs, ws, pad) in conv_cases() {
        let x = random_tensor(&xs, &mut rng);
        let w = random_tensor(&ws, &mut rng).scale(0.3);
        let b = random_tensor(&[ws[0]], &mut rng).scale(0.1);
        let reference = conv2d_forward_ref(&x, &w, &b, pad).unwrap();
        for &t in THREADS {
            let got = conv2d_forward_with_threads(&x, &w, &b, pad, t).unwrap();
            assert_bits_eq(&got, &reference, &format!("conv fwd {xs:?} pad={pad} t={t}"));
        }
    }
}

#[test]
fn conv2d_backward_parallel_is_bit_identical() {
    let mut rng = Rng::seed_from(300);
    for (xs, ws, pad) in conv_cases() {
        let x = random_tensor(&xs, &mut rng);
        let w = random_tensor(&ws, &mut rng).scale(0.3);
        let b = random_tensor(&[ws[0]], &mut rng).scale(0.1);
        let y = conv2d_forward_ref(&x, &w, &b, pad).unwrap();
        let dout = random_tensor(y.shape(), &mut rng);
        let (dx_ref, dw_ref, db_ref) = conv2d_backward_ref(&x, &w, &dout, pad).unwrap();
        for &t in THREADS {
            let (dx, dw, db) = conv2d_backward_with_threads(&x, &w, &dout, pad, t).unwrap();
            let tag = format!("conv bwd {xs:?} pad={pad} t={t}");
            assert_bits_eq(&dx, &dx_ref, &format!("{tag}: dx"));
            assert_bits_eq(&dw, &dw_ref, &format!("{tag}: dw"));
            assert_bits_eq(&db, &db_ref, &format!("{tag}: db"));
        }
    }
}

#[test]
fn conv_gradients_match_finite_differences_with_threading() {
    // The analytic gradients stay correct (not just self-consistent) when
    // computed on multiple workers.
    let mut rng = Rng::seed_from(400);
    let x = random_tensor(&[3, 2, 5, 5], &mut rng);
    let w = random_tensor(&[3, 2, 3, 3], &mut rng).scale(0.3);
    let b = random_tensor(&[3], &mut rng).scale(0.1);
    let pad = 1;
    let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
        conv2d_forward_with_threads(x, w, b, pad, 4).unwrap().sum()
    };
    let y = conv2d_forward_with_threads(&x, &w, &b, pad, 4).unwrap();
    let dout = Tensor::full(y.shape(), 1.0);
    let (dx, dw, _db) = conv2d_backward_with_threads(&x, &w, &dout, pad, 4).unwrap();
    let eps = 1e-2f32;
    for &i in &[0usize, 11, 57, 149] {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let num = (loss(&xp, &w, &b) - loss(&x, &w, &b)) / eps;
        assert!(
            (num - dx.data()[i]).abs() < 0.05,
            "dx[{i}]: numeric {num} vs analytic {}",
            dx.data()[i]
        );
    }
    for &i in &[0usize, 5, 17, 53] {
        let mut wp = w.clone();
        wp.data_mut()[i] += eps;
        let num = (loss(&x, &wp, &b) - loss(&x, &w, &b)) / eps;
        assert!(
            (num - dw.data()[i]).abs() < 0.5,
            "dw[{i}]: numeric {num} vs analytic {}",
            dw.data()[i]
        );
    }
}
