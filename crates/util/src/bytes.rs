//! Byte-size arithmetic and formatting for the experiment reports.

/// A byte count with human-readable formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Kibibytes.
    pub const fn kib(n: u64) -> Self {
        Self(n * 1024)
    }

    /// Mebibytes.
    pub const fn mib(n: u64) -> Self {
        Self(n * 1024 * 1024)
    }

    /// Gibibytes.
    pub const fn gib(n: u64) -> Self {
        Self(n * 1024 * 1024 * 1024)
    }

    /// Raw count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: Self) -> Self {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl std::fmt::Display for ByteSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
        let mut value = self.0 as f64;
        let mut unit = 0;
        while value >= 1024.0 && unit < UNITS.len() - 1 {
            value /= 1024.0;
            unit += 1;
        }
        if unit == 0 {
            write!(f, "{} B", self.0)
        } else {
            write!(f, "{:.2} {}", value, UNITS[unit])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ByteSize(0).to_string(), "0 B");
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize::kib(1).to_string(), "1.00 KiB");
        assert_eq!(ByteSize::mib(5).to_string(), "5.00 MiB");
        assert_eq!(ByteSize::gib(3).to_string(), "3.00 GiB");
        assert_eq!(ByteSize(1536).to_string(), "1.50 KiB");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ByteSize::kib(1) + ByteSize(24), ByteSize(1048));
        let total: ByteSize = [ByteSize(1), ByteSize(2), ByteSize(3)].into_iter().sum();
        assert_eq!(total, ByteSize(6));
    }
}
