//! An incremental HTTP/1.1 **response** decoder for nonblocking client
//! sockets.
//!
//! Grown out of the open-loop loadgen's private decoder and promoted
//! here so the serve tier's router can reuse it: the scatter-gather
//! shard-client pool drives many upstream sockets from one poll loop and
//! needs exactly this shape — feed bytes as they arrive, learn when a
//! full message (content-length or chunked framing) is present, then
//! extract the de-chunked body.
//!
//! The decoder accumulates the raw wire bytes and walks the chunk
//! framing from the head on each poll; bodies on the paths that use it
//! are small (JSON results, tiles), so the rescan is noise compared to
//! the syscalls around it.

/// A malformed response: bad status line, unparsable framing headers, or
/// broken chunk framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadResponse(pub String);

impl std::fmt::Display for BadResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed HTTP response: {}", self.0)
    }
}

impl std::error::Error for BadResponse {}

/// Incremental HTTP/1.1 response decoder: feed bytes as they arrive,
/// get `Some(status)` once the full message is present.
pub struct ResponseDecoder {
    buf: Vec<u8>,
    head_end: usize,
    status: u16,
    chunked: bool,
    content_length: usize,
    headers: Vec<(String, String)>,
    complete: bool,
}

impl ResponseDecoder {
    /// A decoder at the start of a message.
    pub fn new() -> ResponseDecoder {
        ResponseDecoder {
            buf: Vec::new(),
            head_end: 0,
            status: 0,
            chunked: false,
            content_length: 0,
            headers: Vec::new(),
            complete: false,
        }
    }

    /// Append bytes; `Ok(Some(status))` when the response is complete,
    /// `Err` on malformed framing.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<u16>, BadResponse> {
        self.buf.extend_from_slice(bytes);
        if self.head_end == 0 {
            let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") else {
                return Ok(None);
            };
            self.head_end = pos + 4;
            let head = std::str::from_utf8(&self.buf[..pos])
                .map_err(|_| BadResponse("head is not UTF-8".into()))?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().ok_or_else(|| BadResponse("empty head".into()))?;
            self.status = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| BadResponse(format!("bad status line {status_line:?}")))?;
            for line in lines {
                let Some((name, value)) = line.split_once(':') else {
                    continue;
                };
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                    self.chunked = true;
                } else if name == "content-length" {
                    self.content_length = value
                        .parse()
                        .map_err(|_| BadResponse(format!("bad content-length {value:?}")))?;
                }
                self.headers.push((name, value.to_string()));
            }
        }
        if !self.chunked {
            if self.buf.len() >= self.head_end + self.content_length {
                self.complete = true;
                return Ok(Some(self.status));
            }
            return Ok(None);
        }
        // Walk the chunk framing from the head each time; bodies on the
        // paths that use this decoder are small, so the rescan is noise.
        let mut at = self.head_end;
        loop {
            let Some(nl) = self.buf[at..].windows(2).position(|w| w == b"\r\n") else {
                return Ok(None);
            };
            let size_line = std::str::from_utf8(&self.buf[at..at + nl])
                .map_err(|_| BadResponse("chunk size is not UTF-8".into()))?;
            // Ignore chunk extensions (";…") per RFC 9112 §7.1.1.
            let size_hex = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_hex, 16)
                .map_err(|_| BadResponse(format!("bad chunk size {size_line:?}")))?;
            let data_start = at + nl + 2;
            let data_end = data_start + size + 2; // chunk bytes + CRLF
            if self.buf.len() < data_end {
                return Ok(None);
            }
            if size == 0 {
                self.complete = true;
                return Ok(Some(self.status));
            }
            at = data_end;
        }
    }

    /// Status code, valid once the head has been parsed (`0` before).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// True once [`feed`](Self::feed) has seen the whole message.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// True when any body byte (anything past the head) has arrived —
    /// the point past which a failed upstream exchange can no longer be
    /// transparently retried on a fresh connection.
    pub fn started_body(&self) -> bool {
        self.head_end > 0 && self.buf.len() > self.head_end
    }

    /// First value of a (lower-cased) header, once the head is parsed.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// All parsed headers (lower-cased names), in wire order.
    pub fn headers(&self) -> &[(String, String)] {
        &self.headers
    }

    /// Whether the server keeps the connection open after this response
    /// (HTTP/1.1 default unless `connection: close`).
    pub fn is_keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The de-chunked body of a **complete** response. Returns the body
    /// bytes with all transfer framing removed; panics if the message is
    /// not complete yet (a state error in the caller, not a wire error).
    pub fn body(&self) -> Vec<u8> {
        assert!(self.complete, "body() before the response completed");
        if !self.chunked {
            return self.buf[self.head_end..self.head_end + self.content_length].to_vec();
        }
        let mut body = Vec::new();
        let mut at = self.head_end;
        loop {
            let nl = self.buf[at..]
                .windows(2)
                .position(|w| w == b"\r\n")
                .expect("complete message walks cleanly");
            let size_line = std::str::from_utf8(&self.buf[at..at + nl]).expect("checked in feed");
            let size_hex = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_hex, 16).expect("checked in feed");
            if size == 0 {
                return body;
            }
            let data_start = at + nl + 2;
            body.extend_from_slice(&self.buf[data_start..data_start + size]);
            at = data_start + size + 2;
        }
    }
}

impl Default for ResponseDecoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_bodies_decode_byte_at_a_time() {
        let wire = b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\ncontent-type: text/plain\r\n\r\nhello";
        let mut dec = ResponseDecoder::new();
        let mut done = None;
        for b in wire.iter() {
            if let Some(s) = dec.feed(std::slice::from_ref(b)).unwrap() {
                done = Some(s);
            }
        }
        assert_eq!(done, Some(200));
        assert!(dec.is_complete());
        assert_eq!(dec.body(), b"hello");
        assert_eq!(dec.header("content-type"), Some("text/plain"));
        assert!(dec.is_keep_alive());
    }

    #[test]
    fn chunked_bodies_decode_and_dechunk() {
        let wire =
            b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n3\r\nwor\r\n0\r\n\r\n";
        // All at once.
        let mut dec = ResponseDecoder::new();
        assert_eq!(dec.feed(wire).unwrap(), Some(200));
        assert_eq!(dec.body(), b"hellowor");
        // Split mid-chunk.
        let mut dec = ResponseDecoder::new();
        assert_eq!(dec.feed(&wire[..40]).unwrap(), None);
        assert_eq!(dec.feed(&wire[40..]).unwrap(), Some(200));
        assert_eq!(dec.body(), b"hellowor");
        // Chunk extensions are ignored.
        let ext = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n5;x=1\r\nhello\r\n0\r\n\r\n";
        let mut dec = ResponseDecoder::new();
        assert_eq!(dec.feed(ext).unwrap(), Some(200));
        assert_eq!(dec.body(), b"hello");
    }

    #[test]
    fn malformed_framing_errors_instead_of_hanging() {
        let mut dec = ResponseDecoder::new();
        assert!(dec
            .feed(b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n")
            .is_err());
        let mut dec = ResponseDecoder::new();
        assert!(dec.feed(b"NONSENSE\r\n\r\n").is_err());
        let mut dec = ResponseDecoder::new();
        assert!(dec
            .feed(b"HTTP/1.1 200 OK\r\ncontent-length: pony\r\n\r\n")
            .is_err());
    }

    #[test]
    fn connection_close_and_body_progress_are_visible() {
        let mut dec = ResponseDecoder::new();
        dec.feed(b"HTTP/1.1 503 Service Unavailable\r\nconnection: close\r\ncontent-length: 2\r\n\r\n")
            .unwrap();
        assert!(!dec.is_complete());
        assert!(!dec.started_body());
        assert_eq!(dec.status(), 503);
        assert!(!dec.is_keep_alive());
        assert_eq!(dec.feed(b"no").unwrap(), Some(503));
        assert!(dec.started_body());
        assert_eq!(dec.body(), b"no");
    }

    #[test]
    fn empty_sized_body_completes_at_head_end() {
        let mut dec = ResponseDecoder::new();
        assert_eq!(
            dec.feed(b"HTTP/1.1 304 Not Modified\r\ncontent-length: 0\r\n\r\n")
                .unwrap(),
            Some(304)
        );
        assert_eq!(dec.body(), b"");
    }
}
