//! Minimal hand-rolled JSON: a value tree, an emitter and a
//! recursive-descent parser.
//!
//! Replaces the external `serde`/`serde_json` dependency for the two
//! places the workspace actually needs JSON — catalogue product records
//! and harness benchmark output — so the tier-1 build works with zero
//! network access. Deliberately small:
//!
//! * objects preserve insertion order (deterministic emission);
//! * numbers are `f64` (integers round-trip exactly up to 2^53, which
//!   covers every counter in this repository);
//! * strings escape `"` `\\` and control characters on output and accept
//!   all standard escapes (including `\uXXXX` surrogate pairs) on input.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and emitted as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v)
                if v.fract() == 0.0 && v.abs() <= 9.007_199_254_740_992e15 =>
            {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Emit compact JSON (no whitespace).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    /// Emit human-readable JSON with two-space indentation.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.emit_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_number(*v)),
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    fn emit_pretty_into(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.emit_pretty_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    emit_string(k, out);
                    out.push_str(": ");
                    v.emit_pretty_into(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            other => other.emit_into(out),
        }
    }
}

/// Format a JSON number: shortest round-trip representation, with
/// non-finite values (which JSON cannot express) mapped to `null`.
pub fn fmt_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral values without a fractional part or exponent.
        format!("{}", v as i64)
    } else {
        // Rust's float Display is the shortest string that round-trips.
        let s = format!("{v}");
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth accepted by [`parse`]. The parser is
/// recursive-descent, so without a bound a hostile wire payload of
/// `[[[[…` could exhaust the thread stack; 128 levels is far beyond any
/// document this workspace produces.
pub const MAX_DEPTH: usize = 128;

/// Parse a JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Bulk-copy the whole run of unescaped bytes up to
                    // the next quote or escape, validated as UTF-8 once.
                    // (Validating from `pos` to end-of-input per character
                    // turns parsing quadratic — megabyte documents took
                    // tens of seconds.)
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            // Rust parses "1e999" to +inf rather than failing; JSON has no
            // non-finite numbers, so an overflowing literal from the wire
            // is a malformed document, not infinity.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(self.err("number out of f64 range")),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{0001}".to_string());
        assert_eq!(v.emit(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_number(0.0), "0");
        assert_eq!(fmt_number(-3.0), "-3");
        assert_eq!(fmt_number(42.5), "42.5");
        // Rust's float Display is positional, never exponent notation.
        assert_eq!(fmt_number(1.0e-7), "0.0000001");
        assert_eq!(fmt_number(f64::NAN), "null");
        assert_eq!(fmt_number(f64::INFINITY), "null");
        // Integral counters up to 2^53 stay exact.
        assert_eq!(fmt_number(4_200_000_000_000.0), "4200000000000");
    }

    #[test]
    fn emit_parse_roundtrip() {
        let v = Json::obj(vec![
            ("id", Json::Str("S2A_MSIL1C_2017".into())),
            ("size", Json::Num(123456789.0)),
            ("cloud", Json::Num(0.125)),
            ("tags", Json::Arr(vec![Json::Str("π ≈ 3".into()), Json::Null])),
            ("ok", Json::Bool(true)),
            (
                "footprint",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(-4.5), Json::Num(39.25)]),
                    Json::Arr(vec![Json::Num(12.0), Json::Num(-1.75)]),
                ]),
            ),
        ]);
        let text = v.emit();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = v.emit_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_standard_escapes_and_surrogates() {
        let v = parse(r#""é\n🌍""#).unwrap();
        assert_eq!(v, Json::Str("é\n🌍".to_string()));
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.emit(), r#"{"z":1,"a":2,"m":3}"#);
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1,}"#).is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        let e = parse(r#"{"a" 1}"#).unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn control_chars_roundtrip() {
        // Every C0 control character survives emit → parse, as does DEL
        // (which JSON passes through raw).
        let s: String = (0u32..0x20).chain([0x7f]).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Json::Str(s.clone());
        let emitted = v.emit();
        assert!(
            emitted.bytes().all(|b| b == 0x7f || b >= 0x20),
            "no raw C0 control bytes on the wire: {emitted:?}"
        );
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        // \u escapes (BMP and surrogate pairs) parse to the same string
        // the raw-UTF-8 emission re-parses to.
        let parsed = parse(r#""éA🌍€""#).unwrap();
        assert_eq!(parsed, Json::Str("éA🌍€".to_string()));
        assert_eq!(parse(&parsed.emit()).unwrap(), parsed);
        // Lone or malformed surrogates are rejected, not mangled.
        assert!(parse(r#""\ud83c""#).is_err());
        assert!(parse(r#""\ud83cx""#).is_err());
        assert!(parse(r#""\ud83cA""#).is_err());
        assert!(parse(r#""\udf0d""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn nonfinite_floats_emit_null_and_never_parse() {
        // Emission maps non-finite to null (valid JSON, documented loss);
        // parsing never manufactures a non-finite value, even from
        // overflowing literals.
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).emit(), "null");
        assert!(parse("1e999").is_err(), "overflow must not parse to inf");
        assert!(parse("-1e999").is_err());
        assert!(parse("1e308").is_ok(), "in-range exponents still parse");
        for (k, v) in [("a", f64::INFINITY), ("b", f64::NAN)] {
            let doc = Json::obj(vec![(k, Json::Num(v))]).emit();
            let back = parse(&doc).unwrap();
            assert_eq!(back.get(k), Some(&Json::Null));
        }
    }

    #[test]
    fn integers_roundtrip_to_the_53_bit_limit() {
        // Counters cross the wire as JSON numbers; every integer with an
        // exact f64 representation must round-trip bit-for-bit.
        for v in [
            0i64,
            1,
            -1,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            (1i64 << 53) - 1,
            1i64 << 53,
            -(1i64 << 53),
        ] {
            let emitted = Json::Num(v as f64).emit();
            let back = parse(&emitted).unwrap();
            assert_eq!(back.as_i64(), Some(v), "via {emitted}");
        }
        assert_eq!(
            parse(&Json::Num(((1u64 << 53) - 1) as f64).emit()).unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        // Beyond 2^53 the accessors refuse rather than silently round.
        assert_eq!(Json::Num(1.8e19).as_u64(), None);
        assert_eq!(Json::Num(9.3e18).as_i64(), None);
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok(), "exactly MAX_DEPTH levels parse");
        let too_deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&too_deep).is_err());
        let hostile = "[".repeat(200_000);
        assert!(parse(&hostile).is_err(), "hostile wire input errors cleanly");
        // Depth is container nesting, not document length: a long flat
        // array is fine.
        let flat = format!("[{}]", vec!["0"; 10_000].join(","));
        assert!(parse(&flat).is_ok());
    }

    #[test]
    fn integer_accessors_guard_range_and_fraction() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_i64(), Some(-1));
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn megabyte_string_documents_parse_in_linear_time() {
        // Regression: the string scanner used to UTF-8-validate from the
        // cursor to end-of-input for every character, making large
        // documents quadratic (a 1.3 MB query result took ~27 s). The
        // bulk-run path must keep escapes and multibyte runs intact.
        let row = "[\"http://e/f17\",\"POINT (12.5 ± ε 83.7)\",\"a\\\"b\\nc\"]";
        let doc = format!("[{}]", vec![row; 20_000].join(","));
        assert!(doc.len() > 1_000_000);
        let t0 = std::time::Instant::now();
        let v = parse(&doc).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "megabyte parse must be far from quadratic: {:?}",
            t0.elapsed()
        );
        let rows = v.as_arr().unwrap();
        assert_eq!(rows.len(), 20_000);
        let first = rows[0].as_arr().unwrap();
        assert_eq!(first[0].as_str(), Some("http://e/f17"));
        assert_eq!(first[1].as_str(), Some("POINT (12.5 ± ε 83.7)"));
        assert_eq!(first[2].as_str(), Some("a\"b\nc"));
    }
}
