#![warn(missing_docs)]
//! Shared utilities for the ExtremeEarth workspace.
//!
//! Everything in this crate is deliberately dependency-free and fully
//! deterministic: all randomness flows from explicitly-seeded generators so
//! that every experiment in the repository reproduces bit-for-bit.
//!
//! Modules:
//! * [`rng`] — `SplitMix64` / `Xoshiro256PlusPlus` pseudo-random generators
//!   with the handful of distributions the simulators need.
//! * [`noise`] — 2-D value noise and fractal Brownian motion, used by the
//!   synthetic-world generator.
//! * [`stats`] — summary statistics, confusion matrices and classification
//!   metrics shared by the evaluation harness.
//! * [`bytes`] — human-readable byte-size formatting for reports.
//! * [`timeline`] — virtual-time primitives shared by the discrete-event
//!   simulators.
//! * [`par`] — the workspace's single threading idiom: chunked scoped
//!   fan-out with deterministic fixed-order reduction.
//! * [`json`] — a small JSON value tree, emitter and parser (no external
//!   serialisation crates).
//! * [`poll`] — `poll(2)` / wake-pipe / rlimit wrappers for the
//!   event-driven serve tier (declared `extern "C"`, no libc crate).
//! * [`ring`] — the consistent-hash ring shared by the shard data
//!   loaders and the scatter-gather router tier.
//! * [`http1`] — an incremental HTTP/1.1 response decoder for
//!   nonblocking client sockets (the loadgen fleet and the router's
//!   shard-client pool).

pub mod bytes;
pub mod http1;
pub mod json;
pub mod noise;
pub mod par;
pub mod poll;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod timeline;

pub use rng::Rng;
