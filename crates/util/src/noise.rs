//! 2-D value noise and fractal Brownian motion.
//!
//! The synthetic-world generator uses fBm for terrain elevation, soil
//! texture, sea-ice concentration fields and cloud masks. Value noise (a
//! hash-based lattice noise with smooth interpolation) is sufficient for
//! those purposes and is far simpler than gradient noise while remaining
//! fully deterministic in the seed.

/// Hash a lattice point together with a seed into a `f64` in `[-1, 1]`.
#[inline]
fn lattice(seed: u64, xi: i64, yi: i64) -> f64 {
    // A 2-D variant of the splitmix finaliser over the packed coordinates.
    let mut h = seed
        ^ (xi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (yi as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// Quintic smoothstep used for C2-continuous interpolation.
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// A seeded 2-D value-noise field.
///
/// `sample` is smooth (C2) and returns values in roughly `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Create a noise field from a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Sample the field at `(x, y)`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let xf = x.floor();
        let yf = y.floor();
        let xi = xf as i64;
        let yi = yf as i64;
        let tx = fade(x - xf);
        let ty = fade(y - yf);
        let v00 = lattice(self.seed, xi, yi);
        let v10 = lattice(self.seed, xi + 1, yi);
        let v01 = lattice(self.seed, xi, yi + 1);
        let v11 = lattice(self.seed, xi + 1, yi + 1);
        let a = v00 + tx * (v10 - v00);
        let b = v01 + tx * (v11 - v01);
        a + ty * (b - a)
    }
}

/// Fractal Brownian motion: a sum of octaves of [`ValueNoise`].
#[derive(Debug, Clone, Copy)]
pub struct Fbm {
    base: ValueNoise,
    /// Number of octaves to sum (>= 1).
    pub octaves: u32,
    /// Frequency multiplier between octaves (typically 2.0).
    pub lacunarity: f64,
    /// Amplitude multiplier between octaves (typically 0.5).
    pub gain: f64,
    /// Base frequency applied to input coordinates.
    pub frequency: f64,
}

impl Fbm {
    /// fBm with conventional parameters (4 octaves, lacunarity 2, gain 0.5).
    pub fn new(seed: u64, frequency: f64) -> Self {
        Self {
            base: ValueNoise::new(seed),
            octaves: 4,
            lacunarity: 2.0,
            gain: 0.5,
            frequency,
        }
    }

    /// Builder-style octave override.
    pub fn with_octaves(mut self, octaves: u32) -> Self {
        self.octaves = octaves.max(1);
        self
    }

    /// Sample the fractal field at `(x, y)`; output is approximately in
    /// `[-1, 1]` (normalised by the geometric amplitude sum).
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let mut freq = self.frequency;
        let mut amp = 1.0;
        let mut total = 0.0;
        let mut norm = 0.0;
        for octave in 0..self.octaves {
            // Offset each octave so lattice artefacts do not align.
            let off = octave as f64 * 19.19;
            total += amp * self.base.sample(x * freq + off, y * freq - off);
            norm += amp;
            freq *= self.lacunarity;
            amp *= self.gain;
        }
        total / norm
    }

    /// Sample mapped to `[0, 1]`.
    #[inline]
    pub fn sample01(&self, x: f64, y: f64) -> f64 {
        (self.sample(x, y) * 0.5 + 0.5).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let n1 = ValueNoise::new(99);
        let n2 = ValueNoise::new(99);
        for i in 0..100 {
            let x = i as f64 * 0.37;
            let y = i as f64 * 0.71;
            assert_eq!(n1.sample(x, y), n2.sample(x, y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let n1 = ValueNoise::new(1);
        let n2 = ValueNoise::new(2);
        let diffs = (0..100)
            .filter(|&i| {
                let x = i as f64 * 0.37;
                (n1.sample(x, x) - n2.sample(x, x)).abs() > 1e-12
            })
            .count();
        assert!(diffs > 90);
    }

    #[test]
    fn noise_is_bounded() {
        let n = ValueNoise::new(5);
        for i in 0..200 {
            for j in 0..200 {
                let v = n.sample(i as f64 * 0.13, j as f64 * 0.17);
                assert!((-1.0..=1.0).contains(&v), "{v} out of bounds");
            }
        }
    }

    #[test]
    fn noise_interpolates_lattice_values() {
        // At integer lattice points the sample equals the lattice hash, so
        // adjacent samples inside a cell must lie between cell corners'
        // neighbourhood — check continuity by small-step deltas.
        let n = ValueNoise::new(7);
        let mut prev = n.sample(0.0, 0.5);
        for k in 1..1000 {
            let cur = n.sample(k as f64 * 0.001, 0.5);
            assert!((cur - prev).abs() < 0.02, "discontinuity at step {k}");
            prev = cur;
        }
    }

    #[test]
    fn fbm_bounded_and_deterministic() {
        let f = Fbm::new(3, 0.01).with_octaves(6);
        for i in 0..100 {
            let v = f.sample(i as f64 * 3.3, i as f64 * 7.7);
            assert!((-1.0..=1.0).contains(&v));
            let u = f.sample01(i as f64 * 3.3, i as f64 * 7.7);
            assert!((0.0..=1.0).contains(&u));
            assert!((u - (v * 0.5 + 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn fbm_has_more_detail_than_single_octave() {
        // Variance of high-frequency differences should be larger with more
        // octaves (roughness increases).
        let f1 = Fbm::new(11, 0.05).with_octaves(1);
        let f6 = Fbm::new(11, 0.05).with_octaves(6);
        let rough = |f: &Fbm| -> f64 {
            (0..2000)
                .map(|i| {
                    let x = i as f64 * 0.11;
                    (f.sample(x + 0.05, 0.0) - f.sample(x, 0.0)).abs()
                })
                .sum()
        };
        assert!(rough(&f6) > rough(&f1));
    }
}
