//! Dependency-free parallel runtime: chunked scoped fan-out on
//! [`std::thread::scope`].
//!
//! This module is the single threading idiom of the workspace. Every
//! parallel hot path (tiled matmul row bands, batch-parallel conv2d,
//! data-parallel gradient workers, hyper-parameter trials, interlinking
//! shards, HopsFS load clients) goes through the primitives below, and all
//! of them share two guarantees:
//!
//! * **Deterministic fixed-order reduction.** Workers own disjoint,
//!   contiguous slices of the input (or output), and the caller receives
//!   their results in input order regardless of which thread finished
//!   first. Combined with kernels that fix their own floating-point
//!   accumulation order, every parallel computation in the repository is
//!   bit-identical to its serial reference — determinism is a stated
//!   design invariant (see DESIGN.md).
//! * **No runtime, no channels.** Threads are scoped, borrow their inputs,
//!   and join before the call returns. `threads == 1` runs inline on the
//!   caller's stack without spawning.
//!
//! Worker count defaults to [`available_threads`], which honours the
//! `EE_THREADS` environment variable so experiments can sweep 1/2/4/8
//! workers on any machine.

/// Number of worker threads to use by default.
///
/// Reads the `EE_THREADS` environment variable first (any positive
/// integer), then falls back to [`std::thread::available_parallelism`],
/// then to 1. The answer is computed once and cached — this sits on the
/// per-matmul dispatch path.
pub fn available_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        match std::env::var("EE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Run `f(worker_index)` on `workers` scoped threads and collect the
/// results in worker order.
///
/// `workers == 1` calls `f(0)` inline. Panics in a worker propagate to the
/// caller.
pub fn fan_out<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(workers > 0, "fan_out needs at least one worker");
    if workers == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ee-util par worker panicked"))
            .collect()
    })
}

/// Split `items` into at most `threads` contiguous chunks (sizes differing
/// by at most one), run `f(start_index, chunk)` per chunk in parallel, and
/// return the per-chunk results in input order.
///
/// Empty input returns an empty vector without spawning.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let t = threads.min(items.len()).max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let base = items.len() / t;
    let rem = items.len() % t;
    let mut bounds = Vec::with_capacity(t);
    let mut start = 0usize;
    for c in 0..t {
        let len = base + usize::from(c < rem);
        bounds.push((start, &items[start..start + len]));
        start += len;
    }
    if t == 1 {
        let (s, chunk) = bounds[0];
        return vec![f(s, chunk)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|(s, chunk)| {
                let f = &f;
                scope.spawn(move || f(s, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ee-util par worker panicked"))
            .collect()
    })
}

/// Like [`map_chunks`], but with **guided scheduling** for skewed
/// workloads: the input is split into many small chunks (about
/// `oversubscribe`× more than `threads`, tapering so early chunks are
/// larger), and workers pull the next unclaimed chunk from a shared
/// atomic counter instead of owning a fixed contiguous band. A worker
/// stuck on a dense chunk no longer stalls the whole band — the others
/// steal the remaining chunks.
///
/// The per-chunk results come back **in chunk order** (fixed-order
/// reduction): the output is a pure function of `(items.len(),
/// threads, oversubscribe)` and `f`, never of which worker ran which
/// chunk, so callers keep the workspace-wide determinism contract.
/// `oversubscribe == 1` degrades to the uniform [`map_chunks`] split.
pub fn map_chunks_guided<T, R, F>(
    items: &[T],
    threads: usize,
    oversubscribe: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let t = threads.min(items.len()).max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunks = (t * oversubscribe.max(1)).min(items.len()).max(1);
    // Chunk boundaries are computed once, deterministically: maximal-even
    // split (sizes differ by at most one, earlier chunks take the
    // remainder) — identical to map_chunks with `chunks` workers.
    let base = items.len() / chunks;
    let rem = items.len() % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        bounds.push((start, &items[start..start + len]));
        start += len;
    }
    if t == 1 {
        return bounds.into_iter().map(|(s, chunk)| f(s, chunk)).collect();
    }
    // Work-stealing dispatch: each worker claims the next chunk index from
    // a shared counter and writes its result into that chunk's slot.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..chunks).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        for _ in 0..t {
            let f = &f;
            let next = &next;
            let slots = &slots;
            let bounds = &bounds;
            handles.push(scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= bounds.len() {
                    return;
                }
                let (s, chunk) = bounds[i];
                let r = f(s, chunk);
                *slots[i].lock().expect("guided slot poisoned") = Some(r);
            }));
        }
        for h in handles {
            h.join().expect("ee-util par worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("guided slot poisoned")
                .expect("every chunk claimed exactly once")
        })
        .collect()
}

/// Map `f(index, item)` over `items` on up to `threads` workers,
/// preserving input order in the result.
///
/// The result is identical to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for any
/// thread count — items are assigned to workers in contiguous runs and the
/// per-run outputs are concatenated in run order.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let per_chunk = map_chunks(items, threads, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(i, x)| f(start + i, x))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in per_chunk {
        out.extend(c);
    }
    out
}

/// Split a row-major buffer into up to `threads` contiguous row bands and
/// run `f(first_row, band)` on each band in parallel, with exclusive
/// mutable access. Per-band results come back in band order.
///
/// `data.len()` must be a multiple of `row_len`. Bands are maximal-even:
/// sizes differ by at most one row, earlier bands take the remainder, so
/// the partition is a pure function of `(rows, threads)`.
pub fn for_rows_mut<T, R, F>(data: &mut [T], row_len: usize, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert!(
        data.len().is_multiple_of(row_len),
        "buffer length {} not a multiple of row length {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let t = threads.min(rows).max(1);
    if t == 1 {
        return vec![f(0, data)];
    }
    let base = rows / t;
    let rem = rows % t;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        let mut rest = data;
        let mut row0 = 0usize;
        for band in 0..t {
            let nrows = base + usize::from(band < rem);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(nrows * row_len);
            rest = tail;
            let f = &f;
            let r0 = row0;
            handles.push(scope.spawn(move || f(r0, head)));
            row0 += nrows;
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ee-util par worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn fan_out_orders_results_by_worker() {
        for workers in [1usize, 2, 3, 8] {
            let got = fan_out(workers, |w| w * 10);
            let want: Vec<usize> = (0..workers).map(|w| w * 10).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1usize, 2, 3, 4, 7, 8, 200] {
            let par = map(&items, threads, |i, x| x * 3 + i as u64);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_covers_input_exactly_once() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1usize, 2, 5, 8, 57, 100] {
            let chunks = map_chunks(&items, threads, |start, c| (start, c.to_vec()));
            let mut seen = Vec::new();
            let mut expect_start = 0usize;
            for (start, c) in &chunks {
                assert_eq!(*start, expect_start, "chunks must be contiguous");
                expect_start += c.len();
                seen.extend_from_slice(c);
            }
            assert_eq!(seen, items, "threads={threads}");
            // Chunk sizes differ by at most one.
            let sizes: Vec<usize> = chunks.iter().map(|(_, c)| c.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "uneven chunks {sizes:?}");
        }
    }

    #[test]
    fn guided_matches_uniform_for_any_thread_count() {
        let items: Vec<u64> = (0..241).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x % 97).collect();
        for threads in [1usize, 2, 3, 4, 8, 50] {
            for over in [1usize, 2, 4, 8] {
                let per_chunk =
                    map_chunks_guided(&items, threads, over, |_, c| {
                        c.iter().map(|x| x * x % 97).collect::<Vec<u64>>()
                    });
                let flat: Vec<u64> = per_chunk.into_iter().flatten().collect();
                assert_eq!(flat, serial, "threads={threads} over={over}");
            }
        }
    }

    #[test]
    fn guided_chunk_partition_is_deterministic() {
        // The chunk boundaries (and so the reduction shape) depend only on
        // (len, threads, oversubscribe) — run twice, compare starts.
        let items: Vec<u8> = vec![0; 103];
        let starts = |threads| {
            map_chunks_guided(&items, threads, 4, |s, c| (s, c.len()))
        };
        assert_eq!(starts(4), starts(4));
        let got = starts(4);
        let mut expect = 0usize;
        for (s, len) in &got {
            assert_eq!(*s, expect, "contiguous chunks");
            expect += len;
        }
        assert_eq!(expect, items.len());
        assert!(got.len() >= 4, "oversubscribed beyond thread count");
    }

    #[test]
    fn guided_handles_skew_and_empty() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunks_guided(&empty, 4, 4, |_, c| c.len()).is_empty());
        // A skewed workload (cost concentrated in one region) still
        // produces ordered, complete results.
        let items: Vec<u32> = (0..64).collect();
        let out = map_chunks_guided(&items, 4, 8, |_, c| {
            if c.first().is_some_and(|&x| x < 8) {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            c.to_vec()
        });
        let flat: Vec<u32> = out.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn map_chunks_empty_input() {
        let items: Vec<u8> = Vec::new();
        let out = map_chunks(&items, 4, |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn for_rows_mut_bands_are_disjoint_and_ordered() {
        let rows = 13usize;
        let row_len = 5usize;
        let serial: Vec<u32> = (0..rows as u32 * row_len as u32).map(|i| i * 7).collect();
        for threads in [1usize, 2, 3, 4, 13, 50] {
            let mut data = vec![0u32; rows * row_len];
            let firsts = for_rows_mut(&mut data, row_len, threads, |first_row, band| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v = (first_row * row_len + i) as u32 * 7;
                }
                first_row
            });
            assert_eq!(data, serial, "threads={threads}");
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            assert_eq!(firsts, sorted, "band results must be in band order");
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn for_rows_mut_rejects_ragged_buffer() {
        let mut data = vec![0u8; 7];
        for_rows_mut(&mut data, 3, 2, |_, _| ());
    }

    #[test]
    fn deterministic_float_reduction_across_thread_counts() {
        // The invariant the whole workspace relies on: chunked results
        // reduced in fixed order give bit-identical floats for any
        // thread count.
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let reduce = |threads: usize| -> f32 {
            let partials = map_chunks(&xs, threads, |_, c| c.iter().sum::<f32>());
            partials.into_iter().sum()
        };
        // Not comparing against a flat serial sum (different association);
        // comparing the chunked reduction against itself at one worker
        // per chunk boundary choice is the point: same chunking => same
        // bits. Here chunking is a function of len+threads only, so equal
        // thread counts must agree and the 4-thread partition is fixed.
        assert_eq!(reduce(4).to_bits(), reduce(4).to_bits());
        let partials = map_chunks(&xs, 4, |_, c| c.iter().sum::<f32>());
        assert_eq!(partials.len(), 4);
    }
}
