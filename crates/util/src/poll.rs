//! Thin zero-dependency wrappers over the three syscalls the event-driven
//! serve tier needs: `poll(2)` readiness multiplexing, `pipe2(2)` wake
//! pipes, and `getrlimit/setrlimit` for raising the open-file ceiling.
//!
//! The workspace rule is *no external crates*, so instead of `libc` the
//! handful of symbols are declared `extern "C"` directly — std already
//! links the platform libc on every supported target. Layouts and
//! constants are the Linux ABI values (the only platform the experiments
//! run on); everything is wrapped in safe, EINTR-retrying functions so
//! no unsafe escapes this module.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{FromRawFd, RawFd};

/// Readable (or a listener has a pending accept).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (revents only) — a slab bookkeeping bug if ever seen.
pub const POLLNVAL: i16 = 0x020;

/// One entry in a `poll(2)` set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel — useful for tombstoning without reshuffling the slice).
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`] bits).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// True on error/hangup/invalid — the connection is dead regardless
    /// of what was asked for.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: i32 = 7;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Wait until at least one entry is ready or `timeout_ms` elapses
/// (negative = wait forever). Returns the number of ready entries;
/// `Ok(0)` means the timeout fired. Retries on `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// A self-pipe used to interrupt a blocked [`poll_fds`] from another
/// thread: the event loop polls the read end alongside its sockets, and
/// any thread with a clone of the write end can wake it.
pub struct WakePipe {
    reader: File,
    writer: File,
}

impl WakePipe {
    /// Create the pipe pair. Both ends are nonblocking (a full pipe must
    /// not stall the waker — one pending byte is as good as fifty) and
    /// close-on-exec.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        // Safety: pipe2 succeeded, so both fds are freshly opened and
        // owned by no one else.
        let (reader, writer) = unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) };
        Ok(WakePipe { reader, writer })
    }

    /// The fd to include (with [`POLLIN`]) in the poll set.
    pub fn poll_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.reader.as_raw_fd()
    }

    /// A handle other threads use to wake the loop.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            writer: self.writer.try_clone()?,
        })
    }

    /// Drain pending wake bytes after the poll reported readability, so
    /// the pipe doesn't stay level-triggered forever.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.reader.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }
}

/// The write end of a [`WakePipe`], cloneable across threads.
pub struct Waker {
    writer: File,
}

impl Waker {
    /// Nudge the event loop. A full pipe means a wake is already
    /// pending, which is just as good — the error is swallowed.
    pub fn wake(&self) {
        let _ = (&self.writer).write(&[1u8]);
    }
}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker {
            writer: self.writer.try_clone().expect("clone wake pipe fd"),
        }
    }
}

/// Raise the soft `RLIMIT_NOFILE` toward `target` (clamped to the hard
/// limit). Returns the soft limit now in effect. Never lowers it.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    let want = target.min(lim.rlim_max);
    let new = RLimit {
        rlim_cur: want,
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } != 0 {
        // Leave the limit as-is; the caller sizes its fleet to the answer.
        return Ok(lim.rlim_cur);
    }
    Ok(want)
}

/// The current soft `RLIMIT_NOFILE` — the fd budget an experiment must
/// fit its connection fleet (2 fds per loopback connection) inside.
pub fn nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_rounds_trip_through_poll() {
        let mut pipe = WakePipe::new().unwrap();
        let mut set = [PollFd::new(pipe.poll_fd(), POLLIN)];
        // Nothing pending: a zero-timeout poll reports no readiness.
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
        let waker = pipe.waker().unwrap();
        waker.wake();
        waker.wake(); // coalesces, must not error
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].ready(POLLIN));
        pipe.drain();
        set[0].revents = 0;
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
    }

    #[test]
    fn waker_wakes_across_threads() {
        let mut pipe = WakePipe::new().unwrap();
        let waker = pipe.waker().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waker.wake();
        });
        let mut set = [PollFd::new(pipe.poll_fd(), POLLIN)];
        let n = poll_fds(&mut set, 5_000).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        pipe.drain();
    }

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let before = nofile_limit().unwrap();
        assert!(before > 0);
        // Raising toward the current value is a no-op that must succeed.
        let after = raise_nofile_limit(before).unwrap();
        assert!(after >= before);
    }
}
