//! Consistent-hash ring for the sharded serving tier.
//!
//! One logical dataset is split across N shard processes; both the data
//! loaders (each shard keeps only its slice) and the router tier (which
//! forwards single-key requests to the owner) must agree on the
//! key→shard mapping, so the ring lives here in `ee_util` where every
//! crate can reach it without dependency cycles.
//!
//! The ring is the classic virtual-node construction: each shard
//! contributes `vnodes` points placed by hashing `"{shard}/{vnode}"`,
//! and a key is owned by the first point clockwise from the key's own
//! hash. Adding or removing one shard therefore remaps only ~1/N of the
//! key space — the property that makes rolling shard-count changes
//! cheap — while lookups stay `O(log vnodes·N)` binary searches.
//!
//! Everything is deterministic: the hash is FNV-1a (the same function
//! the serve tier uses for ETags) followed by a 64-bit avalanche
//! finalizer, so a ring built with the same `(shards, vnodes)`
//! parameters places keys identically in every process, on every run.
//! The finalizer matters: raw FNV-1a of keys differing only in a short
//! suffix (`…/f17`, `…/f18`) barely moves the high bits that order the
//! ring, so whole key families would pile onto one arc without it.

/// FNV-1a over a byte string — deterministic, dependency-free, and fast
/// enough for per-request routing decisions.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64-bit avalanche finalizer (the MurmurHash3 `fmix64` constants):
/// every input bit flips every output bit with probability ~1/2, which
/// spreads FNV-1a's suffix-local differences across the whole ring.
fn spread(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Default virtual nodes per shard: enough that the largest shard holds
/// within a few percent of `1/N` of a uniform key space.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over `shards` shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Build the ring for `shards` shards with [`DEFAULT_VNODES`]
    /// virtual nodes each. Panics if `shards` is zero.
    pub fn new(shards: usize) -> HashRing {
        HashRing::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// Build the ring with an explicit virtual-node count per shard.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                let point = spread(fnv1a(format!("shard-{shard}/vnode-{v}").as_bytes()));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point clockwise from the
    /// key's hash (wrapping past the top back to the first point).
    pub fn shard_of(&self, key: &str) -> usize {
        let h = spread(fnv1a(key.as_bytes()));
        let idx = self.points.partition_point(|(p, _)| *p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

/// Convenience: the owner of `key` on a fresh `shards`-shard ring. The
/// ring build is O(shards·vnodes·log) — callers on a hot path should
/// build a [`HashRing`] once and reuse it.
pub fn shard_of(key: &str, shards: usize) -> usize {
    HashRing::new(shards).shard_of(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Offset basis for the empty string, then the classic "a" vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn lookups_are_deterministic_and_in_range() {
        for shards in 1..=8 {
            let ring = HashRing::new(shards);
            let again = HashRing::new(shards);
            for i in 0..200 {
                let key = format!("http://e/f{i}");
                let s = ring.shard_of(&key);
                assert!(s < shards);
                assert_eq!(s, again.shard_of(&key), "same ring, same owner");
                assert_eq!(s, shard_of(&key, shards), "helper agrees");
            }
        }
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = HashRing::new(1);
        for i in 0..50 {
            assert_eq!(ring.shard_of(&format!("k{i}")), 0);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let shards = 4;
        let ring = HashRing::new(shards);
        let mut counts = vec![0usize; shards];
        let n = 20_000;
        for i in 0..n {
            counts[ring.shard_of(&format!("http://e/f{i}"))] += 1;
        }
        let ideal = n / shards;
        for (s, c) in counts.iter().enumerate() {
            assert!(
                *c > ideal / 2 && *c < ideal * 2,
                "shard {s} holds {c} of {n} keys (ideal {ideal})"
            );
        }
    }

    #[test]
    fn short_suffix_key_families_spread_over_two_shards() {
        // Regression: without the avalanche finalizer, raw FNV-1a puts
        // all 600 of these near-identical keys on one arc of a 2-shard
        // ring (the sharded-store split degenerates to shard 0 holding
        // everything).
        let ring = HashRing::new(2);
        let mut counts = [0usize; 2];
        for i in 0..600 {
            counts[ring.shard_of(&format!("http://e/f{i}"))] += 1;
        }
        assert!(
            counts[0] > 150 && counts[1] > 150,
            "suffix-only key differences must still balance: {counts:?}"
        );
    }

    #[test]
    fn shard_counts_partition_the_key_space() {
        // Every key is owned by exactly one shard by construction; check
        // the union over shards covers the space for a few ring sizes.
        for shards in [2usize, 4] {
            let ring = HashRing::new(shards);
            let mut seen = vec![false; shards];
            for i in 0..1000 {
                seen[ring.shard_of(&format!("k{i}"))] = true;
            }
            assert!(seen.iter().all(|s| *s), "every shard owns some keys");
        }
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let before = HashRing::new(4);
        let after = HashRing::new(5);
        let n = 10_000;
        let moved = (0..n)
            .filter(|i| {
                let key = format!("http://e/f{i}");
                before.shard_of(&key) != after.shard_of(&key)
            })
            .count();
        // Ideal is n/5; allow generous slack but far below rehash-all.
        assert!(
            moved < n / 2,
            "consistent hashing must move a minority of keys, moved {moved}/{n}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = HashRing::new(0);
    }
}
