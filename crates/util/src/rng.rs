//! Deterministic pseudo-random number generation.
//!
//! The workspace does not use the `rand` crate for its core logic: every
//! simulator and every workload generator must reproduce bit-for-bit across
//! runs and across machines, so we pin the exact algorithms here.
//!
//! [`Rng`] is `xoshiro256++` (Blackman & Vigna), seeded through `SplitMix64`
//! as the authors recommend. It is not cryptographically secure and is not
//! meant to be; it is fast, has a 2^256-1 period, and passes BigCrush.

/// The `SplitMix64` generator, used to expand a single `u64` seed into the
/// 256-bit state of [`Rng`] and occasionally as a cheap standalone stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256++` — the workspace-standard PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Seed the generator. Any seed (including 0) is valid; the state is
    /// expanded through `SplitMix64` so correlated seeds produce
    /// uncorrelated streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator. Used to hand each simulated
    /// node / worker / scene its own stream so that reordering work does not
    /// perturb the results of unrelated components.
    pub fn fork(&mut self, stream: u64) -> Self {
        let a = self.next_u64();
        Self::seed_from(a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Next `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` using Lemire's debiased multiply-shift.
    /// `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection-free for our purposes: 128-bit multiply-shift has bias
        // < 2^-64 which is irrelevant for simulation workloads, but we still
        // debias properly to keep property tests exact.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (`usize`). `lo < hi` required.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box-Muller, with caching of the spare).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid u == 0 which would produce ln(0).
        let mut u = self.f64();
        while u <= f64::EPSILON {
            u = self.f64();
        }
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential deviate with the given rate `lambda` (> 0).
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let mut u = self.f64();
        while u <= f64::EPSILON {
            u = self.f64();
        }
        -u.ln() / lambda
    }

    /// Poisson deviate (Knuth's method; fine for the small means we use).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            // Normal approximation for large means keeps this O(1).
            let x = self.normal(mean, mean.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Sample an index from unnormalised non-negative `weights`.
    /// Returns `None` if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total.is_nan() || total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Reservoir-sample `k` indices from `0..n` without replacement,
    /// returned in ascending order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let matches = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::seed_from(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of tolerance");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::seed_from(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn poisson_mean_matches() {
        let mut r = Rng::seed_from(6);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| r.poisson(3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        // Large-mean branch.
        let total: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::seed_from(8);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn sample_indices_without_replacement() {
        let mut r = Rng::seed_from(10);
        let s = r.sample_indices(1000, 50);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "not strictly ascending/unique");
        assert!(s.iter().all(|&i| i < 1000));
        // k >= n returns everything.
        assert_eq!(r.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::seed_from(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
